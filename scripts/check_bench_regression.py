#!/usr/bin/env python3
"""Bench-regression guard for BENCH_commit_pipeline.json and
BENCH_recovery.json (dispatched on the file's "bench" field).

For BENCH_recovery.json (the chaos_recovery harness) CI fails when failure
recovery regresses:

* any schedule reports an invariant violation (lost or half-applied acked
  commit, broken conservation, pending installs or untruncated redo logs
  after quiesce, a region promoted to a dead primary, or recovery not
  completing at all);
* any account slot is left locked after the final heal (leaked lock);
* the slowest suspicion-to-full-redundancy span exceeds the budget;
* any schedule commits nothing (the cluster lost availability).

For BENCH_commit_pipeline.json CI fails when the early-ack commit critical
path or the pipeline reactor regresses:

* serializable fanout 4-primary p50 must stay at or below the checked-in
  threshold (the PR-5 acceptance bound; PR-4 measured ~27 us, early-ack
  lands ~15-17 us, so 18 us holds comfortable slack for shared runners);
* fanout dispatch must send (almost) no standalone TRUNCATE messages on
  the serializable rows: truncation piggybacks as a watermark, so a
  regression there shows up as roughly one standalone message per commit
  (hundreds per row). A small allowance covers the 1-CPU-host case where
  the bench thread is preempted for longer than the idle-flush deadline
  and the watermark is then *genuinely* idle;
* the deepest pipeline row must beat the synchronous depth-1 baseline by
  the CI floor (the full-length run yields ~3.4x; CI runs are short and
  share cores, so the gate is looser than the acceptance target);
* the reactor sweep (long-flight model, waits sleep) must show the
  plateau broken: single-worker depth-16 throughput strictly above
  depth-8 by the CI floor (full-length runs measure ~1.9x);
* at least one PipelinePool row must match or beat the single reactor at
  the same total in-flight depth (full-length runs measure ~1.6x at 16);
* the Amdahl cycle accounting must stay coherent: the datacenter sweep's
  deepest row is CPU-bound (serial fraction near 1 -- the plateau
  diagnosis), the long-flight sweep's deepest row is not (serial
  fraction below the ceiling -- the reactor regime stays latency-bound),
  and the predicted multi-core speedup curves are present.

Usage: check_bench_regression.py BENCH_commit_pipeline.json
       check_bench_regression.py BENCH_recovery.json
"""

import json
import sys

MAX_FANOUT4_P50_US = 18.0
MIN_PIPELINE_SPEEDUP = 2.0
MIN_DEPTH16_OVER_DEPTH8 = 1.3
MIN_POOL_VS_SINGLE = 1.0
MIN_DATACENTER_SERIAL_FRACTION = 0.8
MAX_LONGFLIGHT_SERIAL_FRACTION = 0.85

# Recovery gates. The span budget is deliberately loose: local runs measure
# well under 1 ms from suspicion to restored redundancy, but CI runners are
# shared and the re-replication threads are paced.
MAX_RECOVERY_SPAN_MS = 3000.0
MIN_SCHEDULES = 3


def check_recovery(data: dict) -> int:
    failures = []
    schedules = data.get("schedules", [])
    totals = data.get("totals", {})
    if len(schedules) < MIN_SCHEDULES:
        failures.append(
            f"only {len(schedules)} recovery schedules ran "
            f"(>= {MIN_SCHEDULES} required)"
        )
    for s in schedules:
        seed = s.get("seed")
        if s.get("invariant_violations", 1) != 0:
            failures.append(
                f"seed {seed}: {s['invariant_violations']} recovery "
                f"invariant violation(s)"
            )
        if s.get("leaked_locks", 1) != 0:
            failures.append(f"seed {seed}: {s['leaked_locks']} leaked lock(s)")
        if s.get("committed", 0) <= 0:
            failures.append(f"seed {seed}: no transaction ever committed")
        spans = s.get("spans_ms", {})
        for span in ("suspect_to_config", "suspect_to_unblocked", "suspect_to_rereplicated"):
            v = spans.get(span, -1.0)
            if v < 0:
                failures.append(f"seed {seed}: span {span} never measured")
            elif v > MAX_RECOVERY_SPAN_MS:
                failures.append(
                    f"seed {seed}: {span} took {v:.1f} ms "
                    f"(> {MAX_RECOVERY_SPAN_MS} ms budget)"
                )
    if failures:
        for f in failures:
            print(f"BENCH REGRESSION: {f}", file=sys.stderr)
        return 1
    print(
        f"recovery guard OK: {len(schedules)} schedules, "
        f"{totals.get('invariant_violations', 0)} violations, "
        f"{totals.get('leaked_locks', 0)} leaked locks, "
        f"max recovery span {totals.get('max_recovery_ms', 0.0):.2f} ms "
        f"<= {MAX_RECOVERY_SPAN_MS} ms, "
        f"min committed {totals.get('min_committed', 0)}"
    )
    return 0


def main(path: str) -> int:
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") == "chaos_recovery":
        return check_recovery(data)
    failures = []

    fanout4 = [
        r
        for r in data["rows"]
        if r["dispatch"] == "fanout"
        and r["isolation"] == "serializable"
        and r["primaries"] == 4
    ]
    if not fanout4:
        failures.append("no serializable fanout 4-primary row found")
    else:
        p50 = fanout4[0]["p50_us"]
        if p50 > MAX_FANOUT4_P50_US:
            failures.append(
                f"serializable fanout 4-primary p50 regressed: "
                f"{p50} us > {MAX_FANOUT4_P50_US} us"
            )

    for r in data["rows"]:
        if r["dispatch"] == "fanout" and r["isolation"] == "serializable":
            msgs = r.get("standalone_truncate_msgs", 0)
            # A couple of scheduling gaps may each flush one message per
            # destination; a piggybacking regression is ~1 per commit,
            # i.e. comparable to the piggybacked count itself.
            allowed = max(14, r.get("piggybacked_truncations", 0) // 20)
            if msgs > allowed:
                failures.append(
                    f"fanout {r['primaries']}-primary sent {msgs} standalone "
                    f"TRUNCATE messages (> {allowed} allowed: truncation "
                    f"must piggyback)"
                )

    pipeline = data.get("pipeline_throughput", [])
    if len(pipeline) < 2:
        failures.append("pipeline_throughput sweep missing or too short")
    else:
        deepest = max(pipeline, key=lambda r: r["depth"])
        speedup = deepest["speedup_vs_depth_1"]
        if speedup < MIN_PIPELINE_SPEEDUP:
            failures.append(
                f"pipeline depth {deepest['depth']} speedup {speedup}x "
                f"below the {MIN_PIPELINE_SPEEDUP}x CI floor"
            )

    # Reactor sweep: the plateau must be broken in the long-flight regime.
    reactor = data.get("reactor_sweep", {}).get("rows", [])
    singles = {
        r["total_inflight"]: r for r in reactor if r["workers"] == 1
    }
    d16_ratio = None
    if 8 not in singles or 16 not in singles:
        failures.append("reactor_sweep missing single-worker depth-8/16 rows")
    else:
        d16_ratio = singles[16]["txns_per_sec"] / max(
            singles[8]["txns_per_sec"], 1e-9
        )
        if d16_ratio < MIN_DEPTH16_OVER_DEPTH8:
            failures.append(
                f"reactor depth-16 is only {d16_ratio:.2f}x depth-8 "
                f"(< {MIN_DEPTH16_OVER_DEPTH8}x): the pipeline plateau is back"
            )

    # Pool vs single: work-stealing must pay at matched total depth.
    pool_rows = data.get("pool_vs_single", [])
    best_pool = None
    if not pool_rows:
        failures.append("pool_vs_single comparison missing")
    else:
        best_pool = max(pool_rows, key=lambda r: r["ratio"])
        if best_pool["ratio"] < MIN_POOL_VS_SINGLE:
            failures.append(
                f"best pool ratio {best_pool['ratio']:.2f} "
                f"({best_pool['workers']} workers at total depth "
                f"{best_pool['total_inflight']}) below the "
                f"{MIN_POOL_VS_SINGLE}x floor vs the single reactor"
            )

    # Amdahl accounting: the serial-fraction measurements and predictions.
    core = data.get("amdahl", {}).get("core_scaling", {})
    s_dc = core.get("serial_fraction_datacenter_deepest")
    s_lf = core.get("serial_fraction_longflight_deepest")
    if s_dc is None or s_lf is None:
        failures.append("amdahl core_scaling serial fractions missing")
    else:
        if s_dc < MIN_DATACENTER_SERIAL_FRACTION:
            failures.append(
                f"datacenter deepest serial fraction {s_dc} < "
                f"{MIN_DATACENTER_SERIAL_FRACTION}: the legacy plateau is no "
                f"longer CPU-bound, re-derive the Amdahl story"
            )
        if s_lf > MAX_LONGFLIGHT_SERIAL_FRACTION:
            failures.append(
                f"long-flight deepest serial fraction {s_lf} > "
                f"{MAX_LONGFLIGHT_SERIAL_FRACTION}: the reactor burns CPU "
                f"where it should be overlapping flights"
            )
    for curve in (
        "predicted_multicore_speedup_datacenter",
        "predicted_multicore_speedup_longflight",
    ):
        if set(core.get(curve, {})) != {"2", "4", "8"}:
            failures.append(f"amdahl {curve} curve missing or incomplete")

    if failures:
        for f in failures:
            print(f"BENCH REGRESSION: {f}", file=sys.stderr)
        return 1
    p50 = fanout4[0]["p50_us"]
    deepest = max(pipeline, key=lambda r: r["depth"])
    print(
        f"bench guard OK: fanout4 p50 {p50} us <= {MAX_FANOUT4_P50_US}, "
        f"standalone truncates in bounds, pipeline depth {deepest['depth']} "
        f"speedup {deepest['speedup_vs_depth_1']}x, reactor depth-16 "
        f"{d16_ratio:.2f}x depth-8, best pool ratio {best_pool['ratio']}x "
        f"({best_pool['workers']} workers @ {best_pool['total_inflight']}), "
        f"serial fractions dc={s_dc} lf={s_lf}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_commit_pipeline.json"))
