#!/usr/bin/env python3
"""Bench-regression guard for BENCH_commit_pipeline.json.

Fails CI when the early-ack commit critical path regresses:

* serializable fanout 4-primary p50 must stay at or below the checked-in
  threshold (the PR-5 acceptance bound; PR-4 measured ~27 us, early-ack
  lands ~15-17 us, so 18 us holds comfortable slack for shared runners);
* fanout dispatch must send zero standalone TRUNCATE messages on the
  serializable rows (truncation piggybacks as a watermark);
* the deepest pipeline row must beat the synchronous depth-1 baseline by
  the CI floor (the full-length run yields ~3.5x; CI runs are short and
  share cores, so the gate is looser than the acceptance target).

Usage: check_bench_regression.py BENCH_commit_pipeline.json
"""

import json
import sys

MAX_FANOUT4_P50_US = 18.0
MIN_PIPELINE_SPEEDUP = 2.0


def main(path: str) -> int:
    with open(path) as f:
        data = json.load(f)
    failures = []

    fanout4 = [
        r
        for r in data["rows"]
        if r["dispatch"] == "fanout"
        and r["isolation"] == "serializable"
        and r["primaries"] == 4
    ]
    if not fanout4:
        failures.append("no serializable fanout 4-primary row found")
    else:
        p50 = fanout4[0]["p50_us"]
        if p50 > MAX_FANOUT4_P50_US:
            failures.append(
                f"serializable fanout 4-primary p50 regressed: "
                f"{p50} us > {MAX_FANOUT4_P50_US} us"
            )

    for r in data["rows"]:
        if r["dispatch"] == "fanout" and r["isolation"] == "serializable":
            msgs = r.get("standalone_truncate_msgs", 0)
            if msgs != 0:
                failures.append(
                    f"fanout {r['primaries']}-primary sent {msgs} standalone "
                    f"TRUNCATE messages (truncation must piggyback)"
                )

    pipeline = data.get("pipeline_throughput", [])
    if len(pipeline) < 2:
        failures.append("pipeline_throughput sweep missing or too short")
    else:
        deepest = max(pipeline, key=lambda r: r["depth"])
        speedup = deepest["speedup_vs_depth_1"]
        if speedup < MIN_PIPELINE_SPEEDUP:
            failures.append(
                f"pipeline depth {deepest['depth']} speedup {speedup}x "
                f"below the {MIN_PIPELINE_SPEEDUP}x CI floor"
            )

    if failures:
        for f in failures:
            print(f"BENCH REGRESSION: {f}", file=sys.stderr)
        return 1
    p50 = fanout4[0]["p50_us"]
    deepest = max(pipeline, key=lambda r: r["depth"])
    print(
        f"bench guard OK: fanout4 p50 {p50} us <= {MAX_FANOUT4_P50_US}, "
        f"0 standalone truncates, pipeline depth {deepest['depth']} "
        f"speedup {deepest['speedup_vs_depth_1']}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_commit_pipeline.json"))
