//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, range and tuple
//! strategies, `prop::collection::vec`, and `prop_assert!` /
//! `prop_assert_eq!`. Inputs are drawn from a deterministic RNG so failures
//! reproduce across runs. Unlike the real crate there is **no shrinking**:
//! a failing case is reported with its generated inputs as-is (via the
//! panic message), which is adequate for the small input spaces used here.

use rand::{Rng, SeedableRng, StdRng};

pub mod test_runner {
    //! Configuration and error types for the macro-generated runners.

    /// Runner configuration (field-compatible subset of the real crate's).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Failure of one generated test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Re-export under the name the real crate uses in `prelude`.
pub use test_runner::Config as ProptestConfig;

/// A generator of random values of type `Value`.
///
/// This shim's strategies are pure generators: `generate` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy producing a constant value (`Just` in the real crate).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut StdRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{SizeRange, Strategy};
    use rand::{Rng, StdRng};

    /// Strategy producing `Vec`s whose length is drawn from a size range and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive bounds on a generated collection's size.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Deterministic per-test RNG (fixed seed; cases differ because generation
/// advances the stream).
pub fn deterministic_rng(test_name: &str) -> StdRng {
    // Mix the test name so distinct properties see distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// The `proptest` prelude: strategy trait, config, macros and the `prop`
/// namespace.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespace mirror of the real crate's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)* "{}"), $(&$arg,)* "");
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:{}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[doc = $doc])*
                #[test]
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in -50i32..50) {
            prop_assert!(x < 100);
            prop_assert!((-50..50).contains(&y), "y out of range: {}", y);
        }

        /// Vec strategies respect size and element bounds.
        #[test]
        fn vecs_in_bounds(v in prop::collection::vec((1u64..10, 0u8..4), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!((1..10).contains(&a));
                prop_assert!(b < 4);
                prop_assert_eq!(a, a);
            }
        }
    }

    proptest! {
        /// The no-config form defaults to 256 cases.
        #[test]
        fn default_config_form(x in 0u8..=255) {
            prop_assert!(u32::from(x) < 256);
        }
    }

    #[test]
    fn prop_assert_produces_case_error() {
        fn body(x: u8) -> Result<(), TestCaseError> {
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        }
        assert!(body(3).is_err());
        assert!(body(200).is_ok());
        assert!(format!("{}", body(3).unwrap_err()).contains("x was 3"));
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::Rng;
        let a = crate::deterministic_rng("t1").next_u64();
        let b = crate::deterministic_rng("t1").next_u64();
        let c = crate::deterministic_rng("t2").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
