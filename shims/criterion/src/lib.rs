//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! Implements the subset used by this workspace's `benches/`: benchmark
//! groups with `measurement_time` / `sample_size`, `bench_function` with a
//! [`Bencher`] whose `iter` times the closure, and the `criterion_group!` /
//! `criterion_main!` macros. Results (mean, p50, p99 per iteration) are
//! printed to stdout. There is no statistical analysis, HTML report or
//! comparison against saved baselines — this is a timing loop, sized so the
//! benches run in seconds.

use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_measurement: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_measurement: Duration::from_secs(1),
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement: self.default_measurement,
            samples: self.default_samples,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let measurement = self.default_measurement;
        let samples = self.default_samples;
        run_one("", name, measurement, samples, &mut f);
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    measurement: Duration,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target wall-clock time spent measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &name.into(),
            self.measurement,
            self.samples,
            &mut f,
        );
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    /// Per-sample iteration count decided by the calibration pass.
    iters: u64,
    /// Nanoseconds of the last `iter` call, filled in by `iter`.
    elapsed_ns: u64,
}

impl Bencher {
    /// Times `f`, running it enough times to make the sample meaningful.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as u64;
    }
}

/// An identity function that hides a value from the optimizer.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    measurement: Duration,
    samples: usize,
    f: &mut F,
) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    // Calibration: find an iteration count that makes one sample last about
    // measurement/samples, starting from a single iteration.
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut b);
    let target_sample_ns = (measurement.as_nanos() as u64 / samples.max(1) as u64).max(1);
    let per_iter = (b.elapsed_ns / b.iters).max(1);
    let iters = (target_sample_ns / per_iter).clamp(1, 10_000_000);

    let mut per_iter_ns: Vec<u64> = Vec::with_capacity(samples);
    let total_start = Instant::now();
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed_ns / iters.max(1));
        if total_start.elapsed() > measurement.saturating_mul(2) {
            break; // Keep slow benches bounded.
        }
    }
    per_iter_ns.sort_unstable();
    let pct = |p: f64| per_iter_ns[((per_iter_ns.len() - 1) as f64 * p) as usize];
    let mean = per_iter_ns.iter().sum::<u64>() / per_iter_ns.len() as u64;
    println!(
        "bench {label:<40} mean {mean:>10} ns/iter  p50 {:>10} ns  p99 {:>10} ns  ({} samples x {} iters)",
        pct(0.5),
        pct(0.99),
        per_iter_ns.len(),
        iters
    );
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(50))
            .sample_size(5);
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
