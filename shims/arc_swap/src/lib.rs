//! Minimal in-tree stand-in for the `arc_swap` crate.
//!
//! Provides [`ArcSwap`]: an `Arc<T>` that can be read **wait-free** (one
//! atomic pointer load, no locks, no reference-count traffic) and replaced
//! atomically by writers. The real `arc_swap` crate reclaims replaced
//! snapshots with a hazard/debt scheme; this shim instead **retires** them —
//! every snapshot ever stored stays allocated until the `ArcSwap` itself is
//! dropped, which is what makes the lock-free `load` sound without any
//! per-reader bookkeeping.
//!
//! **This shim is not a drop-in for the real crate**: `load` returns `&T`
//! borrowed from the cell (the real crate returns a `Guard` dereferencing to
//! `Arc<T>`), precisely because retirement makes the plain borrow sound.
//! Call sites written against it need adjustment before swapping the real
//! crate in — the workspace `Cargo.toml` notes this divergence.
//!
//! That trade-off targets exactly the workloads this workspace swaps:
//! append-only or rarely-reconfigured index structures (a region's slab
//! table, the region map of a machine, a node's OAT provider) whose update
//! count over the process lifetime is small and bounded, while reads are the
//! per-operation hot path. Do not use it for values replaced at high rate —
//! retired snapshots would accumulate.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>` with wait-free reads.
///
/// Readers call [`ArcSwap::load`] (a borrow costing one atomic load) or
/// [`ArcSwap::load_full`] (an owned `Arc<T>` clone). Writers call
/// [`ArcSwap::store`], which publishes a new snapshot and retires the old
/// one. Retired snapshots are freed when the `ArcSwap` is dropped.
pub struct ArcSwap<T> {
    /// Points at a `Box<Arc<T>>` leaked into place; never null.
    current: AtomicPtr<Arc<T>>,
    /// Snapshots replaced by `store`, kept alive so concurrent `load`
    /// borrows can never dangle. Freed in `Drop` (exclusive access).
    retired: Mutex<Vec<*mut Arc<T>>>,
}

// The raw pointers in `retired` are uniquely owned boxes of `Arc<T>`; they
// carry the same thread-safety requirements as `Arc<T>` itself.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates the cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcSwap<T> {
        ArcSwap {
            current: AtomicPtr::new(Box::into_raw(Box::new(value))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Convenience constructor from a bare value.
    pub fn from_pointee(value: T) -> ArcSwap<T> {
        ArcSwap::new(Arc::new(value))
    }

    /// Borrows the current snapshot — one atomic load, wait-free.
    ///
    /// The borrow stays valid for the lifetime of `&self` even if a writer
    /// replaces the snapshot concurrently: replaced snapshots are retired,
    /// not freed, until the `ArcSwap` itself is dropped.
    pub fn load(&self) -> &T {
        // SAFETY: `current` always points at a live `Box<Arc<T>>`; boxes are
        // only freed in `Drop`, which requires exclusive access, so the
        // reference cannot outlive the pointee.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Returns an owned clone of the current snapshot.
    pub fn load_full(&self) -> Arc<T> {
        // SAFETY: as in `load`; cloning bumps the strong count on an `Arc`
        // that is kept alive (via the retired list) at least until `Drop`.
        unsafe { Arc::clone(&*self.current.load(Ordering::Acquire)) }
    }

    /// Publishes `new` as the current snapshot and retires the old one.
    pub fn store(&self, new: Arc<T>) {
        let fresh = Box::into_raw(Box::new(new));
        let old = self.current.swap(fresh, Ordering::AcqRel);
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
    }

    /// `store` returning the previous snapshot.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let fresh = Box::into_raw(Box::new(new));
        let old = self.current.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` is the previous uniquely-owned box; we clone the Arc
        // out before retiring the box itself.
        let previous = unsafe { Arc::clone(&*old) };
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
        previous
    }

    /// Number of retired (replaced but not yet freed) snapshots. Exposed so
    /// tests can verify update rates stay within this shim's design envelope.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Exclusive access: no loads can be in flight; free everything.
        let current = *self.current.get_mut();
        // SAFETY: `current` and every retired pointer are distinct leaked
        // boxes owned by this cell.
        unsafe { drop(Box::from_raw(current)) };
        for ptr in self
            .retired
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(self.load()).finish()
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_and_store_roundtrip() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        assert_eq!(cell.load().len(), 3);
        cell.store(Arc::new(vec![4]));
        assert_eq!(cell.load(), &vec![4]);
        assert_eq!(cell.retired_len(), 1);
        let owned = cell.load_full();
        assert_eq!(*owned, vec![4]);
    }

    #[test]
    fn swap_returns_previous() {
        let cell = ArcSwap::from_pointee(7u32);
        let prev = cell.swap(Arc::new(9));
        assert_eq!(*prev, 7);
        assert_eq!(*cell.load(), 9);
    }

    #[test]
    fn borrows_survive_concurrent_stores() {
        // A reader holding a `load` borrow across a writer's `store` must
        // keep seeing its original (retired) snapshot.
        let cell = Arc::new(ArcSwap::from_pointee(vec![0u64; 64]));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut gen = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    cell.store(Arc::new(vec![gen; 64]));
                    gen += 1;
                }
            })
        };
        for _ in 0..2_000 {
            let snapshot = cell.load();
            let first = snapshot[0];
            // Every element of one snapshot is identical; a torn or freed
            // snapshot would break this.
            assert!(snapshot.iter().all(|&v| v == first));
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn dropped_cell_frees_all_snapshots() {
        // Drop runs without double-free or leak under miri-style scrutiny;
        // here we just exercise the path.
        let cell = ArcSwap::from_pointee(String::from("a"));
        for i in 0..10 {
            cell.store(Arc::new(format!("{i}")));
        }
        assert_eq!(cell.retired_len(), 10);
        drop(cell);
    }
}
