//! Minimal in-tree stand-in for the `rand` crate (0.8-style API).
//!
//! Implements the subset this workspace uses: the [`Rng`] trait with
//! `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ under the hood) and [`thread_rng`].
//! Statistical quality is ample for workload generation and tests; this is
//! not a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T` (models `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64 as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// A source of randomness (the subset of `rand::Rng` this workspace uses).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (here: the system clock
    /// mixed with an address, which is enough for non-cryptographic use).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    let stack_probe = &t as *const _ as u64;
    t ^ stack_probe.rotate_left(32) ^ std::process::id() as u64
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A per-call "thread" RNG, freshly seeded from ambient entropy.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub use rngs::StdRng;

/// Returns an RNG seeded from ambient entropy (each call gets a fresh one;
/// unlike the real crate there is no thread-local state to share).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(StdRng::from_entropy())
}

/// Draws one value of type `T` from a fresh entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    thread_rng().gen::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5u64..=15);
            assert!((5..=15).contains(&v));
            let v = rng.gen_range(-900i32..900);
            assert!((-900..900).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.gen_range(0..100u32)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut StdRng = &mut rng;
        assert!(sample(dyn_rng) < 100);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
