//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Implements the subset of the real crate's API that this workspace uses:
//! [`Bytes`], an immutable, cheaply cloneable byte buffer. Cloning shares the
//! underlying allocation via `Arc` instead of copying, which is the property
//! the transaction engine relies on (buffered writes are cloned into lock
//! batches and replication messages without copying payloads).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(slice: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the contents as a `Vec`, copying.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes {
            data: Arc::from(v.as_bytes()),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes {
            data: Arc::from(&v[..]),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growable byte buffer (the subset of the real `BufMut`
/// trait that this workspace's codecs use).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn default_and_slicing() {
        let b = Bytes::default();
        assert!(b.is_empty());
        let b = Bytes::from(b"hello".as_slice());
        assert_eq!(&b[1..3], b"el");
    }
}
