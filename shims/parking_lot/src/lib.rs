//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` with `parking_lot`'s
//! ergonomics: `lock()` / `read()` / `write()` return guards directly instead
//! of `Result`s, and a poisoned lock (a panic while holding it) is recovered
//! rather than propagated — matching `parking_lot`, which has no poisoning.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
