//! Minimal in-tree stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`: an unbounded multi-producer,
//! **multi-consumer** channel (std's mpsc receiver is single-consumer, which
//! is why the worker pool — several threads draining one inbox — needs this).
//! Implemented as a `Mutex<VecDeque>` plus a condvar; throughput is more than
//! sufficient for the simulated control plane this workspace routes over it.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full (never produced by this unbounded shim, but
        /// present so call sites can match exhaustively).
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of the channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of the channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only if every receiver has been dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(msg);
            self.shared.available.notify_one();
            Ok(())
        }

        /// Enqueues `msg` (alias of [`Sender::try_send`] for an unbounded
        /// channel); the error carries the message back.
        pub fn send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.try_send(msg)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .shared
                    .available
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Dequeues, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .available
                    .wait(q)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn multi_consumer_drains_disjointly() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.try_send(i).unwrap();
            }
            let h = std::thread::spawn(move || {
                let mut got = 0;
                while rx2.try_recv().is_ok() {
                    got += 1;
                }
                got
            });
            let mut got = 0;
            while rx.try_recv().is_ok() {
                got += 1;
            }
            assert_eq!(got + h.join().unwrap(), 100);
        }

        #[test]
        fn disconnect_propagates_both_ways() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(20));
            tx.try_send(7u8).unwrap();
            assert_eq!(h.join().unwrap(), Ok(7));
        }
    }
}
