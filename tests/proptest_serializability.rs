//! Property-based serializability check: random concurrent histories of
//! read-modify-write transactions over a small set of counters must be
//! equivalent to *some* serial execution. For counters incremented by
//! deltas, serializability is equivalent to "final value = sum of committed
//! deltas" per object (no lost updates), which we check for every engine
//! mode.

use std::sync::Arc;

use farm_repro::{ClusterConfig, Engine, EngineConfig, NodeId};
use proptest::prelude::*;

fn run_history(config: EngineConfig, ops: &[(u8, u8, u8)]) {
    // ops: (thread, object index, delta)
    let engine = Engine::start_cluster(ClusterConfig::test(3), config);
    let node0 = engine.node(NodeId(0));
    let mut setup = node0.begin();
    let objects: Vec<_> = (0..4)
        .map(|_| setup.alloc(0u64.to_le_bytes().to_vec()).unwrap())
        .collect();
    setup.commit().unwrap();
    let objects = Arc::new(objects);

    let mut per_thread: Vec<Vec<(u8, u8)>> = vec![Vec::new(); 3];
    for &(t, o, d) in ops {
        per_thread[(t % 3) as usize].push((o % 4, d));
    }
    let committed_deltas: Vec<u64> = {
        let handles: Vec<_> = per_thread
            .into_iter()
            .enumerate()
            .map(|(t, thread_ops)| {
                let engine = Arc::clone(&engine);
                let objects = Arc::clone(&objects);
                std::thread::spawn(move || {
                    let node = engine.node(NodeId(t as u32));
                    let mut sums = vec![0u64; 4];
                    for (o, d) in thread_ops {
                        for _attempt in 0..20 {
                            let mut tx = node.begin();
                            let Ok(v) = tx.read(objects[o as usize]) else {
                                continue;
                            };
                            let cur = u64::from_le_bytes(v[..8].try_into().unwrap());
                            if tx
                                .write(objects[o as usize], (cur + d as u64).to_le_bytes().to_vec())
                                .is_err()
                            {
                                continue;
                            }
                            if tx.commit().is_ok() {
                                sums[o as usize] += d as u64;
                                break;
                            }
                        }
                    }
                    sums
                })
            })
            .collect();
        let mut totals = vec![0u64; 4];
        for h in handles {
            for (i, s) in h.join().unwrap().into_iter().enumerate() {
                totals[i] += s;
            }
        }
        totals
    };
    let mut check = engine.node(NodeId(0)).begin();
    for (i, &expected) in committed_deltas.iter().enumerate() {
        let v = check.read(objects[i]).unwrap();
        let value = u64::from_le_bytes(v[..8].try_into().unwrap());
        assert_eq!(value, expected, "object {i}: lost or phantom update");
    }
    check.commit().unwrap();
    engine.shutdown();
    engine.cluster().shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn farmv2_histories_have_no_lost_updates(
        ops in prop::collection::vec((0u8..3, 0u8..4, 1u8..10), 1..30)
    ) {
        run_history(EngineConfig::default(), &ops);
    }

    #[test]
    fn multi_version_histories_have_no_lost_updates(
        ops in prop::collection::vec((0u8..3, 0u8..4, 1u8..10), 1..30)
    ) {
        run_history(EngineConfig::multi_version(), &ops);
    }
}
