//! Cross-crate integration tests: transactions running through failures,
//! serializability under concurrency, and GC interacting with long-running
//! snapshots.

use std::sync::Arc;
use std::time::Duration;

use farm_repro::kernel::EventKind;
use farm_repro::{ClusterConfig, Engine, EngineConfig, NodeId, TxOptions};

#[test]
fn transactions_survive_a_cm_failure() {
    let mut cfg = ClusterConfig::test(4);
    cfg.auto_control = true;
    cfg.lease_expiry = Duration::from_millis(10);
    let engine = Engine::start_cluster(cfg, EngineConfig::default());
    let node3 = engine.node(NodeId(3));
    let mut tx = node3.begin();
    let addr = tx.alloc(vec![1u8]).unwrap();
    tx.commit().unwrap();

    // Kill the CM (node 0). The control thread detects it, fails over the
    // clock master and commits a new configuration.
    engine.cluster().kill(NodeId(0));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.cluster().current_config().epoch == 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        engine.cluster().current_config().epoch >= 2,
        "reconfiguration never happened"
    );
    let events = engine.cluster().events().snapshot();
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::ClockEnabled { .. })));

    // Transactions keep working after recovery, from a surviving node.
    let mut retries = 0;
    loop {
        let mut tx = node3.begin();
        if let Ok(()) = tx
            .read(addr)
            .and_then(|v| tx.write(addr, vec![v[0] + 1]).map(|_| ()))
        {
            if tx.commit().is_ok() {
                break;
            }
        }
        retries += 1;
        assert!(retries < 100, "could not commit after failover");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut check = node3.begin();
    assert_eq!(check.read(addr).unwrap()[0], 2);
    check.commit().unwrap();
    engine.shutdown();
    engine.cluster().shutdown();
}

#[test]
fn serializability_of_concurrent_increments_across_engines() {
    // Run the same concurrent counter workload under FaRMv2 and verify the
    // final value equals the number of successful commits (no lost updates),
    // which is the core serializability guarantee.
    for cfg in [
        EngineConfig::default(),
        EngineConfig::multi_version(),
        EngineConfig::baseline(),
    ] {
        let engine = Engine::start_cluster(ClusterConfig::test(3), cfg);
        let node0 = engine.node(NodeId(0));
        let mut setup = node0.begin();
        let addr = setup.alloc(0u64.to_le_bytes().to_vec()).unwrap();
        setup.commit().unwrap();
        let threads: Vec<_> = (0..3u32)
            .map(|n| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let node = engine.node(NodeId(n));
                    let mut commits = 0u64;
                    for _ in 0..200 {
                        let mut tx = node.begin();
                        let Ok(v) = tx.read(addr) else { continue };
                        let cur = u64::from_le_bytes(v[..8].try_into().unwrap());
                        if tx.write(addr, (cur + 1).to_le_bytes().to_vec()).is_err() {
                            continue;
                        }
                        if tx.commit().is_ok() {
                            commits += 1;
                        }
                    }
                    commits
                })
            })
            .collect();
        let total_commits: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        let mut check = engine.node(NodeId(1)).begin();
        let v = check.read(addr).unwrap();
        let value = u64::from_le_bytes(v[..8].try_into().unwrap());
        assert_eq!(value, total_commits, "lost update detected");
        check.commit().unwrap();
        engine.shutdown();
        engine.cluster().shutdown();
    }
}

#[test]
fn gc_reclaims_old_versions_once_snapshots_finish() {
    let mut cfg = ClusterConfig::test(3);
    cfg.auto_control = true;
    let engine = Engine::start_cluster(cfg, EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![0u8; 64]).unwrap();
    setup.commit().unwrap();
    // Generate old versions.
    for i in 0..50u8 {
        let mut tx = node.begin();
        tx.write(addr, vec![i; 64]).unwrap();
        tx.commit().unwrap();
    }
    let allocated_before: usize = engine
        .cluster()
        .nodes()
        .iter()
        .map(|n| n.old_versions().allocated_bytes())
        .sum();
    assert!(allocated_before > 0, "no old-version memory was used");
    // With no active snapshots, the OAT advances and GC reclaims the blocks.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut recycled = 0;
    while std::time::Instant::now() < deadline {
        engine.collect_garbage_now();
        recycled = engine
            .cluster()
            .nodes()
            .iter()
            .map(|n| n.old_versions().block_counters().1)
            .sum::<u64>() as usize;
        if recycled > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(recycled > 0, "GC never reclaimed an old-version block");
    engine.shutdown();
    engine.cluster().shutdown();
}

#[test]
fn strictness_orders_transactions_across_nodes_in_real_time() {
    // If transaction A commits before transaction B starts (on different
    // machines), B's read timestamp must not be below A's write timestamp —
    // the strictness property the uncertainty wait buys.
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
    let a = engine.node(NodeId(1));
    let b = engine.node(NodeId(2));
    let mut setup = engine.node(NodeId(0)).begin();
    let addr = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();
    for i in 1..=20u8 {
        let mut writer = a.begin();
        writer.write(addr, vec![i]).unwrap();
        let info = writer.commit().unwrap();
        let wts = info.write_ts.unwrap();
        let mut reader = b.begin_with(TxOptions::serializable());
        assert!(
            reader.read_ts() >= wts,
            "strictness violated: read ts {} < preceding commit ts {}",
            reader.read_ts(),
            wts
        );
        assert_eq!(
            reader.read(addr).unwrap()[0],
            i,
            "reader missed a committed write"
        );
        reader.commit().unwrap();
    }
    engine.shutdown();
    engine.cluster().shutdown();
}
