//! # farm-net — simulated RDMA cluster substrate
//!
//! FaRMv2 runs on a cluster of machines connected by an RDMA network and
//! relies heavily on **one-sided** RDMA verbs: reads and writes that are
//! served entirely by the remote NIC without involving the remote CPU. This
//! reproduction has no RDMA hardware, so this crate provides an in-process
//! substitute with the same *structural* properties:
//!
//! * Every simulated machine ([`NodeId`]) has an **inbox** of messages served
//!   by its own worker threads — this models the two-sided RPC path (lock
//!   requests, lease renewals, clock synchronization, reconfiguration).
//! * One-sided operations are *not* routed through the inbox at all: the
//!   caller performs a direct load/store on the target machine's memory
//!   (owned by `farm-memory` and shared via `Arc`), mirroring the fact that
//!   an RDMA NIC bypasses the remote CPU. This crate supplies the
//!   [`OneSidedMeter`] used to account for those verbs and to inject
//!   configurable latency so that protocol-level latency compositions remain
//!   realistic.
//! * A [`FaultPlane`] supports killing machines and partitioning the network,
//!   which the kernel's failure detector and reconfiguration protocol react
//!   to.
//!
//! The crate is deliberately independent of the message types used above it:
//! [`Network`] is generic over the message enum defined by `farm-kernel` /
//! `farm-core`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod completion;
mod fault;
mod latency;
mod network;
mod stats;
mod worker;

pub use completion::{Completion, CompletionSet, DispatchMode};
pub use fault::FaultPlane;
pub use latency::LatencyModel;
pub use network::{Envelope, NetError, Network, NodeInbox};
pub use stats::{
    NetStats, NetStatsSnapshot, PhaseHistogram, PhaseHistogramSnapshot, PhaseLabel, Verb,
    PHASE_LABELS,
};
pub use worker::WorkerPool;

use std::fmt;

/// Identifier of a simulated machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Accounts for one-sided RDMA verbs (reads/writes served by the "NIC") and
/// optionally injects latency to model the wire.
///
/// The transaction engine calls [`OneSidedMeter::read`] / [`OneSidedMeter::write`]
/// around every direct access to remote memory so that message counts and
/// bytes match what the real protocol would put on the network.
pub struct OneSidedMeter {
    stats: std::sync::Arc<NetStats>,
    latency: LatencyModel,
}

impl OneSidedMeter {
    /// Creates a meter feeding `stats`, injecting latency per `latency`.
    pub fn new(stats: std::sync::Arc<NetStats>, latency: LatencyModel) -> Self {
        OneSidedMeter { stats, latency }
    }

    /// Accounts for a one-sided RDMA read of `bytes` bytes and injects the
    /// configured read latency.
    #[inline]
    pub fn read(&self, bytes: usize) {
        self.stats.record(Verb::RdmaRead, bytes);
        self.latency.apply_read();
    }

    /// Accounts for a one-sided RDMA write of `bytes` bytes and injects the
    /// configured write latency.
    #[inline]
    pub fn write(&self, bytes: usize) {
        self.stats.record(Verb::RdmaWrite, bytes);
        self.latency.apply_write();
    }

    /// Accounts for the hardware acknowledgement of a previously issued RDMA
    /// write (the coordinator waits for NIC acks of COMMIT-BACKUP messages).
    #[inline]
    pub fn ack(&self) {
        self.stats.record(Verb::HardwareAck, 0);
    }

    /// Accounts for **one** one-sided RDMA read message carrying `ops`
    /// logical reads and `bytes` total payload — a *doorbell-batched* read:
    /// the NIC is rung once for a chain of read work requests, so latency is
    /// injected once however many objects the batch carries. This is the
    /// verb behind `Transaction::read_many` (one batch per destination
    /// primary) and the commit driver's batched VALIDATE phase.
    #[inline]
    pub fn read_batch(&self, ops: u64, bytes: usize) {
        self.stats.record_batch(Verb::RdmaRead, ops, bytes);
        self.latency.apply_read();
    }

    /// Accounts for **one** one-sided RDMA write message carrying `ops`
    /// logical writes and `bytes` total payload (e.g. a COMMIT-BACKUP record
    /// holding a transaction's whole write set for one backup).
    #[inline]
    pub fn write_batch(&self, ops: u64, bytes: usize) {
        self.stats.record_batch(Verb::RdmaWrite, ops, bytes);
        self.latency.apply_write();
    }

    /// Accounts for a two-sided message of `bytes` payload bytes processed by
    /// the remote CPU.
    #[inline]
    pub fn rpc(&self, bytes: usize) {
        self.stats.record(Verb::Rpc, bytes);
        self.latency.apply_rpc();
    }

    /// Accounts for **one** two-sided message carrying `ops` logical
    /// operations (e.g. a LOCK batch of `ops` writes for one primary).
    #[inline]
    pub fn rpc_batch(&self, ops: u64, bytes: usize) {
        self.stats.record_batch(Verb::Rpc, ops, bytes);
        self.latency.apply_rpc();
    }

    // ------------------------------------------------------------------
    // Deferred accounting (completion-queue dispatch)
    // ------------------------------------------------------------------
    //
    // The `*_deferred` variants record the message without injecting any
    // latency: the verb's flight time is owned by the `CompletionSet` that
    // carries it (one deadline wait per phase, however many messages the
    // phase fans out).

    /// Records one batched read message; latency deferred to the carrier
    /// completion set.
    #[inline]
    pub fn read_batch_deferred(&self, ops: u64, bytes: usize) {
        self.stats.record_batch(Verb::RdmaRead, ops, bytes);
    }

    /// Records one batched write message; latency deferred to the carrier
    /// completion set.
    #[inline]
    pub fn write_batch_deferred(&self, ops: u64, bytes: usize) {
        self.stats.record_batch(Verb::RdmaWrite, ops, bytes);
    }

    /// Records one batched two-sided message; latency deferred to the
    /// carrier completion set.
    #[inline]
    pub fn rpc_batch_deferred(&self, ops: u64, bytes: usize) {
        self.stats.record_batch(Verb::Rpc, ops, bytes);
    }

    /// The latency model this meter injects, for building completion sets
    /// that pay the same wire costs.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The underlying statistics sink.
    pub fn stats(&self) -> &std::sync::Arc<NetStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn one_sided_meter_counts_verbs() {
        let stats = Arc::new(NetStats::default());
        let meter = OneSidedMeter::new(stats.clone(), LatencyModel::zero());
        meter.read(64);
        meter.read(128);
        meter.write(256);
        meter.ack();
        let snap = stats.snapshot();
        assert_eq!(snap.count(Verb::RdmaRead), 2);
        assert_eq!(snap.bytes(Verb::RdmaRead), 192);
        assert_eq!(snap.count(Verb::RdmaWrite), 1);
        assert_eq!(snap.count(Verb::HardwareAck), 1);
    }

    #[test]
    fn one_sided_meter_batches_count_one_message() {
        let stats = Arc::new(NetStats::default());
        let meter = OneSidedMeter::new(stats.clone(), LatencyModel::zero());
        meter.rpc_batch(8, 8 * 64);
        meter.write_batch(8, 8 * 64 + 64);
        meter.read_batch(2, 32);
        let snap = stats.snapshot();
        assert_eq!(snap.count(Verb::Rpc), 1);
        assert_eq!(snap.ops(Verb::Rpc), 8);
        assert_eq!(snap.count(Verb::RdmaWrite), 1);
        assert_eq!(snap.ops(Verb::RdmaWrite), 8);
        assert_eq!(snap.count(Verb::RdmaRead), 1);
        assert_eq!(snap.ops(Verb::RdmaRead), 2);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_ops(), 18);
    }
}
