//! Worker threads draining a node's inbox.
//!
//! In FaRM every machine dedicates its cores to polling RDMA-write-based
//! message rings and executing application work. Here each simulated node
//! runs a small [`WorkerPool`] whose threads drain the node's inbox and hand
//! every message to a handler closure supplied by the kernel / transaction
//! engine (lock processing, log application, lease handling, clock
//! synchronization service, reconfiguration, ...).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;

use crate::network::{Envelope, NodeInbox};

/// A pool of threads serving one node's inbox.
pub struct WorkerPool {
    stop: Arc<AtomicBool>,
    handled: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers draining `inbox`, calling `handler` for every
    /// message. The pool stops when [`WorkerPool::shutdown`] is called or the
    /// inbox disconnects.
    pub fn spawn<M, F>(name: &str, threads: usize, inbox: NodeInbox<M>, handler: F) -> Self
    where
        M: Send + 'static,
        F: Fn(Envelope<M>) + Send + Sync + 'static,
    {
        assert!(threads >= 1, "worker pool needs at least one thread");
        let stop = Arc::new(AtomicBool::new(false));
        let handled = Arc::new(AtomicU64::new(0));
        let handler = Arc::new(handler);
        let mut joins = Vec::with_capacity(threads);
        for i in 0..threads {
            let inbox = inbox.clone();
            let stop = Arc::clone(&stop);
            let handled = Arc::clone(&handled);
            let handler = Arc::clone(&handler);
            let thread_name = format!("{name}-w{i}");
            let handle = std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    match inbox.recv_timeout(Duration::from_millis(1)) {
                        Ok(env) => {
                            handler(env);
                            handled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                })
                .expect("failed to spawn worker thread");
            joins.push(handle);
        }
        WorkerPool {
            stop,
            handled,
            threads: joins,
        }
    }

    /// Number of messages handled so far.
    pub fn handled(&self) -> u64 {
        self.handled.load(Ordering::Relaxed)
    }

    /// Signals all workers to stop and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Signals the workers to stop without waiting (used when simulating a
    /// machine crash: the "CPU" just stops).
    pub fn kill(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NodeId};
    use std::sync::Mutex;

    #[test]
    fn workers_handle_messages() {
        let net: Network<u64> = Network::simple();
        net.register(NodeId(0));
        let inbox = net.register(NodeId(1));
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let pool = WorkerPool::spawn("n1", 2, inbox, move |env| {
            seen2.fetch_add(env.msg, Ordering::SeqCst);
        });
        for i in 1..=10u64 {
            net.send(NodeId(0), NodeId(1), i).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.handled() < 10 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.handled(), 10);
        assert_eq!(seen.load(Ordering::SeqCst), 55);
        pool.shutdown();
    }

    #[test]
    fn shutdown_stops_processing() {
        let net: Network<u64> = Network::simple();
        net.register(NodeId(0));
        let inbox = net.register(NodeId(1));
        let pool = WorkerPool::spawn("n1", 1, inbox, |_| {});
        pool.shutdown();
        // Messages sent after shutdown are simply never handled; the send
        // itself still succeeds because the inbox channel is still open on
        // the network side.
        let _ = net.send(NodeId(0), NodeId(1), 1);
    }

    #[test]
    fn kill_stops_workers_without_join() {
        let net: Network<u64> = Network::simple();
        net.register(NodeId(0));
        let inbox = net.register(NodeId(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let order2 = Arc::clone(&order);
        let pool = WorkerPool::spawn("n1", 1, inbox, move |env| {
            order2.lock().unwrap().push(env.msg);
        });
        net.send(NodeId(0), NodeId(1), 1).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.handled() < 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool.kill();
        std::thread::sleep(Duration::from_millis(5));
        // After the "CPU" of node 1 stopped, sends may fail (inbox closed) or
        // be dropped on the floor; either way nothing more is handled.
        let _ = net.send(NodeId(0), NodeId(1), 2);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(order.lock().unwrap().as_slice(), &[1]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let net: Network<u64> = Network::simple();
        let inbox = net.register(NodeId(0));
        let _ = WorkerPool::spawn("n0", 0, inbox, |_| {});
    }
}
