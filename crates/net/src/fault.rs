//! Failure injection: machine crashes and network partitions.

use std::collections::HashSet;

use parking_lot::RwLock;

use crate::NodeId;

/// The cluster-wide fault state consulted on every message send.
///
/// * A **killed** node neither sends nor receives anything (its process is
///   gone). One-sided accesses to a killed node's memory are also rejected by
///   the engine after it observes the kill.
/// * A **partition** assigns nodes to groups; messages only flow within a
///   group. `heal` removes the partition.
#[derive(Debug, Default)]
pub struct FaultPlane {
    inner: RwLock<FaultState>,
}

#[derive(Debug, Default)]
struct FaultState {
    killed: HashSet<NodeId>,
    /// `None` means fully connected. Otherwise `partition[i]` is the group of
    /// node `i`; nodes without an entry are in group 0.
    partition: Option<Vec<(NodeId, u32)>>,
}

impl FaultPlane {
    /// Creates a fault plane with no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a node as crashed.
    pub fn kill(&self, node: NodeId) {
        self.kill_with(node, || {});
    }

    /// Marks a node as crashed, running `also` under the same write lock
    /// *before* the kill becomes visible. Side effects tied to the kill
    /// (e.g. flipping a node handle's liveness flag) therefore publish no
    /// later than the kill itself: any observer that sees
    /// [`FaultPlane::is_killed`] or [`FaultPlane::reachable`] report the
    /// crash is guaranteed to also see the side effect.
    pub fn kill_with(&self, node: NodeId, also: impl FnOnce()) {
        let mut st = self.inner.write();
        also();
        st.killed.insert(node);
    }

    /// Restarts a crashed node (it rejoins with empty state; the kernel
    /// treats it as a brand-new member).
    pub fn revive(&self, node: NodeId) {
        self.inner.write().killed.remove(&node);
    }

    /// Whether the node is currently crashed.
    pub fn is_killed(&self, node: NodeId) -> bool {
        self.inner.read().killed.contains(&node)
    }

    /// Installs a partition described by explicit (node, group) assignments.
    /// Unlisted nodes belong to group 0.
    pub fn partition(&self, assignment: Vec<(NodeId, u32)>) {
        self.inner.write().partition = Some(assignment);
    }

    /// Removes any partition.
    pub fn heal(&self) {
        self.inner.write().partition = None;
    }

    /// Whether a message from `from` can reach `to` given the current faults.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        let st = self.inner.read();
        if st.killed.contains(&from) || st.killed.contains(&to) {
            return false;
        }
        match &st.partition {
            None => true,
            Some(groups) => group_of(groups, from) == group_of(groups, to),
        }
    }

    /// The set of currently killed nodes.
    pub fn killed_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.inner.read().killed.iter().copied().collect();
        v.sort();
        v
    }
}

fn group_of(groups: &[(NodeId, u32)], node: NodeId) -> u32 {
    groups
        .iter()
        .find(|(n, _)| *n == node)
        .map(|(_, g)| *g)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_by_default() {
        let f = FaultPlane::new();
        assert!(f.reachable(NodeId(0), NodeId(1)));
        assert!(f.reachable(NodeId(1), NodeId(0)));
        assert!(f.killed_nodes().is_empty());
    }

    #[test]
    fn killed_node_is_unreachable_both_ways() {
        let f = FaultPlane::new();
        f.kill(NodeId(2));
        assert!(f.is_killed(NodeId(2)));
        assert!(!f.reachable(NodeId(0), NodeId(2)));
        assert!(!f.reachable(NodeId(2), NodeId(0)));
        assert!(f.reachable(NodeId(0), NodeId(1)));
        f.revive(NodeId(2));
        assert!(f.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn partition_blocks_cross_group_traffic_only() {
        let f = FaultPlane::new();
        f.partition(vec![(NodeId(0), 0), (NodeId(1), 0), (NodeId(2), 1)]);
        assert!(f.reachable(NodeId(0), NodeId(1)));
        assert!(!f.reachable(NodeId(0), NodeId(2)));
        assert!(!f.reachable(NodeId(2), NodeId(1)));
        f.heal();
        assert!(f.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn unlisted_nodes_default_to_group_zero() {
        let f = FaultPlane::new();
        f.partition(vec![(NodeId(5), 1)]);
        assert!(f.reachable(NodeId(0), NodeId(1)));
        assert!(!f.reachable(NodeId(0), NodeId(5)));
    }

    #[test]
    fn reachability_is_symmetric() {
        let f = FaultPlane::new();
        f.partition(vec![
            (NodeId(0), 0),
            (NodeId(1), 1),
            (NodeId(2), 1),
            (NodeId(3), 0),
        ]);
        f.kill(NodeId(3));
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(
                    f.reachable(NodeId(a), NodeId(b)),
                    f.reachable(NodeId(b), NodeId(a)),
                    "reachability asymmetric between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn partition_then_heal_restores_full_connectivity() {
        let f = FaultPlane::new();
        f.partition(vec![(NodeId(0), 0), (NodeId(1), 1), (NodeId(2), 2)]);
        assert!(!f.reachable(NodeId(0), NodeId(1)));
        assert!(!f.reachable(NodeId(1), NodeId(2)));
        f.heal();
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert!(f.reachable(NodeId(a), NodeId(b)));
            }
        }
        // Healing an already-healed plane is a no-op.
        f.heal();
        assert!(f.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn kill_overrides_partition() {
        let f = FaultPlane::new();
        f.partition(vec![(NodeId(0), 0), (NodeId(1), 0)]);
        f.kill(NodeId(1));
        // Same partition group, but the node is dead.
        assert!(!f.reachable(NodeId(0), NodeId(1)));
        // Healing the partition does not resurrect the node.
        f.heal();
        assert!(!f.reachable(NodeId(0), NodeId(1)));
        assert!(f.is_killed(NodeId(1)));
        f.revive(NodeId(1));
        assert!(f.reachable(NodeId(0), NodeId(1)));
    }

    #[test]
    fn kill_with_side_effect_is_visible_with_the_kill() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let f = FaultPlane::new();
        let flag = AtomicBool::new(false);
        f.kill_with(NodeId(1), || flag.store(true, Ordering::Release));
        assert!(f.is_killed(NodeId(1)));
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn killed_nodes_are_sorted() {
        let f = FaultPlane::new();
        f.kill(NodeId(3));
        f.kill(NodeId(1));
        assert_eq!(f.killed_nodes(), vec![NodeId(1), NodeId(3)]);
    }
}
