//! Per-node network statistics: message counts, logical operations and bytes
//! by verb.
//!
//! Messages and operations are tracked separately because the commit
//! protocol batches per destination: a LOCK message carrying K writes for one
//! primary is **one** message (`count`) but **K** logical operations (`ops`).
//! The divergence of the two curves is exactly the batching win the paper's
//! coordinator gets from fanning out one message per machine rather than one
//! per object.

use std::sync::atomic::{AtomicU64, Ordering};

/// The kinds of network operations the protocol issues. The split mirrors
/// the cost discussion in Sections 3.2 and 4.2 of the paper: one-sided reads
/// and writes are served by the remote NIC; RPCs consume remote CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// One-sided RDMA read (object reads, read validation).
    RdmaRead,
    /// One-sided RDMA write (COMMIT-BACKUP, COMMIT-PRIMARY records, RPC
    /// transports in FaRM are also RDMA-write based, but we count those as
    /// `Rpc`).
    RdmaWrite,
    /// Hardware (NIC-level) acknowledgement awaited by the sender.
    HardwareAck,
    /// Two-sided message processed by the remote CPU (lock requests, lease
    /// renewals, clock synchronization, reconfiguration, truncation).
    Rpc,
}

const VERBS: [Verb; 4] = [
    Verb::RdmaRead,
    Verb::RdmaWrite,
    Verb::HardwareAck,
    Verb::Rpc,
];

fn verb_index(v: Verb) -> usize {
    match v {
        Verb::RdmaRead => 0,
        Verb::RdmaWrite => 1,
        Verb::HardwareAck => 2,
        Verb::Rpc => 3,
    }
}

/// Lock-free counters for one node (or for the whole cluster, depending on
/// where the instance is placed).
#[derive(Debug, Default)]
pub struct NetStats {
    counts: [AtomicU64; 4],
    ops: [AtomicU64; 4],
    bytes: [AtomicU64; 4],
}

impl NetStats {
    /// Records one operation of kind `verb` carrying `bytes` payload bytes.
    #[inline]
    pub fn record(&self, verb: Verb, bytes: usize) {
        self.record_batch(verb, 1, bytes);
    }

    /// Records **one message** of kind `verb` carrying `ops` logical
    /// operations and `bytes` payload bytes in total. This is the batched
    /// form used by the commit driver: K writes destined to one primary are
    /// one message with `ops == K`.
    #[inline]
    pub fn record_batch(&self, verb: Verb, ops: u64, bytes: usize) {
        let i = verb_index(verb);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.ops[i].fetch_add(ops, Ordering::Relaxed);
        self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters (relaxed loads;
    /// intended for reporting, not for synchronization).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        let mut snap = NetStatsSnapshot::default();
        for v in VERBS {
            let i = verb_index(v);
            snap.counts[i] = self.counts[i].load(Ordering::Relaxed);
            snap.ops[i] = self.ops[i].load(Ordering::Relaxed);
            snap.bytes[i] = self.bytes[i].load(Ordering::Relaxed);
        }
        snap
    }

    /// Resets all counters to zero (used between benchmark phases).
    pub fn reset(&self) {
        for i in 0..4 {
            self.counts[i].store(0, Ordering::Relaxed);
            self.ops[i].store(0, Ordering::Relaxed);
            self.bytes[i].store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`NetStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    counts: [u64; 4],
    ops: [u64; 4],
    bytes: [u64; 4],
}

impl NetStatsSnapshot {
    /// Number of messages of the given verb.
    pub fn count(&self, verb: Verb) -> u64 {
        self.counts[verb_index(verb)]
    }

    /// Number of logical operations carried by messages of the given verb
    /// (equal to [`NetStatsSnapshot::count`] unless batching was used).
    pub fn ops(&self, verb: Verb) -> u64 {
        self.ops[verb_index(verb)]
    }

    /// Total payload bytes of the given verb.
    pub fn bytes(&self, verb: Verb) -> u64 {
        self.bytes[verb_index(verb)]
    }

    /// Total messages across all verbs.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total logical operations across all verbs.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Mean batch size of the given verb (operations per message; 1.0 when
    /// unbatched, 0.0 when idle).
    pub fn mean_batch(&self, verb: Verb) -> f64 {
        let i = verb_index(verb);
        if self.counts[i] == 0 {
            0.0
        } else {
            self.ops[i] as f64 / self.counts[i] as f64
        }
    }

    /// Element-wise difference `self - earlier`, for per-interval reporting.
    pub fn delta(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        let mut out = NetStatsSnapshot::default();
        for i in 0..4 {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            out.ops[i] = self.ops[i].saturating_sub(earlier.ops[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
        }
        out
    }

    /// Element-wise sum, for aggregating per-node sinks into cluster totals.
    pub fn merged(&self, other: &NetStatsSnapshot) -> NetStatsSnapshot {
        let mut out = NetStatsSnapshot::default();
        for i in 0..4 {
            out.counts[i] = self.counts[i] + other.counts[i];
            out.ops[i] = self.ops[i] + other.ops[i];
            out.bytes[i] = self.bytes[i] + other.bytes[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = NetStats::default();
        s.record(Verb::Rpc, 100);
        s.record(Verb::Rpc, 50);
        s.record(Verb::RdmaRead, 64);
        let snap = s.snapshot();
        assert_eq!(snap.count(Verb::Rpc), 2);
        assert_eq!(snap.ops(Verb::Rpc), 2);
        assert_eq!(snap.bytes(Verb::Rpc), 150);
        assert_eq!(snap.count(Verb::RdmaRead), 1);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_ops(), 3);
    }

    #[test]
    fn batched_records_diverge_messages_from_ops() {
        let s = NetStats::default();
        // One LOCK message carrying 8 writes.
        s.record_batch(Verb::Rpc, 8, 8 * 64);
        let snap = s.snapshot();
        assert_eq!(snap.count(Verb::Rpc), 1);
        assert_eq!(snap.ops(Verb::Rpc), 8);
        assert_eq!(snap.bytes(Verb::Rpc), 512);
        assert_eq!(snap.mean_batch(Verb::Rpc), 8.0);
        assert_eq!(snap.mean_batch(Verb::RdmaRead), 0.0);
    }

    #[test]
    fn delta_subtracts_earlier_snapshot() {
        let s = NetStats::default();
        s.record(Verb::RdmaWrite, 10);
        let a = s.snapshot();
        s.record_batch(Verb::RdmaWrite, 3, 20);
        s.record(Verb::HardwareAck, 0);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.count(Verb::RdmaWrite), 1);
        assert_eq!(d.ops(Verb::RdmaWrite), 3);
        assert_eq!(d.bytes(Verb::RdmaWrite), 20);
        assert_eq!(d.count(Verb::HardwareAck), 1);
    }

    #[test]
    fn merged_sums_counters() {
        let s = NetStats::default();
        s.record_batch(Verb::Rpc, 4, 100);
        let a = s.snapshot();
        let m = a.merged(&a);
        assert_eq!(m.count(Verb::Rpc), 2);
        assert_eq!(m.ops(Verb::Rpc), 8);
        assert_eq!(m.bytes(Verb::Rpc), 200);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = NetStats::default();
        s.record_batch(Verb::Rpc, 5, 1);
        s.reset();
        assert_eq!(s.snapshot().total_messages(), 0);
        assert_eq!(s.snapshot().total_ops(), 0);
    }
}
