//! Per-node network statistics: message counts, logical operations and bytes
//! by verb.
//!
//! Messages and operations are tracked separately because the commit
//! protocol batches per destination: a LOCK message carrying K writes for one
//! primary is **one** message (`count`) but **K** logical operations (`ops`).
//! The divergence of the two curves is exactly the batching win the paper's
//! coordinator gets from fanning out one message per machine rather than one
//! per object.

use std::sync::atomic::{AtomicU64, Ordering};

/// The kinds of network operations the protocol issues. The split mirrors
/// the cost discussion in Sections 3.2 and 4.2 of the paper: one-sided reads
/// and writes are served by the remote NIC; RPCs consume remote CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// One-sided RDMA read (object reads, read validation).
    RdmaRead,
    /// One-sided RDMA write (COMMIT-BACKUP, COMMIT-PRIMARY records, RPC
    /// transports in FaRM are also RDMA-write based, but we count those as
    /// `Rpc`).
    RdmaWrite,
    /// Hardware (NIC-level) acknowledgement awaited by the sender.
    HardwareAck,
    /// Two-sided message processed by the remote CPU (lock requests, lease
    /// renewals, clock synchronization, reconfiguration, truncation).
    Rpc,
}

const VERBS: [Verb; 4] = [
    Verb::RdmaRead,
    Verb::RdmaWrite,
    Verb::HardwareAck,
    Verb::Rpc,
];

fn verb_index(v: Verb) -> usize {
    match v {
        Verb::RdmaRead => 0,
        Verb::RdmaWrite => 1,
        Verb::HardwareAck => 2,
        Verb::Rpc => 3,
    }
}

/// Protocol phases whose wall-clock cost the engine reports per message
/// burst. The first seven mirror the commit driver's state machine; the last
/// covers the batched execution-phase read path. Keeping the label set here
/// (next to [`Verb`]) lets the fan-out vs serial cost of each phase be
/// observed from network statistics alone, without a profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseLabel {
    /// Batched LOCK messages to the destination primaries.
    Lock,
    /// Write-timestamp acquisition (zero wall-clock when the uncertainty
    /// wait is deferred into [`PhaseLabel::ReplicateBackups`]).
    AcquireWriteTs,
    /// Batched read validation.
    Validate,
    /// COMMIT-BACKUP replication (absorbs the deferred uncertainty wait in
    /// the pipelined dispatch modes).
    ReplicateBackups,
    /// COMMIT-PRIMARY installs.
    InstallPrimary,
    /// TRUNCATE messages to backups.
    Truncate,
    /// Operation-log appends.
    OperationLog,
    /// The execution-phase `read_many` fan-out.
    ReadMany,
}

/// Every phase label, in recording order.
pub const PHASE_LABELS: [PhaseLabel; 8] = [
    PhaseLabel::Lock,
    PhaseLabel::AcquireWriteTs,
    PhaseLabel::Validate,
    PhaseLabel::ReplicateBackups,
    PhaseLabel::InstallPrimary,
    PhaseLabel::Truncate,
    PhaseLabel::OperationLog,
    PhaseLabel::ReadMany,
];

const PHASES: usize = 8;

fn phase_index(p: PhaseLabel) -> usize {
    match p {
        PhaseLabel::Lock => 0,
        PhaseLabel::AcquireWriteTs => 1,
        PhaseLabel::Validate => 2,
        PhaseLabel::ReplicateBackups => 3,
        PhaseLabel::InstallPrimary => 4,
        PhaseLabel::Truncate => 5,
        PhaseLabel::OperationLog => 6,
        PhaseLabel::ReadMany => 7,
    }
}

impl PhaseLabel {
    /// A short stable name for CSV/JSON reporting.
    pub fn name(self) -> &'static str {
        match self {
            PhaseLabel::Lock => "lock",
            PhaseLabel::AcquireWriteTs => "acquire_write_ts",
            PhaseLabel::Validate => "validate",
            PhaseLabel::ReplicateBackups => "replicate_backups",
            PhaseLabel::InstallPrimary => "install_primary",
            PhaseLabel::Truncate => "truncate",
            PhaseLabel::OperationLog => "operation_log",
            PhaseLabel::ReadMany => "read_many",
        }
    }
}

/// Wall-clock buckets per phase: log₂-spaced nanosecond buckets (bucket `b`
/// holds samples in `[2^(b-1), 2^b)`; bucket 0 holds 0–1 ns), enough to span
/// sub-microsecond local bypasses to multi-second stalls.
const BUCKETS: usize = 40;

/// A lock-free per-phase histogram of wall-clock nanoseconds.
///
/// Recording is two relaxed `fetch_add`s; quantiles are approximate (bucket
/// resolution is a factor of two) but the counts and total nanoseconds are
/// exact, so means are exact.
#[derive(Debug)]
pub struct PhaseHistogram {
    buckets: [[AtomicU64; BUCKETS]; PHASES],
    total_ns: [AtomicU64; PHASES],
    count: [AtomicU64; PHASES],
}

impl Default for PhaseHistogram {
    fn default() -> Self {
        PhaseHistogram {
            buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            count: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
}

impl PhaseHistogram {
    /// Records one observation of `ns` wall-clock nanoseconds for `phase`.
    #[inline]
    pub fn record(&self, phase: PhaseLabel, ns: u64) {
        let p = phase_index(phase);
        self.buckets[p][bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.total_ns[p].fetch_add(ns, Ordering::Relaxed);
        self.count[p].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy (relaxed loads; for reporting).
    pub fn snapshot(&self) -> PhaseHistogramSnapshot {
        let mut snap = PhaseHistogramSnapshot::default();
        for p in 0..PHASES {
            for b in 0..BUCKETS {
                snap.buckets[p][b] = self.buckets[p][b].load(Ordering::Relaxed);
            }
            snap.total_ns[p] = self.total_ns[p].load(Ordering::Relaxed);
            snap.count[p] = self.count[p].load(Ordering::Relaxed);
        }
        snap
    }

    /// Resets all buckets (between benchmark intervals).
    pub fn reset(&self) {
        for p in 0..PHASES {
            for b in &self.buckets[p] {
                b.store(0, Ordering::Relaxed);
            }
            self.total_ns[p].store(0, Ordering::Relaxed);
            self.count[p].store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`PhaseHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseHistogramSnapshot {
    buckets: [[u64; BUCKETS]; PHASES],
    total_ns: [u64; PHASES],
    count: [u64; PHASES],
}

impl Default for PhaseHistogramSnapshot {
    fn default() -> Self {
        PhaseHistogramSnapshot {
            buckets: [[0; BUCKETS]; PHASES],
            total_ns: [0; PHASES],
            count: [0; PHASES],
        }
    }
}

impl PhaseHistogramSnapshot {
    /// Number of recorded observations for `phase`.
    pub fn count(&self, phase: PhaseLabel) -> u64 {
        self.count[phase_index(phase)]
    }

    /// Total recorded nanoseconds for `phase`.
    pub fn total_ns(&self, phase: PhaseLabel) -> u64 {
        self.total_ns[phase_index(phase)]
    }

    /// Exact mean wall-clock nanoseconds for `phase` (0.0 when idle).
    pub fn mean_ns(&self, phase: PhaseLabel) -> f64 {
        let p = phase_index(phase);
        if self.count[p] == 0 {
            0.0
        } else {
            self.total_ns[p] as f64 / self.count[p] as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper
    /// edge of the bucket holding the rank-`q` sample. Resolution is a
    /// factor of two; 0 when no samples were recorded.
    pub fn quantile_ns(&self, phase: PhaseLabel, q: f64) -> u64 {
        let p = phase_index(phase);
        let total = self.count[p];
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets[p].iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == 0 { 1 } else { 1u64 << b };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Element-wise difference `self - earlier`, for per-interval reporting.
    pub fn delta(&self, earlier: &PhaseHistogramSnapshot) -> PhaseHistogramSnapshot {
        let mut out = PhaseHistogramSnapshot::default();
        for p in 0..PHASES {
            for b in 0..BUCKETS {
                out.buckets[p][b] = self.buckets[p][b].saturating_sub(earlier.buckets[p][b]);
            }
            out.total_ns[p] = self.total_ns[p].saturating_sub(earlier.total_ns[p]);
            out.count[p] = self.count[p].saturating_sub(earlier.count[p]);
        }
        out
    }

    /// Element-wise sum, for aggregating per-node histograms.
    pub fn merged(&self, other: &PhaseHistogramSnapshot) -> PhaseHistogramSnapshot {
        let mut out = PhaseHistogramSnapshot::default();
        for p in 0..PHASES {
            for b in 0..BUCKETS {
                out.buckets[p][b] = self.buckets[p][b] + other.buckets[p][b];
            }
            out.total_ns[p] = self.total_ns[p] + other.total_ns[p];
            out.count[p] = self.count[p] + other.count[p];
        }
        out
    }
}

/// Lock-free counters for one node (or for the whole cluster, depending on
/// where the instance is placed).
#[derive(Debug, Default)]
pub struct NetStats {
    counts: [AtomicU64; 4],
    ops: [AtomicU64; 4],
    bytes: [AtomicU64; 4],
    /// High-water mark of simultaneously in-flight verbs (reported by
    /// completion sets at drain time).
    max_inflight: AtomicU64,
    /// Per-phase wall-clock histogram fed by the engine's phase timers.
    phases: PhaseHistogram,
}

impl NetStats {
    /// Records one operation of kind `verb` carrying `bytes` payload bytes.
    #[inline]
    pub fn record(&self, verb: Verb, bytes: usize) {
        self.record_batch(verb, 1, bytes);
    }

    /// Records **one message** of kind `verb` carrying `ops` logical
    /// operations and `bytes` payload bytes in total. This is the batched
    /// form used by the commit driver: K writes destined to one primary are
    /// one message with `ops == K`.
    #[inline]
    pub fn record_batch(&self, verb: Verb, ops: u64, bytes: usize) {
        let i = verb_index(verb);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.ops[i].fetch_add(ops, Ordering::Relaxed);
        self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters (relaxed loads;
    /// intended for reporting, not for synchronization).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        let mut snap = NetStatsSnapshot::default();
        for v in VERBS {
            let i = verb_index(v);
            snap.counts[i] = self.counts[i].load(Ordering::Relaxed);
            snap.ops[i] = self.ops[i].load(Ordering::Relaxed);
            snap.bytes[i] = self.bytes[i].load(Ordering::Relaxed);
        }
        snap
    }

    /// Resets all counters to zero (used between benchmark phases).
    pub fn reset(&self) {
        for i in 0..4 {
            self.counts[i].store(0, Ordering::Relaxed);
            self.ops[i].store(0, Ordering::Relaxed);
            self.bytes[i].store(0, Ordering::Relaxed);
        }
        self.max_inflight.store(0, Ordering::Relaxed);
        self.phases.reset();
    }

    /// Reports `n` verbs simultaneously in flight; keeps the high-water
    /// mark. Called by [`crate::CompletionSet`] when it drains.
    #[inline]
    pub fn note_inflight(&self, n: u64) {
        self.max_inflight.fetch_max(n, Ordering::Relaxed);
    }

    /// The largest number of simultaneously in-flight verbs observed.
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight.load(Ordering::Relaxed)
    }

    /// The per-phase wall-clock histogram.
    pub fn phases(&self) -> &PhaseHistogram {
        &self.phases
    }
}

/// A point-in-time copy of [`NetStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    counts: [u64; 4],
    ops: [u64; 4],
    bytes: [u64; 4],
}

impl NetStatsSnapshot {
    /// Number of messages of the given verb.
    pub fn count(&self, verb: Verb) -> u64 {
        self.counts[verb_index(verb)]
    }

    /// Number of logical operations carried by messages of the given verb
    /// (equal to [`NetStatsSnapshot::count`] unless batching was used).
    pub fn ops(&self, verb: Verb) -> u64 {
        self.ops[verb_index(verb)]
    }

    /// Total payload bytes of the given verb.
    pub fn bytes(&self, verb: Verb) -> u64 {
        self.bytes[verb_index(verb)]
    }

    /// Total messages across all verbs.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total logical operations across all verbs.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Mean batch size of the given verb (operations per message; 1.0 when
    /// unbatched, 0.0 when idle).
    pub fn mean_batch(&self, verb: Verb) -> f64 {
        let i = verb_index(verb);
        if self.counts[i] == 0 {
            0.0
        } else {
            self.ops[i] as f64 / self.counts[i] as f64
        }
    }

    /// Element-wise difference `self - earlier`, for per-interval reporting.
    pub fn delta(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        let mut out = NetStatsSnapshot::default();
        for i in 0..4 {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            out.ops[i] = self.ops[i].saturating_sub(earlier.ops[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
        }
        out
    }

    /// Element-wise sum, for aggregating per-node sinks into cluster totals.
    pub fn merged(&self, other: &NetStatsSnapshot) -> NetStatsSnapshot {
        let mut out = NetStatsSnapshot::default();
        for i in 0..4 {
            out.counts[i] = self.counts[i] + other.counts[i];
            out.ops[i] = self.ops[i] + other.ops[i];
            out.bytes[i] = self.bytes[i] + other.bytes[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = NetStats::default();
        s.record(Verb::Rpc, 100);
        s.record(Verb::Rpc, 50);
        s.record(Verb::RdmaRead, 64);
        let snap = s.snapshot();
        assert_eq!(snap.count(Verb::Rpc), 2);
        assert_eq!(snap.ops(Verb::Rpc), 2);
        assert_eq!(snap.bytes(Verb::Rpc), 150);
        assert_eq!(snap.count(Verb::RdmaRead), 1);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_ops(), 3);
    }

    #[test]
    fn batched_records_diverge_messages_from_ops() {
        let s = NetStats::default();
        // One LOCK message carrying 8 writes.
        s.record_batch(Verb::Rpc, 8, 8 * 64);
        let snap = s.snapshot();
        assert_eq!(snap.count(Verb::Rpc), 1);
        assert_eq!(snap.ops(Verb::Rpc), 8);
        assert_eq!(snap.bytes(Verb::Rpc), 512);
        assert_eq!(snap.mean_batch(Verb::Rpc), 8.0);
        assert_eq!(snap.mean_batch(Verb::RdmaRead), 0.0);
    }

    #[test]
    fn delta_subtracts_earlier_snapshot() {
        let s = NetStats::default();
        s.record(Verb::RdmaWrite, 10);
        let a = s.snapshot();
        s.record_batch(Verb::RdmaWrite, 3, 20);
        s.record(Verb::HardwareAck, 0);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.count(Verb::RdmaWrite), 1);
        assert_eq!(d.ops(Verb::RdmaWrite), 3);
        assert_eq!(d.bytes(Verb::RdmaWrite), 20);
        assert_eq!(d.count(Verb::HardwareAck), 1);
    }

    #[test]
    fn merged_sums_counters() {
        let s = NetStats::default();
        s.record_batch(Verb::Rpc, 4, 100);
        let a = s.snapshot();
        let m = a.merged(&a);
        assert_eq!(m.count(Verb::Rpc), 2);
        assert_eq!(m.ops(Verb::Rpc), 8);
        assert_eq!(m.bytes(Verb::Rpc), 200);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = NetStats::default();
        s.record_batch(Verb::Rpc, 5, 1);
        s.note_inflight(7);
        s.phases().record(PhaseLabel::Lock, 1_000);
        s.reset();
        assert_eq!(s.snapshot().total_messages(), 0);
        assert_eq!(s.snapshot().total_ops(), 0);
        assert_eq!(s.max_inflight(), 0);
        assert_eq!(s.phases().snapshot().count(PhaseLabel::Lock), 0);
    }

    #[test]
    fn inflight_high_water_mark() {
        let s = NetStats::default();
        s.note_inflight(3);
        s.note_inflight(9);
        s.note_inflight(5);
        assert_eq!(s.max_inflight(), 9);
    }

    #[test]
    fn phase_histogram_counts_means_and_quantiles() {
        let h = PhaseHistogram::default();
        for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.record(PhaseLabel::ReplicateBackups, ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(PhaseLabel::ReplicateBackups), 4);
        assert_eq!(snap.total_ns(PhaseLabel::ReplicateBackups), 1_007_000);
        assert!((snap.mean_ns(PhaseLabel::ReplicateBackups) - 251_750.0).abs() < 1.0);
        // The p50 bucket must bound 2 000 ns within a factor of two; the p99
        // bucket must bound the 1 ms outlier within a factor of two.
        let p50 = snap.quantile_ns(PhaseLabel::ReplicateBackups, 0.5);
        assert!((2_000..=4_096).contains(&p50), "p50 bucket {p50}");
        let p99 = snap.quantile_ns(PhaseLabel::ReplicateBackups, 0.99);
        assert!((1_000_000..=2_097_152).contains(&p99), "p99 bucket {p99}");
        // Untouched phases stay empty.
        assert_eq!(snap.count(PhaseLabel::Lock), 0);
        assert_eq!(snap.quantile_ns(PhaseLabel::Lock, 0.5), 0);
    }

    #[test]
    fn phase_histogram_delta_and_merge() {
        let h = PhaseHistogram::default();
        h.record(PhaseLabel::Lock, 100);
        let a = h.snapshot();
        h.record(PhaseLabel::Lock, 200);
        let b = h.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.count(PhaseLabel::Lock), 1);
        assert_eq!(d.total_ns(PhaseLabel::Lock), 200);
        let m = a.merged(&b);
        assert_eq!(m.count(PhaseLabel::Lock), 3);
        assert_eq!(m.total_ns(PhaseLabel::Lock), 400);
    }

    #[test]
    fn phase_labels_have_stable_names() {
        let names: std::collections::HashSet<&str> =
            PHASE_LABELS.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASE_LABELS.len());
    }
}
