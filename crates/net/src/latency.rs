//! Optional latency injection for one-sided verbs and RPCs.
//!
//! Inside a single process a "remote" memory access costs nanoseconds, while
//! a real RDMA read within a data center costs a couple of microseconds and
//! an RPC a few more. For experiments where the latency *composition* matters
//! (e.g. the throughput/latency curve of Figure 13) the harness can configure
//! a [`LatencyModel`]; for raw-throughput experiments it uses
//! [`LatencyModel::zero`], which compiles down to a no-op.
//!
//! Latency can be paid in two ways:
//!
//! * **Inline** ([`LatencyModel::apply_read`] and friends): the caller blocks
//!   for the verb's full latency before continuing — the serial dispatch
//!   model, where a phase touching K destinations pays `K × latency`.
//! * **Deadline-based** ([`LatencyModel::verb_ns`] +
//!   [`LatencyModel::wait_until`]): the caller computes a completion deadline
//!   per verb at issue time and blocks **once**, at the latest deadline —
//!   the completion-queue model used by [`crate::CompletionSet`], where a
//!   phase fanning out to K destinations pays `max(latency)` like a real
//!   coordinator waiting on its NIC completion queue.

use std::time::{Duration, Instant};

use crate::Verb;

/// Waits at or above this many nanoseconds sleep; shorter waits spin (with
/// periodic yields). See [`LatencyModel::spin_threshold_ns`].
pub const DEFAULT_SPIN_THRESHOLD_NS: u64 = 20_000;

/// Fixed per-verb latencies injected by busy-waiting (for short values)
/// or sleeping (for values at or above the spin threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Latency of a one-sided RDMA read, in nanoseconds.
    pub rdma_read_ns: u64,
    /// Latency of a one-sided RDMA write (until NIC ack), in nanoseconds.
    pub rdma_write_ns: u64,
    /// Latency of a two-sided RPC (one way), in nanoseconds.
    pub rpc_ns: u64,
    /// Waits of at least this many nanoseconds sleep instead of spinning.
    /// Shorter waits busy-spin, yielding the CPU periodically so that a
    /// host with fewer cores than simulated in-flight verbs still makes
    /// progress. The old behavior (spin up to 100 µs, monopolizing a core
    /// per waiter) is recovered by setting this to `100_000`.
    pub spin_threshold_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            rdma_read_ns: 0,
            rdma_write_ns: 0,
            rpc_ns: 0,
            spin_threshold_ns: DEFAULT_SPIN_THRESHOLD_NS,
        }
    }
}

impl LatencyModel {
    /// No injected latency.
    pub fn zero() -> Self {
        LatencyModel::default()
    }

    /// A model loosely calibrated to the paper's testbed: ~2.5 µs one-sided
    /// reads, ~3 µs writes-to-ack, ~7 µs RPC one-way under load.
    pub fn datacenter() -> Self {
        LatencyModel {
            rdma_read_ns: 2_500,
            rdma_write_ns: 3_000,
            rpc_ns: 7_000,
            ..Default::default()
        }
    }

    /// The configured latency of one verb, in nanoseconds. (Hardware acks
    /// are covered by the write-to-ack latency and cost nothing extra.)
    #[inline]
    pub fn verb_ns(&self, verb: Verb) -> u64 {
        match verb {
            Verb::RdmaRead => self.rdma_read_ns,
            Verb::RdmaWrite => self.rdma_write_ns,
            Verb::HardwareAck => 0,
            Verb::Rpc => self.rpc_ns,
        }
    }

    /// Injects the read latency.
    #[inline]
    pub fn apply_read(&self) {
        busy_wait(self.rdma_read_ns, self.spin_threshold_ns);
    }

    /// Injects the write latency.
    #[inline]
    pub fn apply_write(&self) {
        busy_wait(self.rdma_write_ns, self.spin_threshold_ns);
    }

    /// Injects the RPC latency.
    #[inline]
    pub fn apply_rpc(&self) {
        busy_wait(self.rpc_ns, self.spin_threshold_ns);
    }

    /// Blocks until `deadline` has passed (no-op if it already has) — the
    /// single per-phase wait of the deadline-based accounting model.
    pub fn wait_until(&self, deadline: Instant) {
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return;
            };
            busy_wait(remaining.as_nanos() as u64, self.spin_threshold_ns);
        }
    }
}

/// Busy-waits for small durations (yielding periodically so co-scheduled
/// waiters on small hosts still run), sleeps for durations at or above
/// `spin_threshold_ns`, does nothing for 0.
#[inline]
fn busy_wait(ns: u64, spin_threshold_ns: u64) {
    if ns == 0 {
        return;
    }
    if ns >= spin_threshold_ns {
        std::thread::sleep(Duration::from_nanos(ns));
        return;
    }
    let start = Instant::now();
    let mut spins = 0u32;
    while (start.elapsed().as_nanos() as u64) < ns {
        spins += 1;
        if spins.is_multiple_of(256) {
            // Let another simulated participant (worker thread, co-located
            // coordinator) run; a dedicated core pays ~100 ns per yield,
            // an oversubscribed one avoids a whole scheduling quantum.
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        let start = std::time::Instant::now();
        for _ in 0..10_000 {
            m.apply_read();
            m.apply_write();
            m.apply_rpc();
        }
        // 30k no-op applications should take well under 10 ms.
        assert!(start.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn nonzero_model_actually_waits() {
        let m = LatencyModel {
            rdma_read_ns: 200_000,
            ..Default::default()
        };
        let start = std::time::Instant::now();
        m.apply_read();
        assert!(start.elapsed() >= Duration::from_micros(150));
    }

    #[test]
    fn datacenter_model_has_expected_ordering() {
        let m = LatencyModel::datacenter();
        assert!(m.rdma_read_ns < m.rpc_ns);
        assert!(m.rdma_write_ns < m.rpc_ns);
        assert_eq!(m.verb_ns(Verb::RdmaRead), m.rdma_read_ns);
        assert_eq!(m.verb_ns(Verb::RdmaWrite), m.rdma_write_ns);
        assert_eq!(m.verb_ns(Verb::Rpc), m.rpc_ns);
        assert_eq!(m.verb_ns(Verb::HardwareAck), 0);
    }

    #[test]
    fn wait_until_blocks_until_deadline() {
        let m = LatencyModel::datacenter();
        let start = Instant::now();
        let deadline = start + Duration::from_micros(100);
        m.wait_until(deadline);
        assert!(start.elapsed() >= Duration::from_micros(100));
        // A deadline already in the past returns immediately.
        let start = Instant::now();
        m.wait_until(start - Duration::from_micros(1));
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn spin_threshold_is_configurable() {
        // A threshold of 0 forces the sleep path even for tiny waits; the
        // wait must still cover the requested duration.
        let m = LatencyModel {
            rdma_read_ns: 50_000,
            spin_threshold_ns: 0,
            ..Default::default()
        };
        let start = Instant::now();
        m.apply_read();
        assert!(start.elapsed() >= Duration::from_micros(50));
    }
}
