//! Optional latency injection for one-sided verbs and RPCs.
//!
//! Inside a single process a "remote" memory access costs nanoseconds, while
//! a real RDMA read within a data center costs a couple of microseconds and
//! an RPC a few more. For experiments where the latency *composition* matters
//! (e.g. the throughput/latency curve of Figure 13) the harness can configure
//! a [`LatencyModel`]; for raw-throughput experiments it uses
//! [`LatencyModel::zero`], which compiles down to a no-op.

use std::time::Duration;

/// Fixed per-verb latencies injected by busy-waiting (for sub-10µs values)
/// or sleeping (for larger values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyModel {
    /// Latency of a one-sided RDMA read, in nanoseconds.
    pub rdma_read_ns: u64,
    /// Latency of a one-sided RDMA write (until NIC ack), in nanoseconds.
    pub rdma_write_ns: u64,
    /// Latency of a two-sided RPC (one way), in nanoseconds.
    pub rpc_ns: u64,
}

impl LatencyModel {
    /// No injected latency.
    pub fn zero() -> Self {
        LatencyModel::default()
    }

    /// A model loosely calibrated to the paper's testbed: ~2.5 µs one-sided
    /// reads, ~3 µs writes-to-ack, ~7 µs RPC one-way under load.
    pub fn datacenter() -> Self {
        LatencyModel {
            rdma_read_ns: 2_500,
            rdma_write_ns: 3_000,
            rpc_ns: 7_000,
        }
    }

    /// Injects the read latency.
    #[inline]
    pub fn apply_read(&self) {
        busy_wait(self.rdma_read_ns);
    }

    /// Injects the write latency.
    #[inline]
    pub fn apply_write(&self) {
        busy_wait(self.rdma_write_ns);
    }

    /// Injects the RPC latency.
    #[inline]
    pub fn apply_rpc(&self) {
        busy_wait(self.rpc_ns);
    }
}

/// Busy-waits for small durations, sleeps for large ones, does nothing for 0.
#[inline]
fn busy_wait(ns: u64) {
    if ns == 0 {
        return;
    }
    if ns >= 100_000 {
        std::thread::sleep(Duration::from_nanos(ns));
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        let start = std::time::Instant::now();
        for _ in 0..10_000 {
            m.apply_read();
            m.apply_write();
            m.apply_rpc();
        }
        // 30k no-op applications should take well under 10 ms.
        assert!(start.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn nonzero_model_actually_waits() {
        let m = LatencyModel {
            rdma_read_ns: 200_000,
            rdma_write_ns: 0,
            rpc_ns: 0,
        };
        let start = std::time::Instant::now();
        m.apply_read();
        assert!(start.elapsed() >= Duration::from_micros(150));
    }

    #[test]
    fn datacenter_model_has_expected_ordering() {
        let m = LatencyModel::datacenter();
        assert!(m.rdma_read_ns < m.rpc_ns);
        assert!(m.rdma_write_ns < m.rpc_ns);
    }
}
