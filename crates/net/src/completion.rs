//! The completion-queue abstraction: issue verbs to many destinations,
//! poll/wait for all of them at once.
//!
//! A real FaRM coordinator posts the per-destination messages of a commit
//! phase back to back, then polls its NIC completion queue until every one
//! has completed — the phase costs `max(latency)` across destinations, not
//! `Σ latency`. This module reproduces that structure for the simulated
//! substrate:
//!
//! * [`CompletionSet::issue`] registers one verb per destination, computing
//!   a **completion deadline** from the [`LatencyModel`] at issue time and
//!   capturing a *work closure* — the destination-side processing of the
//!   message (lock acquisition, header snapshots, install stores). Closures
//!   borrow from the caller (they are scoped, not `'static`).
//! * [`CompletionSet::complete`] drains the set: it executes every closure
//!   and pays the injected latency according to the [`DispatchMode`],
//!   returning the per-destination results **in issue order** — including
//!   results of destinations that failed, so a coordinator can always
//!   account for every lock its fan-out acquired before it unwinds.
//!
//! The set always drains fully: there is no early-out on the first error,
//! mirroring the fact that a coordinator cannot recall messages already on
//! the wire — it must collect (or time out) every completion before it can
//! release locks safely.

use std::time::Instant;

use crate::{LatencyModel, NetStats, NodeId, Verb};

/// How a [`CompletionSet`] pays latency and schedules its work closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// One destination at a time: pay the verb's full latency, then run its
    /// closure, then move to the next — the pre-fan-out behavior, kept for
    /// A/B benchmarking. A phase touching K destinations costs `Σ latency`.
    Serial,
    /// Issue everything, run the closures inline on the caller's thread (in
    /// issue order, so lock-acquisition order stays deterministic), then
    /// wait **once** until the latest completion deadline. A phase costs
    /// `max(latency)` however many destinations it touches. The default.
    #[default]
    Concurrent,
    /// Like [`DispatchMode::Concurrent`], but the closures run on scoped
    /// threads — one per in-flight verb, standing in for the destination
    /// machines' worker cores executing concurrently. Latency accounting is
    /// identical; use on hosts with enough cores to let destination-side
    /// work genuinely overlap.
    ConcurrentThreads,
}

/// The result of one completed verb.
#[derive(Debug)]
pub struct Completion<R> {
    /// The destination the verb was issued to.
    pub dest: NodeId,
    /// The value produced by the verb's work closure.
    pub value: R,
}

/// One issued-but-not-completed verb.
struct PendingVerb<'env, R> {
    dest: NodeId,
    /// Injected wire latency of this verb.
    latency_ns: u64,
    /// When the verb completes (issue time + latency). `None` for verbs
    /// with no injected latency (local bypass, or a zero latency model) —
    /// they complete immediately, and skipping the clock read keeps the
    /// default zero-latency configuration free of per-verb `Instant::now`
    /// calls on the hot path.
    deadline: Option<Instant>,
    work: Box<dyn FnOnce() -> R + Send + 'env>,
}

/// A set of in-flight verbs awaiting completion. See the module docs.
pub struct CompletionSet<'env, R> {
    model: LatencyModel,
    /// The clock read shared by every latency-bearing verb in the set: a
    /// coordinator posts a phase's messages back to back, so one issue
    /// timestamp serves them all — K issues cost one `Instant::now`, not K.
    issued_at: Option<Instant>,
    pending: Vec<PendingVerb<'env, R>>,
}

impl<'env, R: Send> CompletionSet<'env, R> {
    /// Creates an empty set paying latency per `model`.
    pub fn new(model: LatencyModel) -> Self {
        CompletionSet {
            model,
            issued_at: None,
            pending: Vec::new(),
        }
    }

    /// Issues `verb` to `dest`: the completion deadline is the set's issue
    /// time plus the model's latency for the verb, and `work` is the
    /// destination-side processing executed before the completion is
    /// reported.
    pub fn issue(&mut self, dest: NodeId, verb: Verb, work: impl FnOnce() -> R + Send + 'env) {
        let latency_ns = self.model.verb_ns(verb);
        let deadline = if latency_ns == 0 {
            None
        } else {
            let issued_at = *self.issued_at.get_or_insert_with(Instant::now);
            Some(issued_at + std::time::Duration::from_nanos(latency_ns))
        };
        self.pending.push(PendingVerb {
            dest,
            latency_ns,
            deadline,
            work: Box::new(work),
        });
    }

    /// Issues a **local-bypass** operation: the "destination" is the caller's
    /// own machine, so no wire latency applies — the work still rides the
    /// set so phase logic stays uniform and results stay in issue order.
    pub fn issue_local(&mut self, dest: NodeId, work: impl FnOnce() -> R + Send + 'env) {
        self.pending.push(PendingVerb {
            dest,
            latency_ns: 0,
            deadline: None,
            work: Box::new(work),
        });
    }

    /// Number of verbs currently in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no verb is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The latest completion deadline among the in-flight verbs (`None`
    /// when every pending verb completes immediately).
    pub fn max_deadline(&self) -> Option<Instant> {
        self.pending.iter().filter_map(|p| p.deadline).max()
    }

    /// Drains the set: executes every work closure and pays the injected
    /// latency per `mode`, reporting the in-flight high-water mark to
    /// `stats`. Results are returned in issue order, one per issued verb —
    /// failures do not short-circuit the drain (encode them in `R`).
    ///
    /// Callers that interleave their own waiting with the flight window
    /// (e.g. a commit pipeline overlapping a clock uncertainty wait with
    /// replication) should do that waiting **before** calling `complete`:
    /// the final deadline wait only covers whatever flight time remains.
    pub fn complete(self, mode: DispatchMode, stats: Option<&NetStats>) -> Vec<Completion<R>> {
        let model = self.model;
        let (out, deadline) = self.complete_deferred(mode, stats);
        if let Some(deadline) = deadline {
            model.wait_until(deadline);
        }
        out
    }

    /// Drains the set's **work** without paying the final deadline wait:
    /// every closure runs now (in issue order, or on scoped threads under
    /// [`DispatchMode::ConcurrentThreads`]) and the latest completion
    /// deadline is returned to the caller, who owns the wait. This is the
    /// primitive behind per-thread commit pipelining: one thread issues the
    /// phases of several transactions and multiplexes their deadlines,
    /// sleeping only until the earliest one instead of blocking inside each
    /// set.
    ///
    /// [`DispatchMode::Serial`] is not deferrable — it interleaves waits
    /// with closures by definition — so it pays its latency inline and
    /// returns no deadline.
    pub fn complete_deferred(
        self,
        mode: DispatchMode,
        stats: Option<&NetStats>,
    ) -> (Vec<Completion<R>>, Option<Instant>) {
        if let Some(stats) = stats {
            stats.note_inflight(self.pending.len() as u64);
        }
        match mode {
            DispatchMode::Serial => {
                let out = self
                    .pending
                    .into_iter()
                    .map(|p| {
                        // Pay this verb's full latency before touching the
                        // next destination: the serial Σ-latency model.
                        if p.latency_ns > 0 {
                            self.model.wait_until(
                                Instant::now() + std::time::Duration::from_nanos(p.latency_ns),
                            );
                        }
                        Completion {
                            dest: p.dest,
                            value: (p.work)(),
                        }
                    })
                    .collect();
                (out, None)
            }
            DispatchMode::Concurrent => {
                let deadline = self.max_deadline();
                let out: Vec<Completion<R>> = self
                    .pending
                    .into_iter()
                    .map(|p| Completion {
                        dest: p.dest,
                        value: (p.work)(),
                    })
                    .collect();
                (out, deadline)
            }
            DispatchMode::ConcurrentThreads => {
                let deadline = self.max_deadline();
                let dests: Vec<NodeId> = self.pending.iter().map(|p| p.dest).collect();
                let values: Vec<R> = std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .pending
                        .into_iter()
                        .map(|p| scope.spawn(p.work))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("verb work closure panicked"))
                        .collect()
                });
                let out = dests
                    .into_iter()
                    .zip(values)
                    .map(|(dest, value)| Completion { dest, value })
                    .collect();
                (out, deadline)
            }
        }
    }
}

impl<R> std::fmt::Debug for CompletionSet<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSet")
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn model(us: u64) -> LatencyModel {
        LatencyModel {
            rpc_ns: us * 1_000,
            rdma_read_ns: us * 1_000,
            rdma_write_ns: us * 1_000,
            ..Default::default()
        }
    }

    #[test]
    fn results_come_back_in_issue_order() {
        for mode in [
            DispatchMode::Serial,
            DispatchMode::Concurrent,
            DispatchMode::ConcurrentThreads,
        ] {
            let mut set: CompletionSet<u32> = CompletionSet::new(LatencyModel::zero());
            for i in 0..8u32 {
                set.issue(NodeId(i), Verb::Rpc, move || i * 10);
            }
            let out = set.complete(mode, None);
            let values: Vec<u32> = out.iter().map(|c| c.value).collect();
            assert_eq!(values, (0..8).map(|i| i * 10).collect::<Vec<_>>());
            let dests: Vec<NodeId> = out.iter().map(|c| c.dest).collect();
            assert_eq!(dests, (0..8).map(NodeId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrent_pays_max_not_sum() {
        // Four 200 µs verbs: serial ≈ 800 µs, concurrent ≈ 200 µs.
        let m = model(200);
        let mut serial: CompletionSet<()> = CompletionSet::new(m);
        for i in 0..4 {
            serial.issue(NodeId(i), Verb::Rpc, || ());
        }
        let t = Instant::now();
        serial.complete(DispatchMode::Serial, None);
        let serial_elapsed = t.elapsed();
        // Deadlines run from issue time, so the concurrent set is issued
        // right before it drains.
        let mut conc: CompletionSet<()> = CompletionSet::new(m);
        for i in 0..4 {
            conc.issue(NodeId(i), Verb::Rpc, || ());
        }
        let t = Instant::now();
        conc.complete(DispatchMode::Concurrent, None);
        let conc_elapsed = t.elapsed();
        assert!(
            serial_elapsed >= Duration::from_micros(760),
            "serial too fast: {serial_elapsed:?}"
        );
        assert!(
            conc_elapsed >= Duration::from_micros(190),
            "concurrent skipped the deadline wait: {conc_elapsed:?}"
        );
        assert!(
            conc_elapsed < serial_elapsed,
            "fan-out did not beat serial: {conc_elapsed:?} vs {serial_elapsed:?}"
        );
    }

    #[test]
    fn failures_do_not_short_circuit_the_drain() {
        // Every closure runs even when an earlier one "fails" — the set
        // drains in-flight siblings so the caller can unwind safely.
        let ran = AtomicU64::new(0);
        let mut set: CompletionSet<Result<u32, &'static str>> =
            CompletionSet::new(LatencyModel::zero());
        for i in 0..6u32 {
            let ran = &ran;
            set.issue(NodeId(i), Verb::Rpc, move || {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 2 {
                    Err("conflict")
                } else {
                    Ok(i)
                }
            });
        }
        let out = set.complete(DispatchMode::Concurrent, None);
        assert_eq!(ran.load(Ordering::SeqCst), 6);
        assert_eq!(out.iter().filter(|c| c.value.is_err()).count(), 1);
        assert_eq!(out.iter().filter(|c| c.value.is_ok()).count(), 5);
    }

    #[test]
    fn reports_inflight_high_water_mark() {
        let stats = NetStats::default();
        let mut set: CompletionSet<()> = CompletionSet::new(LatencyModel::zero());
        for i in 0..5 {
            set.issue(NodeId(i), Verb::RdmaWrite, || ());
        }
        set.complete(DispatchMode::Concurrent, Some(&stats));
        assert_eq!(stats.max_inflight(), 5);
        // A smaller later set does not lower the mark.
        let mut set: CompletionSet<()> = CompletionSet::new(LatencyModel::zero());
        set.issue_local(NodeId(0), || ());
        set.complete(DispatchMode::Serial, Some(&stats));
        assert_eq!(stats.max_inflight(), 5);
    }

    #[test]
    fn local_bypass_has_no_latency() {
        let m = model(500);
        let mut set: CompletionSet<u8> = CompletionSet::new(m);
        set.issue_local(NodeId(0), || 1);
        set.issue_local(NodeId(0), || 2);
        let t = Instant::now();
        let out = set.complete(DispatchMode::Concurrent, None);
        assert!(t.elapsed() < Duration::from_micros(400));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn complete_deferred_runs_work_but_leaves_the_wait_to_the_caller() {
        let m = model(300);
        let mut set: CompletionSet<u32> = CompletionSet::new(m);
        for i in 0..3u32 {
            set.issue(NodeId(i), Verb::RdmaWrite, move || i + 1);
        }
        let t = Instant::now();
        let (out, deadline) = set.complete_deferred(DispatchMode::Concurrent, None);
        // The work ran (results present) but the ~300 µs flight was not paid.
        assert!(t.elapsed() < Duration::from_micros(200));
        assert_eq!(out.iter().map(|c| c.value).sum::<u32>(), 6);
        let deadline = deadline.expect("non-zero latency yields a deadline");
        m.wait_until(deadline);
        assert!(t.elapsed() >= Duration::from_micros(290));
        // Serial mode pays inline and reports no deadline.
        let mut set: CompletionSet<()> = CompletionSet::new(m);
        set.issue(NodeId(0), Verb::RdmaWrite, || ());
        let t = Instant::now();
        let (_, deadline) = set.complete_deferred(DispatchMode::Serial, None);
        assert!(deadline.is_none());
        assert!(t.elapsed() >= Duration::from_micros(290));
    }

    #[test]
    fn closures_may_borrow_from_the_caller() {
        // The whole point of the scoped lifetime: verb work reads the
        // caller's stack state without Arc ceremony.
        let payload = vec![1u8, 2, 3];
        let mut set: CompletionSet<usize> = CompletionSet::new(LatencyModel::zero());
        let p = &payload;
        set.issue(NodeId(1), Verb::RdmaRead, move || p.len());
        let out = set.complete(DispatchMode::ConcurrentThreads, None);
        assert_eq!(out[0].value, 3);
        assert_eq!(payload.len(), 3);
    }
}
