//! Message transport between simulated machines.
//!
//! Each node registers an inbox; the [`Network`] routes messages to inboxes,
//! applying fault filtering (crashes, partitions), latency injection and
//! statistics. Replies are implemented by embedding reply channels in the
//! message type, which is what in-process "RPC over RDMA writes" boils down
//! to here.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;

use crate::{FaultPlane, LatencyModel, NetStats, NodeId, Verb};

/// Errors produced when sending a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination is not registered with the network.
    UnknownNode(NodeId),
    /// The destination (or the sender) is crashed or partitioned away.
    Unreachable {
        /// Sender of the failed message.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
    },
    /// The destination inbox has been closed (its worker pool shut down).
    InboxClosed(NodeId),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Unreachable { from, to } => write!(f, "{from} cannot reach {to}"),
            NetError::InboxClosed(n) => write!(f, "inbox of {n} is closed"),
        }
    }
}

impl std::error::Error for NetError {}

/// A message in flight, tagged with its sender.
#[derive(Debug)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// The payload.
    pub msg: M,
}

/// The receiving end of a node's inbox, to be drained by a
/// [`WorkerPool`](crate::WorkerPool) or polled directly in tests.
pub type NodeInbox<M> = Receiver<Envelope<M>>;

struct Registry<M> {
    inboxes: Vec<Option<Sender<Envelope<M>>>>,
}

/// The cluster message fabric, generic over the protocol message type `M`.
pub struct Network<M> {
    registry: RwLock<Registry<M>>,
    faults: Arc<FaultPlane>,
    stats: Arc<NetStats>,
    latency: LatencyModel,
}

impl<M: Send + 'static> Network<M> {
    /// Creates a network with the given fault plane, statistics sink and RPC
    /// latency model.
    pub fn new(faults: Arc<FaultPlane>, stats: Arc<NetStats>, latency: LatencyModel) -> Self {
        Network {
            registry: RwLock::new(Registry {
                inboxes: Vec::new(),
            }),
            faults,
            stats,
            latency,
        }
    }

    /// Creates a network with no faults, fresh statistics and zero latency.
    pub fn simple() -> Self {
        Self::new(
            Arc::new(FaultPlane::new()),
            Arc::new(NetStats::default()),
            LatencyModel::zero(),
        )
    }

    /// Registers a node and returns the receiving end of its inbox.
    /// Registering the same node twice replaces its inbox (used when a node
    /// is restarted after a crash).
    pub fn register(&self, node: NodeId) -> NodeInbox<M> {
        let (tx, rx) = unbounded();
        let mut reg = self.registry.write();
        let idx = node.index();
        if reg.inboxes.len() <= idx {
            reg.inboxes.resize_with(idx + 1, || None);
        }
        reg.inboxes[idx] = Some(tx);
        rx
    }

    /// Deregisters a node, closing its inbox.
    pub fn deregister(&self, node: NodeId) {
        let mut reg = self.registry.write();
        if let Some(slot) = reg.inboxes.get_mut(node.index()) {
            *slot = None;
        }
    }

    /// Sends `msg` from `from` to `to`, applying fault filtering, latency and
    /// statistics. The paper's RPCs are RDMA-write based; we count them under
    /// [`Verb::Rpc`].
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), NetError> {
        if !self.faults.reachable(from, to) {
            return Err(NetError::Unreachable { from, to });
        }
        self.latency.apply_rpc();
        self.stats.record(Verb::Rpc, std::mem::size_of::<M>());
        let reg = self.registry.read();
        let sender = reg
            .inboxes
            .get(to.index())
            .and_then(|s| s.as_ref())
            .ok_or(NetError::UnknownNode(to))?;
        match sender.try_send(Envelope { from, to, msg }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(NetError::InboxClosed(to)),
            Err(TrySendError::Full(_)) => unreachable!("unbounded channel cannot be full"),
        }
    }

    /// Broadcasts `msg` to every node in `targets` except `from` itself.
    /// Returns the nodes that could not be reached.
    pub fn broadcast(&self, from: NodeId, targets: &[NodeId], msg: M) -> Vec<NodeId>
    where
        M: Clone,
    {
        let mut failed = Vec::new();
        for &t in targets {
            if t == from {
                continue;
            }
            if self.send(from, t, msg.clone()).is_err() {
                failed.push(t);
            }
        }
        failed
    }

    /// The shared fault plane.
    pub fn faults(&self) -> &Arc<FaultPlane> {
        &self.faults
    }

    /// The shared statistics sink.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The RPC latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Nodes currently registered (with open inboxes).
    pub fn registered_nodes(&self) -> Vec<NodeId> {
        let reg = self.registry.read();
        reg.inboxes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_and_receive_between_nodes() {
        let net: Network<String> = Network::simple();
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.send(NodeId(0), NodeId(1), "hello".to_string()).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.to, NodeId(1));
        assert_eq!(env.msg, "hello");
        assert_eq!(net.stats().snapshot().count(Verb::Rpc), 1);
    }

    #[test]
    fn send_to_unknown_node_fails() {
        let net: Network<u32> = Network::simple();
        net.register(NodeId(0));
        assert_eq!(
            net.send(NodeId(0), NodeId(9), 1),
            Err(NetError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn send_to_killed_node_fails() {
        let net: Network<u32> = Network::simple();
        net.register(NodeId(0));
        net.register(NodeId(1));
        net.faults().kill(NodeId(1));
        assert!(matches!(
            net.send(NodeId(0), NodeId(1), 5),
            Err(NetError::Unreachable { .. })
        ));
    }

    #[test]
    fn deregistered_inbox_reports_closed_or_unknown() {
        let net: Network<u32> = Network::simple();
        net.register(NodeId(0));
        let rx = net.register(NodeId(1));
        drop(rx);
        net.deregister(NodeId(1));
        assert!(net.send(NodeId(0), NodeId(1), 5).is_err());
    }

    #[test]
    fn broadcast_skips_self_and_reports_failures() {
        let net: Network<u8> = Network::simple();
        net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let c = net.register(NodeId(2));
        net.faults().kill(NodeId(2));
        let failed = net.broadcast(NodeId(0), &[NodeId(0), NodeId(1), NodeId(2)], 7);
        assert_eq!(failed, vec![NodeId(2)]);
        assert_eq!(b.try_recv().unwrap().msg, 7);
        assert!(c.try_recv().is_err());
    }

    #[test]
    fn registered_nodes_lists_open_inboxes() {
        let net: Network<u8> = Network::simple();
        net.register(NodeId(0));
        net.register(NodeId(2));
        assert_eq!(net.registered_nodes(), vec![NodeId(0), NodeId(2)]);
        net.deregister(NodeId(0));
        assert_eq!(net.registered_nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn reregistering_replaces_inbox() {
        let net: Network<u8> = Network::simple();
        let old = net.register(NodeId(0));
        drop(old);
        let newer = net.register(NodeId(0));
        net.register(NodeId(1));
        net.send(NodeId(1), NodeId(0), 9).unwrap();
        assert_eq!(newer.try_recv().unwrap().msg, 9);
    }
}
