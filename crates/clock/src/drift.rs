//! Continuous clock-rate monitoring.
//!
//! Correctness of the timestamp mechanism requires the relative drift
//! between any clock and the clock master to stay within the assumed bound ε
//! (1000 ppm in the paper). FaRMv2 continuously estimates each non-CM's rate
//! relative to the CM from consecutive synchronizations and reports any
//! machine whose observed drift exceeds a *much* more conservative threshold
//! (200 ppm), so the machine (or the CM itself, if it is the outlier) can be
//! removed long before correctness is at risk.

use crate::sync::SyncSample;

/// Result of a drift evaluation between two synchronizations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Estimated relative rate error in parts per million
    /// (positive = the local clock runs fast relative to the master).
    pub estimated_ppm: f64,
    /// Whether the estimate exceeds the reporting threshold.
    pub exceeds_threshold: bool,
    /// Master-time span the estimate was computed over, in nanoseconds.
    pub span_ns: u64,
}

/// Estimates the local clock's rate relative to the clock master from pairs
/// of synchronization samples.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    threshold_ppm: f64,
    /// Minimum master-time span between the two samples used for an
    /// estimate; short spans make the RTT-induced noise dominate.
    min_span_ns: u64,
    last: Option<SyncSample>,
    /// Most recent report, if any.
    last_report: Option<DriftReport>,
    /// Number of reports that exceeded the threshold.
    violations: u64,
}

impl DriftMonitor {
    /// Creates a monitor with the paper's defaults: report above 200 ppm,
    /// require at least 100 ms between the samples used for an estimate.
    pub fn new() -> Self {
        Self::with_params(200.0, 100_000_000)
    }

    /// Creates a monitor with explicit threshold (ppm) and minimum span (ns).
    pub fn with_params(threshold_ppm: f64, min_span_ns: u64) -> Self {
        DriftMonitor {
            threshold_ppm,
            min_span_ns,
            last: None,
            last_report: None,
            violations: 0,
        }
    }

    /// Feeds one completed synchronization. Returns a report when enough
    /// master time has elapsed since the previous retained sample.
    pub fn observe(&mut self, sample: SyncSample) -> Option<DriftReport> {
        let prev = match self.last {
            None => {
                self.last = Some(sample);
                return None;
            }
            Some(p) => p,
        };
        let span = sample.t_cm.saturating_sub(prev.t_cm);
        if span < self.min_span_ns {
            return None;
        }
        // Use the midpoint of [send, recv] as the local time of the master
        // reading; the error introduced is at most half the RTT on each end.
        let local_prev = midpoint(prev);
        let local_cur = midpoint(sample);
        let local_span = local_cur.saturating_sub(local_prev);
        if local_span == 0 {
            return None;
        }
        let rate = local_span as f64 / span as f64;
        let ppm = (rate - 1.0) * 1e6;
        let report = DriftReport {
            estimated_ppm: ppm,
            exceeds_threshold: ppm.abs() > self.threshold_ppm,
            span_ns: span,
        };
        if report.exceeds_threshold {
            self.violations += 1;
        }
        self.last = Some(sample);
        self.last_report = Some(report);
        Some(report)
    }

    /// Most recent report, if any.
    pub fn last_report(&self) -> Option<DriftReport> {
        self.last_report
    }

    /// Number of threshold violations observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

impl Default for DriftMonitor {
    fn default() -> Self {
        Self::new()
    }
}

fn midpoint(s: SyncSample) -> u64 {
    s.t_send + (s.t_recv - s.t_send) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(local_mid: u64, cm: u64, rtt: u64) -> SyncSample {
        SyncSample {
            t_send: local_mid - rtt / 2,
            t_cm: cm,
            t_recv: local_mid + rtt / 2,
        }
    }

    #[test]
    fn no_report_until_two_spaced_samples() {
        let mut m = DriftMonitor::with_params(200.0, 1_000_000);
        assert!(m.observe(sample(1_000, 1_000, 100)).is_none());
        // Too close in master time.
        assert!(m.observe(sample(2_000, 2_000, 100)).is_none());
        // Far enough.
        assert!(m.observe(sample(2_001_000, 2_001_000, 100)).is_some());
    }

    #[test]
    fn detects_fast_clock() {
        let mut m = DriftMonitor::with_params(200.0, 1_000_000);
        m.observe(sample(0, 0, 0));
        // Local advanced 1.001e9 while master advanced 1e9 => +1000 ppm.
        let r = m.observe(sample(1_001_000_000, 1_000_000_000, 0)).unwrap();
        assert!(r.exceeds_threshold);
        assert!((r.estimated_ppm - 1_000.0).abs() < 50.0);
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn detects_slow_clock() {
        let mut m = DriftMonitor::with_params(200.0, 1_000_000);
        m.observe(sample(1_000, 0, 0));
        let r = m.observe(sample(999_001_000, 1_000_000_000, 0)).unwrap();
        assert!(r.estimated_ppm < 0.0);
        assert!(r.exceeds_threshold);
    }

    #[test]
    fn small_drift_is_not_reported() {
        let mut m = DriftMonitor::with_params(200.0, 1_000_000);
        m.observe(sample(0, 0, 0));
        // +50 ppm.
        let r = m.observe(sample(1_000_050_000, 1_000_000_000, 0)).unwrap();
        assert!(!r.exceeds_threshold);
        assert_eq!(m.violations(), 0);
        assert_eq!(m.last_report().unwrap(), r);
    }
}
