//! The per-machine clock facade: `TIME()`, `GET_TS()` and failover hooks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

use crate::clock::SharedClock;
use crate::master::{MasterError, MasterState};
use crate::sync::{MasterTimeSource, SyncError, SyncSample, Synchronizer};
use crate::{TimeInterval, Timestamp};

/// Configuration of a node's clock subsystem.
#[derive(Debug, Clone, Copy)]
pub struct ClockConfig {
    /// Assumed bound ε on relative clock drift, in parts per million.
    /// The paper uses 1000 ppm (0.1%), at least 10× more conservative than
    /// anything observed in production.
    pub drift_bound_ppm: u32,
    /// Extra uncertainty covering cycle-counter skew across the threads of a
    /// machine (~400 ns in the paper's deployment).
    pub thread_skew_ns: u64,
    /// Spin threshold for uncertainty waits: waits shorter than this busy-
    /// spin, longer waits sleep in slices to avoid burning a core.
    pub spin_threshold_ns: u64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            drift_bound_ppm: 1_000,
            thread_skew_ns: 400,
            spin_threshold_ns: 100_000,
        }
    }
}

/// How a timestamp is being acquired; selects whether and how the
/// uncertainty is waited out (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsMode {
    /// Strict read timestamp / serializable write timestamp: take the upper
    /// bound `U` of the current interval and wait until `U` is in the past.
    StrictWait,
    /// Non-strict read timestamp: take the lower bound `L`, no wait.
    NonStrictRead,
    /// Non-strict SI write timestamp: take the upper bound `U`, no wait.
    NonStrictUpper,
}

/// Counters describing timestamp-generation behaviour on one node.
#[derive(Debug, Default)]
pub struct ClockStats {
    /// Number of timestamps issued.
    pub timestamps: AtomicU64,
    /// Number of timestamps that required an uncertainty wait.
    pub waits: AtomicU64,
    /// Total nanoseconds spent in uncertainty waits.
    pub wait_ns: AtomicU64,
    /// Number of completed synchronizations with the clock master.
    pub syncs: AtomicU64,
    /// Nanoseconds of time the clock spent disabled (failover windows).
    pub disabled_ns: AtomicU64,
}

impl ClockStats {
    /// Mean uncertainty wait in nanoseconds (0 if no waits happened).
    pub fn mean_wait_ns(&self) -> f64 {
        let w = self.waits.load(Ordering::Relaxed);
        if w == 0 {
            0.0
        } else {
            self.wait_ns.load(Ordering::Relaxed) as f64 / w as f64
        }
    }

    /// Snapshot of (timestamps, waits, total wait ns, syncs).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.timestamps.load(Ordering::Relaxed),
            self.waits.load(Ordering::Relaxed),
            self.wait_ns.load(Ordering::Relaxed),
            self.syncs.load(Ordering::Relaxed),
        )
    }
}

/// Helper that accumulates observed uncertainty waits; handy in benchmarks
/// that want per-phase rather than per-node numbers.
#[derive(Debug, Default)]
pub struct WaitObserver {
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl WaitObserver {
    /// Records one wait of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean recorded wait in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        let c = self.count.load(Ordering::Relaxed);
        if c == 0 {
            0.0
        } else {
            self.total_ns.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    /// Number of recorded waits.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

enum Role {
    Master(MasterState),
    Slave(Synchronizer),
}

/// The clock subsystem of one machine.
///
/// A `NodeClock` is shared by every thread of the machine: application
/// threads acquire read/write timestamps through it, the high-priority
/// lease thread synchronizes it against the clock master, and the
/// reconfiguration logic drives the disable / fast-forward / enable sequence
/// across clock-master failures.
pub struct NodeClock {
    clock: SharedClock,
    config: ClockConfig,
    role: RwLock<Role>,
    enabled: AtomicBool,
    /// Last fast-forward value seen (Section 4.3); monotonically increasing.
    ff: AtomicU64,
    /// Monotonic clamp for interval lower bounds: the paper guarantees that
    /// the lower bound L is non-decreasing on every thread; we enforce the
    /// stronger per-node property.
    last_lower: AtomicU64,
    /// Statistics.
    stats: ClockStats,
    /// Local time at which the clock was last disabled (for stats).
    disabled_at: AtomicU64,
}

impl NodeClock {
    /// Creates the clock subsystem for the initial clock master: enabled
    /// immediately, global time defined by its own local clock.
    pub fn new_master(clock: SharedClock, config: ClockConfig) -> Self {
        let master = MasterState::initial(&clock);
        NodeClock {
            clock,
            config,
            role: RwLock::new(Role::Master(master)),
            enabled: AtomicBool::new(true),
            ff: AtomicU64::new(0),
            last_lower: AtomicU64::new(0),
            stats: ClockStats::default(),
            disabled_at: AtomicU64::new(0),
        }
    }

    /// Creates the clock subsystem for a non-master node: disabled until the
    /// first successful synchronization with the clock master.
    pub fn new_slave(clock: SharedClock, config: ClockConfig) -> Self {
        let sync = Synchronizer::new(config.drift_bound_ppm, config.thread_skew_ns);
        NodeClock {
            clock,
            config,
            role: RwLock::new(Role::Slave(sync)),
            enabled: AtomicBool::new(false),
            ff: AtomicU64::new(0),
            last_lower: AtomicU64::new(0),
            stats: ClockStats::default(),
            disabled_at: AtomicU64::new(0),
        }
    }

    /// The node's local clock.
    pub fn local_clock(&self) -> &SharedClock {
        &self.clock
    }

    /// The clock configuration.
    pub fn config(&self) -> ClockConfig {
        self.config
    }

    /// Whether this node currently acts as the clock master.
    pub fn is_master(&self) -> bool {
        matches!(&*self.role.read(), Role::Master(_))
    }

    /// Whether the clock is enabled (timestamps may be issued and
    /// synchronization requests answered).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Per-node timestamp statistics.
    pub fn stats(&self) -> &ClockStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // TIME()
    // ------------------------------------------------------------------

    /// Computes the current uncertainty interval without checking whether
    /// the clock is enabled. Used internally by the failover protocol, which
    /// must read time while clocks are disabled ("the clock continues to
    /// advance, but timestamps are not given out").
    pub fn time_unchecked(&self) -> Option<TimeInterval> {
        let raw = match &*self.role.read() {
            Role::Master(m) => {
                let t = m.master_time(&self.clock);
                let skew = self.config.thread_skew_ns;
                Some(TimeInterval::new(
                    t.saturating_sub(skew),
                    t.saturating_add(skew),
                ))
            }
            Role::Slave(s) => s.time(self.clock.now_ns()),
        }?;
        // Enforce the non-decreasing lower bound guarantee.
        let prev = self.last_lower.fetch_max(raw.lower, Ordering::AcqRel);
        let lower = raw.lower.max(prev);
        Some(TimeInterval::new(lower, raw.upper.max(lower)))
    }

    /// The `TIME()` call: the current uncertainty interval, or `None` if the
    /// clock is disabled or not yet synchronized.
    pub fn time(&self) -> Option<TimeInterval> {
        if !self.is_enabled() {
            return None;
        }
        self.time_unchecked()
    }

    /// Blocking variant of [`NodeClock::time`]: waits (spinning, then
    /// yielding) until the clock is enabled and synchronized. Application
    /// threads requesting timestamps during a clock-disable window block
    /// here, exactly as described in Section 4.3.
    pub fn wait_time(&self) -> TimeInterval {
        let mut spins = 0u32;
        loop {
            if let Some(i) = self.time() {
                return i;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    // ------------------------------------------------------------------
    // GET_TS()
    // ------------------------------------------------------------------

    /// Acquires a timestamp according to `mode` (Figure 4 / Section 4.2),
    /// waiting out the uncertainty when the mode requires it. Returns the
    /// timestamp and the number of nanoseconds spent waiting.
    pub fn get_ts(&self, mode: TsMode) -> (Timestamp, u64) {
        let interval = self.wait_time();
        self.stats.timestamps.fetch_add(1, Ordering::Relaxed);
        match mode {
            TsMode::NonStrictRead => (interval.lower_ts(), 0),
            TsMode::NonStrictUpper => (interval.upper_ts(), 0),
            TsMode::StrictWait => {
                let target = interval.upper;
                let waited = self.wait_until_past(target);
                if waited > 0 {
                    self.stats.waits.fetch_add(1, Ordering::Relaxed);
                    self.stats.wait_ns.fetch_add(waited, Ordering::Relaxed);
                }
                (Timestamp(target), waited)
            }
        }
    }

    /// Acquires a strict timestamp **without** waiting out the uncertainty:
    /// returns the interval's upper bound, which the caller must pass to
    /// [`NodeClock::complete_deferred_wait`] before exposing any write at
    /// that timestamp. This is the first half of the paper's Figure 4
    /// pipelining: the wait runs concurrently with COMMIT-BACKUP
    /// replication instead of blocking the coordinator up front.
    pub fn get_ts_deferred(&self) -> Timestamp {
        let interval = self.wait_time();
        self.stats.timestamps.fetch_add(1, Ordering::Relaxed);
        interval.upper_ts()
    }

    /// Completes a deferred strict acquisition: waits until `target` is in
    /// the past and records the wait in the clock statistics exactly as
    /// `get_ts(StrictWait)` would have. Returns the nanoseconds waited.
    pub fn complete_deferred_wait(&self, target: u64) -> u64 {
        let waited = self.wait_until_past(target);
        if waited > 0 {
            self.stats.waits.fetch_add(1, Ordering::Relaxed);
            self.stats.wait_ns.fetch_add(waited, Ordering::Relaxed);
        }
        waited
    }

    /// Waits until the lower bound of the current time interval has passed
    /// `target`, i.e. until `target` is guaranteed to be in the past at the
    /// clock master (Figure 5). Returns the local nanoseconds spent waiting.
    pub fn wait_until_past(&self, target: u64) -> u64 {
        let start = self.clock.now_ns();
        let mut spins = 0u32;
        loop {
            let interval = self.wait_time();
            if interval.lower >= target {
                return self.clock.now_ns().saturating_sub(start);
            }
            let remaining = target - interval.lower;
            if remaining > self.config.spin_threshold_ns {
                // Sleep most of the remaining time; the interval advances at
                // roughly real time so this converges in a couple of rounds.
                std::thread::sleep(Duration::from_nanos(remaining / 2));
            } else {
                spins += 1;
                // Sub-threshold waits spin, but on a host with fewer cores
                // than waiters an unbroken spin stalls the very threads
                // whose progress advances the interval. Waits with ≥ 1 µs
                // remaining yield **every** iteration — the wait is wall
                // clock, so a donated quantum costs the waiter nothing and
                // lets a co-scheduled coordinator commit meanwhile (an
                // uncontended yield returns in ~100 ns, so dedicated cores
                // lose little). Only the sub-microsecond tail spins, with a
                // periodic yield as a backstop. Without the eager yield, a
                // slave node's ~2 µs uncertainty waits never reached the
                // old 1-in-128 yield at all (each loop iteration spans tens
                // of nanoseconds), which is what sank the fig16 2-thread
                // point on single-core hosts.
                if remaining > 1_000 || spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Master-side operations
    // ------------------------------------------------------------------

    /// Serves a `MASTERTIME()` request from another node. Fails if this node
    /// is not the master or its clock is disabled.
    pub fn serve_master_time(&self) -> Result<u64, MasterError> {
        if !self.is_enabled() {
            return Err(MasterError::Disabled);
        }
        match &*self.role.read() {
            Role::Master(m) => Ok(m.master_time(&self.clock)),
            Role::Slave(_) => Err(MasterError::NotMaster),
        }
    }

    // ------------------------------------------------------------------
    // Slave-side operations
    // ------------------------------------------------------------------

    /// Performs one synchronization round against `source` and enables the
    /// clock on success. No-op (returns `Ok`) on the master itself.
    pub fn sync_with(
        &self,
        source: &dyn MasterTimeSource,
    ) -> Result<Option<SyncSample>, SyncError> {
        let mut role = self.role.write();
        match &mut *role {
            Role::Master(_) => Ok(None),
            Role::Slave(sync) => {
                let clock = &self.clock;
                let sample = sync.sync_once(source, || clock.now_ns())?;
                self.stats.syncs.fetch_add(1, Ordering::Relaxed);
                drop(role);
                self.mark_enabled();
                Ok(Some(sample))
            }
        }
    }

    /// Records an externally-performed synchronization sample (used when the
    /// kernel performs the RPC itself, e.g. piggybacked on lease messages).
    pub fn record_sync(&self, sample: SyncSample) {
        let mut role = self.role.write();
        if let Role::Slave(sync) = &mut *role {
            sync.record(sample, self.clock.now_ns());
            self.stats.syncs.fetch_add(1, Ordering::Relaxed);
            drop(role);
            self.mark_enabled();
        }
    }

    /// Number of synchronizations the node has performed (0 for masters).
    pub fn sync_count(&self) -> u64 {
        match &*self.role.read() {
            Role::Master(_) => 0,
            Role::Slave(s) => s.sync_count(),
        }
    }

    // ------------------------------------------------------------------
    // Failover protocol hooks (Figure 6)
    // ------------------------------------------------------------------

    /// Disables the clock: timestamps block and `MASTERTIME()` is rejected.
    /// The local clock keeps advancing.
    pub fn disable(&self) {
        if self.enabled.swap(false, Ordering::AcqRel) {
            self.disabled_at
                .store(self.clock.now_ns(), Ordering::Relaxed);
        }
    }

    /// Updates the local fast-forward variable `FF` to at least the upper
    /// bound of the current interval, and returns the new value. Called on
    /// every node when it learns of a new configuration.
    pub fn update_ff_from_time(&self) -> u64 {
        let upper = self.time_unchecked().map(|i| i.upper).unwrap_or(0);
        self.ff.fetch_max(upper, Ordering::AcqRel).max(upper)
    }

    /// Raises `FF` to at least `candidate` and returns the new value.
    pub fn raise_ff(&self, candidate: u64) -> u64 {
        self.ff
            .fetch_max(candidate, Ordering::AcqRel)
            .max(candidate)
    }

    /// Current fast-forward value.
    pub fn ff(&self) -> u64 {
        self.ff.load(Ordering::Acquire)
    }

    /// Converts this node into the clock master with global time continuing
    /// from `ff`. The clock stays disabled until [`NodeClock::enable`] is
    /// called (after the `ADVANCE` round of the failover protocol).
    pub fn become_master_at(&self, ff: u64) {
        let mut role = self.role.write();
        *role = Role::Master(MasterState::taking_over_at(&self.clock, ff));
        self.raise_ff(ff);
    }

    /// Converts this node into a slave of a (new) clock master: all previous
    /// synchronization state is discarded and the clock stays disabled until
    /// the first successful synchronization.
    pub fn become_slave(&self) {
        let mut role = self.role.write();
        *role = Role::Slave(Synchronizer::new(
            self.config.drift_bound_ppm,
            self.config.thread_skew_ns,
        ));
        self.enabled.store(false, Ordering::Release);
        self.disabled_at
            .store(self.clock.now_ns(), Ordering::Relaxed);
    }

    /// Re-enables the clock (master side of the failover protocol, or any
    /// explicit enable).
    pub fn enable(&self) {
        self.mark_enabled();
    }

    fn mark_enabled(&self) {
        if !self.enabled.swap(true, Ordering::AcqRel) {
            let at = self.disabled_at.load(Ordering::Relaxed);
            if at != 0 {
                let delta = self.clock.now_ns().saturating_sub(at);
                self.stats.disabled_ns.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ManualClock, MonotonicClock};
    use std::sync::Arc;

    fn cfg() -> ClockConfig {
        ClockConfig {
            drift_bound_ppm: 1_000,
            thread_skew_ns: 0,
            spin_threshold_ns: 100_000,
        }
    }

    #[test]
    fn master_time_interval_is_tight() {
        let clock: SharedClock = Arc::new(ManualClock::new(5_000));
        let node = NodeClock::new_master(clock, cfg());
        let i = node.time().unwrap();
        assert_eq!(i.lower, i.upper);
        assert_eq!(i.lower, 5_000);
        assert!(node.is_master());
    }

    #[test]
    fn slave_has_no_time_until_synced() {
        let clock: SharedClock = Arc::new(ManualClock::new(0));
        let node = NodeClock::new_slave(clock, cfg());
        assert!(node.time().is_none());
        assert!(!node.is_enabled());
        node.record_sync(SyncSample {
            t_send: 0,
            t_cm: 100,
            t_recv: 10,
        });
        assert!(node.is_enabled());
        let i = node.time().unwrap();
        assert!(i.lower <= 100 && i.upper >= 100);
    }

    #[test]
    fn master_get_ts_strict_has_no_wait() {
        let clock: SharedClock = Arc::new(ManualClock::new(1_000));
        let node = NodeClock::new_master(clock, cfg());
        let (ts, waited) = node.get_ts(TsMode::StrictWait);
        assert_eq!(ts, Timestamp(1_000));
        assert_eq!(waited, 0);
    }

    #[test]
    fn strict_get_ts_waits_out_uncertainty_on_slaves() {
        // Slave synchronized over a 40 µs round trip against a master whose
        // clock runs in real time: the strict timestamp must end up in the
        // past relative to the master.
        let base: SharedClock = Arc::new(MonotonicClock::new());
        let master = Arc::new(NodeClock::new_master(base.clone(), cfg()));
        let slave = NodeClock::new_slave(base.clone(), cfg());
        // Simulate a sync with a 40 µs RTT.
        let send = base.now_ns();
        let cm = master.serve_master_time().unwrap();
        std::thread::sleep(Duration::from_micros(40));
        let recv = base.now_ns();
        slave.record_sync(SyncSample {
            t_send: send,
            t_cm: cm,
            t_recv: recv,
        });
        let before = master.serve_master_time().unwrap();
        let (ts, waited) = slave.get_ts(TsMode::StrictWait);
        let after = master.serve_master_time().unwrap();
        assert!(ts.as_nanos() >= before, "read timestamp must not be stale");
        assert!(
            ts.as_nanos() <= after,
            "timestamp must be in the past after the wait"
        );
        assert!(waited > 0, "a wait was required (uncertainty ~40µs)");
    }

    #[test]
    fn non_strict_read_ts_needs_no_wait_and_is_lower_bound() {
        let base: SharedClock = Arc::new(MonotonicClock::new());
        let slave = NodeClock::new_slave(base.clone(), cfg());
        let now = base.now_ns();
        slave.record_sync(SyncSample {
            t_send: now,
            t_cm: now,
            t_recv: now + 10_000,
        });
        let i = slave.time().unwrap();
        let (ts, waited) = slave.get_ts(TsMode::NonStrictRead);
        assert_eq!(waited, 0);
        assert!(ts.as_nanos() >= i.lower);
        let i2 = slave.time().unwrap();
        assert!(ts.as_nanos() <= i2.upper);
    }

    #[test]
    fn lower_bound_is_non_decreasing() {
        let base: SharedClock = Arc::new(MonotonicClock::new());
        let slave = NodeClock::new_slave(base.clone(), cfg());
        let now = base.now_ns();
        slave.record_sync(SyncSample {
            t_send: now,
            t_cm: now,
            t_recv: now + 1_000,
        });
        let mut prev = 0;
        for _ in 0..1_000 {
            let i = slave.time().unwrap();
            assert!(i.lower >= prev);
            prev = i.lower;
        }
    }

    #[test]
    fn disable_blocks_timestamps_until_enable() {
        let base: SharedClock = Arc::new(MonotonicClock::new());
        let node = Arc::new(NodeClock::new_master(base, cfg()));
        node.disable();
        assert!(node.time().is_none());
        let n2 = Arc::clone(&node);
        let h = std::thread::spawn(move || n2.get_ts(TsMode::StrictWait).0);
        std::thread::sleep(Duration::from_millis(5));
        node.enable();
        let ts = h.join().unwrap();
        assert!(ts.as_nanos() > 0);
        assert!(node.stats().disabled_ns.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn failover_master_continues_from_ff() {
        let base: SharedClock = Arc::new(ManualClock::new(100));
        let node = NodeClock::new_slave(base.clone(), cfg());
        node.record_sync(SyncSample {
            t_send: 0,
            t_cm: 10_000,
            t_recv: 100,
        });
        node.disable();
        let ff = node.update_ff_from_time();
        assert!(ff >= 10_000);
        node.become_master_at(ff);
        node.enable();
        let t = node.serve_master_time().unwrap();
        assert!(t >= ff);
        assert!(node.is_master());
    }

    #[test]
    fn slave_rejects_master_time_requests() {
        let base: SharedClock = Arc::new(ManualClock::new(0));
        let node = NodeClock::new_slave(base, cfg());
        assert_eq!(node.serve_master_time(), Err(MasterError::Disabled));
        node.record_sync(SyncSample {
            t_send: 0,
            t_cm: 0,
            t_recv: 0,
        });
        assert_eq!(node.serve_master_time(), Err(MasterError::NotMaster));
    }

    #[test]
    fn become_slave_resets_sync_state() {
        let base: SharedClock = Arc::new(ManualClock::new(0));
        let node = NodeClock::new_master(base, cfg());
        assert!(node.is_master());
        node.become_slave();
        assert!(!node.is_master());
        assert!(!node.is_enabled());
        assert!(node.time().is_none());
    }

    #[test]
    fn raise_ff_is_monotonic() {
        let base: SharedClock = Arc::new(ManualClock::new(0));
        let node = NodeClock::new_slave(base, cfg());
        assert_eq!(node.raise_ff(50), 50);
        assert_eq!(node.raise_ff(20), 50);
        assert_eq!(node.ff(), 50);
        assert_eq!(node.raise_ff(80), 80);
    }

    #[test]
    fn deferred_strict_acquisition_matches_strict_wait() {
        // On a slave with real uncertainty, get_ts_deferred + the deferred
        // wait must end in the same state as get_ts(StrictWait): the
        // returned upper bound is in the past, and the wait was recorded in
        // the clock statistics.
        let clock: SharedClock = Arc::new(MonotonicClock::new());
        let node = NodeClock::new_slave(clock.clone(), cfg());
        let now = clock.now_ns();
        node.record_sync(SyncSample {
            t_send: now,
            t_cm: now,
            t_recv: clock.now_ns() + 10_000,
        });
        let ts = node.get_ts_deferred();
        let waited = node.complete_deferred_wait(ts.as_nanos());
        let interval = node.time().unwrap();
        assert!(
            interval.lower >= ts.as_nanos(),
            "deferred wait did not put the timestamp in the past"
        );
        let (_, waits, wait_ns, _) = node.stats().snapshot();
        if waited > 0 {
            assert!(waits >= 1);
            assert!(wait_ns >= waited);
        }
        // A second deferred wait on an already-past target is (nearly)
        // free: it costs one interval read, not an uncertainty wait.
        assert!(node.complete_deferred_wait(0) < 100_000);
    }

    #[test]
    fn wait_observer_tracks_mean() {
        let w = WaitObserver::default();
        assert_eq!(w.mean_ns(), 0.0);
        w.record(10);
        w.record(30);
        assert_eq!(w.count(), 2);
        assert!((w.mean_ns() - 20.0).abs() < f64::EPSILON);
    }
}
