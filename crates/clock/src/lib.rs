//! # farm-clock — global time for FaRMv2
//!
//! This crate implements the *global time* mechanism described in Section 4.1
//! of "Fast General Distributed Transactions with Opacity" (FaRMv2,
//! SIGMOD 2019): every machine keeps a local clock (in the paper the CPU
//! cycle counter, here a monotonic host clock optionally perturbed with a
//! configurable drift and offset), and periodically synchronizes with an
//! elected **clock master** (CM) using Marzullo-style interval
//! synchronization. A machine never knows the master time exactly — it only
//! knows an **interval** `[L, U]` that is guaranteed to contain the time at
//! the CM, assuming one-way network latencies are non-negative and the
//! relative clock drift is bounded by a known ε.
//!
//! The crate provides:
//!
//! * [`Clock`] — the local-clock abstraction, with a real [`MonotonicClock`],
//!   a [`DriftClock`] that injects bounded drift/offset (to emulate distinct
//!   machines inside one process), and a [`ManualClock`] for deterministic
//!   tests.
//! * [`SyncSample`] / [`Synchronizer`] — the optimized variant of Marzullo's
//!   algorithm from Figure 2 of the paper, which keeps *two* past
//!   synchronizations: the one giving the highest lower bound (`S_lower`) and
//!   the one giving the lowest upper bound (`S_upper`).
//! * [`NodeClock`] — a per-machine facade combining the local clock, the
//!   synchronizer, and the clock-master role; it implements `TIME()` and the
//!   `GET_TS()` **uncertainty wait** of Figures 4 and 5, plus the non-strict
//!   variants used by non-strict / snapshot-isolation transactions.
//! * [`MasterState`] — the clock-master side: serving `MASTERTIME()`,
//!   disabling/enabling the clock during reconfiguration, and the
//!   **fast-forward** (`FF`) bookkeeping used by the clock-failover protocol
//!   of Figure 6.
//! * [`DriftMonitor`] — continuous monitoring of the local clock rate
//!   relative to the CM, reporting machines whose observed drift exceeds a
//!   configurable threshold (200 ppm in the paper, 5× more conservative than
//!   the 1000 ppm correctness bound).
//!
//! All times are expressed in nanoseconds as `u64`; timestamps are newtyped
//! as [`Timestamp`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod clock;
mod drift;
mod interval;
mod master;
mod node;
mod sync;

pub use clock::{Clock, DriftClock, ManualClock, MonotonicClock, SharedClock};
pub use drift::{DriftMonitor, DriftReport};
pub use interval::{TimeInterval, Timestamp};
pub use master::{MasterError, MasterState};
pub use node::{ClockConfig, ClockStats, NodeClock, TsMode, WaitObserver};
pub use sync::{MasterTimeSource, SyncError, SyncSample, Synchronizer};

/// Parts-per-million helper: applies `(1 + ppm/1e6)` to a nanosecond delta.
#[inline]
pub(crate) fn scale_up(delta_ns: u64, ppm: u32) -> u64 {
    let d = delta_ns as u128;
    let num = d * (1_000_000u128 + ppm as u128);
    (num / 1_000_000u128) as u64
}

/// Parts-per-million helper: applies `(1 - ppm/1e6)` to a nanosecond delta.
#[inline]
pub(crate) fn scale_down(delta_ns: u64, ppm: u32) -> u64 {
    let d = delta_ns as u128;
    let num = d * (1_000_000u128 - ppm as u128);
    (num / 1_000_000u128) as u64
}

#[cfg(test)]
mod ppm_tests {
    use super::*;

    #[test]
    fn scale_up_and_down_are_inverse_enough() {
        let base = 1_000_000_000u64; // 1 s
        assert_eq!(scale_up(base, 1000), 1_001_000_000);
        assert_eq!(scale_down(base, 1000), 999_000_000);
        assert_eq!(scale_up(0, 1000), 0);
        assert_eq!(scale_down(0, 1000), 0);
    }

    #[test]
    fn scale_handles_large_values_without_overflow() {
        let base = u64::MAX / 2;
        let up = scale_up(base, 1_000_000); // +100%
        assert!(up > base);
        let down = scale_down(base, 1_000_000); // -100%
        assert_eq!(down, 0);
    }
}
