//! Timestamps and time intervals.

use std::fmt;

/// A FaRMv2 timestamp, in nanoseconds of global (clock-master) time.
///
/// The paper stores timestamps in a 53-bit field of the object header; we
/// keep the full `u64` here and let the memory subsystem enforce the
/// 53-bit packing limit when writing headers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp; smaller than every timestamp a transaction can
    /// acquire. Used as the initial version of freshly-allocated objects and
    /// as the "aborted" GC time of old versions (Section 4.5).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Maximum value representable in the 53-bit header field.
    pub const MAX_HEADER: Timestamp = Timestamp((1u64 << 53) - 1);

    /// Raw nanoseconds value.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whether this timestamp fits in the 53-bit object-header field.
    #[inline]
    pub fn fits_header(self) -> bool {
        self.0 <= Self::MAX_HEADER.0
    }

    /// Saturating addition of a nanosecond delta.
    #[inline]
    pub fn saturating_add(self, delta_ns: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta_ns))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// An uncertainty interval `[lower, upper]` guaranteed to contain the current
/// time at the clock master (Figure 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimeInterval {
    /// Lower bound on the time at the clock master, in nanoseconds.
    pub lower: u64,
    /// Upper bound on the time at the clock master, in nanoseconds.
    pub upper: u64,
}

impl TimeInterval {
    /// Builds an interval, asserting the bounds are ordered.
    #[inline]
    pub fn new(lower: u64, upper: u64) -> Self {
        debug_assert!(
            lower <= upper,
            "interval bounds out of order: [{lower}, {upper}]"
        );
        TimeInterval { lower, upper }
    }

    /// A degenerate interval `[t, t]`, as produced on the clock master
    /// itself (whose local clock *is* the global time).
    #[inline]
    pub fn exact(t: u64) -> Self {
        TimeInterval { lower: t, upper: t }
    }

    /// Width of the interval (the *uncertainty*), in nanoseconds.
    #[inline]
    pub fn uncertainty(&self) -> u64 {
        self.upper - self.lower
    }

    /// Whether `self` and `other` overlap. The uncertainty wait of Figure 5
    /// blocks until the current interval no longer overlaps the interval at
    /// the start of the wait.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }

    /// Upper bound as a [`Timestamp`].
    #[inline]
    pub fn upper_ts(&self) -> Timestamp {
        Timestamp(self.upper)
    }

    /// Lower bound as a [`Timestamp`].
    #[inline]
    pub fn lower_ts(&self) -> Timestamp {
        Timestamp(self.lower)
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_uncertainty_and_overlap() {
        let a = TimeInterval::new(100, 200);
        let b = TimeInterval::new(150, 400);
        let c = TimeInterval::new(201, 400);
        assert_eq!(a.uncertainty(), 100);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn exact_interval_has_zero_uncertainty() {
        let e = TimeInterval::exact(42);
        assert_eq!(e.uncertainty(), 0);
        assert_eq!(e.lower, e.upper);
    }

    #[test]
    fn timestamp_header_packing() {
        assert!(Timestamp(0).fits_header());
        assert!(Timestamp::MAX_HEADER.fits_header());
        assert!(!Timestamp((1 << 53) + 1).fits_header());
    }

    #[test]
    fn timestamp_ordering_matches_nanos() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp(7).as_nanos(), 7);
        assert_eq!(Timestamp::from(9u64), Timestamp(9));
    }

    #[test]
    fn adjacent_intervals_touching_at_a_point_overlap() {
        let a = TimeInterval::new(100, 200);
        let b = TimeInterval::new(200, 300);
        assert!(a.overlaps(&b));
    }
}
