//! Marzullo-style clock synchronization (Figure 2 of the paper).
//!
//! A non-CM fetches the CM's time over the network. The only assumptions are
//! that one-way latencies are non-negative and the relative clock drift is
//! bounded by ε. Each completed synchronization yields a [`SyncSample`] from
//! which a lower bound `LB(S, T)` and an upper bound `UB(S, T)` on the
//! master's time can be computed for any later local time `T`.
//!
//! The optimized variant keeps up to **two** samples: the one that currently
//! yields the best (highest) lower bound and the one that yields the best
//! (lowest) upper bound — they are not always the most recent sample, and not
//! always the same sample.

use crate::{scale_down, scale_up, TimeInterval};

/// Error produced when a synchronization round cannot complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The clock master is currently disabled (reconfiguration in progress).
    MasterDisabled,
    /// The clock master could not be reached.
    Unreachable(String),
    /// The response was discarded by the sampling filter (Figure 17
    /// emulation of larger clusters discards a fraction of responses).
    Sampled,
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::MasterDisabled => write!(f, "clock master disabled"),
            SyncError::Unreachable(m) => write!(f, "clock master unreachable: {m}"),
            SyncError::Sampled => write!(f, "synchronization response discarded by sampling"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Source of `MASTERTIME()` readings. In the full system this is an RPC over
/// the simulated RDMA network to the clock master; unit tests implement it
/// directly over a [`MasterState`](crate::MasterState).
pub trait MasterTimeSource: Send + Sync {
    /// Returns the current time at the clock master, in master nanoseconds.
    fn master_time(&self) -> Result<u64, SyncError>;
}

impl<F> MasterTimeSource for F
where
    F: Fn() -> Result<u64, SyncError> + Send + Sync,
{
    fn master_time(&self) -> Result<u64, SyncError> {
        self()
    }
}

/// State from one successful synchronization with the clock master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncSample {
    /// Local time when the request was sent.
    pub t_send: u64,
    /// Master time returned by the request.
    pub t_cm: u64,
    /// Local time when the response was received.
    pub t_recv: u64,
}

impl SyncSample {
    /// `LB(S, T) = S.t_cm + (T − S.t_recv)(1 − ε)` — lower bound on the
    /// master time at local time `T >= t_recv`.
    #[inline]
    pub fn lower_bound(&self, local_now: u64, drift_ppm: u32) -> u64 {
        let elapsed = local_now.saturating_sub(self.t_recv);
        self.t_cm.saturating_add(scale_down(elapsed, drift_ppm))
    }

    /// `UB(S, T) = S.t_cm + (T − S.t_send)(1 + ε)` — upper bound on the
    /// master time at local time `T >= t_send`.
    #[inline]
    pub fn upper_bound(&self, local_now: u64, drift_ppm: u32) -> u64 {
        let elapsed = local_now.saturating_sub(self.t_send);
        self.t_cm.saturating_add(scale_up(elapsed, drift_ppm))
    }

    /// Round-trip time of the synchronization, as measured on the local
    /// clock. The uncertainty right after a synchronization is bounded by
    /// `(1 + ε) * rtt` (Figure 1).
    #[inline]
    pub fn rtt(&self) -> u64 {
        self.t_recv.saturating_sub(self.t_send)
    }
}

/// The per-machine synchronization state (Figure 2): up to two retained
/// samples, one optimizing the lower bound and one the upper bound, plus the
/// configured drift bound and cross-thread counter uncertainty.
#[derive(Debug, Clone)]
pub struct Synchronizer {
    drift_ppm: u32,
    /// Extra uncertainty to cover cycle-counter skew between threads of the
    /// same machine (the paper cites ~400 ns on Windows).
    thread_skew_ns: u64,
    s_lower: Option<SyncSample>,
    s_upper: Option<SyncSample>,
    /// Number of successful synchronizations recorded.
    syncs: u64,
}

impl Synchronizer {
    /// Creates an empty synchronizer with the given drift bound (ppm) and
    /// cross-thread skew allowance (ns).
    pub fn new(drift_ppm: u32, thread_skew_ns: u64) -> Self {
        Synchronizer {
            drift_ppm,
            thread_skew_ns,
            s_lower: None,
            s_upper: None,
            syncs: 0,
        }
    }

    /// The drift bound ε in parts per million.
    pub fn drift_ppm(&self) -> u32 {
        self.drift_ppm
    }

    /// True if at least one synchronization has been recorded; `time()` is
    /// meaningless before that.
    pub fn is_synchronized(&self) -> bool {
        self.s_lower.is_some() && self.s_upper.is_some()
    }

    /// Number of successful synchronizations recorded so far.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Clears all synchronization state. Used by the clock failover protocol:
    /// after a new clock master is enabled, the first successful
    /// synchronization replaces all previous state (Section 4.3).
    pub fn reset(&mut self) {
        self.s_lower = None;
        self.s_upper = None;
    }

    /// Records a completed synchronization, keeping it only if it improves
    /// the lower bound and/or the upper bound at `local_now` (the `SYNC`
    /// function of Figure 2).
    pub fn record(&mut self, sample: SyncSample, local_now: u64) {
        self.syncs += 1;
        match &self.s_lower {
            Some(cur)
                if cur.lower_bound(local_now, self.drift_ppm)
                    >= sample.lower_bound(local_now, self.drift_ppm) => {}
            _ => self.s_lower = Some(sample),
        }
        match &self.s_upper {
            Some(cur)
                if cur.upper_bound(local_now, self.drift_ppm)
                    <= sample.upper_bound(local_now, self.drift_ppm) => {}
            _ => self.s_upper = Some(sample),
        }
    }

    /// Computes the current uncertainty interval (the `TIME` function of
    /// Figure 2), widened by the cross-thread skew allowance on both sides.
    /// Returns `None` if no synchronization has happened yet.
    pub fn time(&self, local_now: u64) -> Option<TimeInterval> {
        let (sl, su) = (self.s_lower.as_ref()?, self.s_upper.as_ref()?);
        let mut lower = sl.lower_bound(local_now, self.drift_ppm);
        let mut upper = su.upper_bound(local_now, self.drift_ppm);
        lower = lower.saturating_sub(self.thread_skew_ns);
        upper = upper.saturating_add(self.thread_skew_ns);
        // Numerical guard: with independent samples the bounds can cross only
        // if the drift-bound assumption was violated; clamp to a point
        // interval rather than producing an inverted one.
        if lower > upper {
            lower = upper;
        }
        Some(TimeInterval::new(lower, upper))
    }

    /// Performs one synchronization against `source` using `local_clock_now`
    /// readings taken by the caller, and records the resulting sample.
    ///
    /// The caller supplies the send-side reading so that the measured RTT
    /// includes any queueing delays it wishes to model.
    pub fn sync_once<C: Fn() -> u64>(
        &mut self,
        source: &dyn MasterTimeSource,
        local_now: C,
    ) -> Result<SyncSample, SyncError> {
        let t_send = local_now();
        let t_cm = source.master_time()?;
        let t_recv = local_now();
        let sample = SyncSample {
            t_send,
            t_cm,
            t_recv,
        };
        self.record(sample, t_recv);
        Ok(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: u32 = 1_000; // 1000 ppm, as in the paper

    #[test]
    fn bounds_straddle_master_time_immediately_after_sync() {
        // Non-CM local clock equals master clock + 500 offset, zero drift.
        let sample = SyncSample {
            t_send: 1_500,
            t_cm: 1_020,
            t_recv: 1_540,
        };
        let lb = sample.lower_bound(1_540, EPS);
        let ub = sample.upper_bound(1_540, EPS);
        // Master time at t_recv is ~1040 (sent at master time 1000, 40 rtt).
        assert!(lb <= 1_060, "lb={lb}");
        assert!(ub >= 1_020, "ub={ub}");
        assert!(lb <= ub);
    }

    #[test]
    fn uncertainty_grows_with_elapsed_time() {
        let sample = SyncSample {
            t_send: 0,
            t_cm: 10,
            t_recv: 20,
        };
        let mut sync = Synchronizer::new(EPS, 0);
        sync.record(sample, 20);
        let i0 = sync.time(20).unwrap();
        let i1 = sync.time(1_000_000).unwrap();
        assert!(i1.uncertainty() > i0.uncertainty());
    }

    #[test]
    fn keeps_best_lower_and_upper_bounds_separately() {
        let mut sync = Synchronizer::new(EPS, 0);
        // First sample: long RTT (wide interval).
        sync.record(
            SyncSample {
                t_send: 0,
                t_cm: 500,
                t_recv: 1_000,
            },
            1_000,
        );
        let wide = sync.time(1_000).unwrap();
        // Second sample: short RTT, tighter on both sides.
        sync.record(
            SyncSample {
                t_send: 2_000,
                t_cm: 2_510,
                t_recv: 2_020,
            },
            2_020,
        );
        let tight = sync.time(2_020).unwrap();
        assert!(tight.uncertainty() < wide.uncertainty() + 1_020);
        // A later, sloppier sample must not widen the bounds.
        let before = sync.time(3_000).unwrap();
        sync.record(
            SyncSample {
                t_send: 2_900,
                t_cm: 3_000,
                t_recv: 3_000,
            },
            3_000,
        );
        let after = sync.time(3_000).unwrap();
        assert!(after.uncertainty() <= before.uncertainty());
    }

    #[test]
    fn time_is_none_until_first_sync() {
        let sync = Synchronizer::new(EPS, 0);
        assert!(sync.time(123).is_none());
        assert!(!sync.is_synchronized());
    }

    #[test]
    fn reset_clears_samples() {
        let mut sync = Synchronizer::new(EPS, 0);
        sync.record(
            SyncSample {
                t_send: 0,
                t_cm: 5,
                t_recv: 10,
            },
            10,
        );
        assert!(sync.is_synchronized());
        sync.reset();
        assert!(!sync.is_synchronized());
        assert!(sync.time(20).is_none());
    }

    #[test]
    fn thread_skew_widens_interval_symmetrically() {
        let mut a = Synchronizer::new(EPS, 0);
        let mut b = Synchronizer::new(EPS, 400);
        let s = SyncSample {
            t_send: 0,
            t_cm: 50_000,
            t_recv: 100,
        };
        a.record(s, 100);
        b.record(s, 100);
        let ia = a.time(100).unwrap();
        let ib = b.time(100).unwrap();
        assert_eq!(ib.uncertainty(), ia.uncertainty() + 800);
    }

    #[test]
    fn sync_once_uses_source_and_records() {
        let mut sync = Synchronizer::new(EPS, 0);
        let now = std::sync::atomic::AtomicU64::new(100);
        let sample = sync
            .sync_once(&|| Ok(777u64), || {
                now.fetch_add(10, std::sync::atomic::Ordering::SeqCst)
            })
            .unwrap();
        assert_eq!(sample.t_cm, 777);
        assert!(sample.t_recv > sample.t_send);
        assert!(sync.is_synchronized());
    }

    #[test]
    fn sync_once_propagates_errors_without_recording() {
        let mut sync = Synchronizer::new(EPS, 0);
        let err = sync
            .sync_once(&|| Err(SyncError::MasterDisabled), || 0u64)
            .unwrap_err();
        assert_eq!(err, SyncError::MasterDisabled);
        assert!(!sync.is_synchronized());
    }

    #[test]
    fn rtt_is_recv_minus_send() {
        let s = SyncSample {
            t_send: 10,
            t_cm: 0,
            t_recv: 35,
        };
        assert_eq!(s.rtt(), 25);
    }
}
