//! Local clock abstractions.
//!
//! The paper uses the CPU cycle counter (TSC) on every machine. To emulate a
//! cluster of machines with *different* clocks inside a single process, every
//! simulated machine gets a [`DriftClock`]: a view of the host monotonic
//! clock with a private offset and a private rate error (expressed in parts
//! per million). Tests that need full determinism use a [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A local clock that returns nanoseconds since an arbitrary (per-clock)
/// epoch. Implementations must be monotonic: successive calls never go
/// backwards.
pub trait Clock: Send + Sync + 'static {
    /// Current local time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// Convenience alias used throughout the system: clocks are shared between
/// the application threads, the lease/sync thread and the worker threads of
/// a simulated machine.
pub type SharedClock = Arc<dyn Clock>;

/// The host's monotonic clock. All [`DriftClock`]s in a process derive from a
/// single shared `MonotonicClock`, which mirrors how all machines in a
/// cluster live in the same physical time even though their counters differ.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A clock derived from a base clock with a constant rate error (drift) and a
/// constant offset, modelling one machine's cycle counter.
///
/// `now = offset + base_now * (1 + drift_ppm/1e6)` where `drift_ppm` may be
/// negative. The drift must stay within the system-wide bound ε for the
/// synchronization algorithm's guarantees to hold; the
/// [`DriftMonitor`](crate::DriftMonitor) is the runtime check for that
/// assumption.
pub struct DriftClock {
    base: SharedClock,
    offset_ns: u64,
    drift_ppm: i32,
    /// Monotonicity guard: `now_ns` never returns less than this.
    last: AtomicU64,
}

impl DriftClock {
    /// Creates a drifting view of `base`.
    pub fn new(base: SharedClock, offset_ns: u64, drift_ppm: i32) -> Self {
        DriftClock {
            base,
            offset_ns,
            drift_ppm,
            last: AtomicU64::new(0),
        }
    }

    /// The configured drift in parts per million.
    pub fn drift_ppm(&self) -> i32 {
        self.drift_ppm
    }

    /// The configured offset in nanoseconds.
    pub fn offset_ns(&self) -> u64 {
        self.offset_ns
    }
}

impl Clock for DriftClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        let b = self.base.now_ns();
        let scaled = if self.drift_ppm >= 0 {
            crate::scale_up(b, self.drift_ppm as u32)
        } else {
            crate::scale_down(b, (-self.drift_ppm) as u32)
        };
        let t = self.offset_ns.saturating_add(scaled);
        // Enforce monotonicity in the presence of concurrent callers.
        self.last.fetch_max(t, Ordering::Relaxed).max(t)
    }
}

/// A manually-advanced clock for deterministic unit tests.
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start_ns),
        }
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute value. Panics if this would move the
    /// clock backwards (clocks are monotonic).
    pub fn set(&self, t_ns: u64) {
        let prev = self.now.swap(t_ns, Ordering::SeqCst);
        assert!(
            prev <= t_ns,
            "ManualClock moved backwards: {prev} -> {t_ns}"
        );
    }
}

impl Clock for ManualClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_settable_and_monotonic() {
        let c = ManualClock::new(100);
        assert_eq!(c.now_ns(), 100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        c.set(400);
        assert_eq!(c.now_ns(), 400);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::new(100);
        c.set(50);
    }

    #[test]
    fn drift_clock_applies_offset_and_positive_drift() {
        let base = Arc::new(ManualClock::new(0));
        let d = DriftClock::new(base.clone(), 1_000, 1_000_000); // +100%
        assert_eq!(d.now_ns(), 1_000);
        base.advance(1_000);
        assert_eq!(d.now_ns(), 3_000); // offset 1000 + 1000*2
    }

    #[test]
    fn drift_clock_applies_negative_drift() {
        let base = Arc::new(ManualClock::new(0));
        let d = DriftClock::new(base.clone(), 0, -500_000); // -50%
        base.advance(1_000_000);
        assert_eq!(d.now_ns(), 500_000);
    }

    #[test]
    fn drift_clock_is_monotonic_across_threads() {
        let base = Arc::new(MonotonicClock::new());
        let d = Arc::new(DriftClock::new(base, 0, 100));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut prev = 0;
                for _ in 0..10_000 {
                    let t = d.now_ns();
                    assert!(t >= prev);
                    prev = t;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
