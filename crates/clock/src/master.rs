//! Clock-master state.
//!
//! In FaRMv2 the configuration manager (CM) doubles as the clock master. Its
//! local clock *defines* global time. When the CM fails, a new CM continues
//! global time from the fast-forward value `FF` agreed by the failover
//! protocol (Figure 6): the new master's global time is pinned to `FF` at the
//! instant its clock is (re-)enabled and advances with its local clock from
//! there.

use crate::clock::SharedClock;

/// Errors returned when asking a node to act as a clock master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterError {
    /// The clock is currently disabled (a reconfiguration with clock
    /// failover is in progress); synchronization requests are rejected.
    Disabled,
    /// This node is not the clock master in the current configuration.
    NotMaster,
}

impl std::fmt::Display for MasterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasterError::Disabled => write!(f, "clock master disabled"),
            MasterError::NotMaster => write!(f, "not the clock master"),
        }
    }
}

impl std::error::Error for MasterError {}

/// The master-time generator of a node that currently is the clock master.
///
/// Master time is `anchor_master + (local_now - anchor_local)`: an affine
/// continuation of the local clock from an anchor point. The initial master
/// anchors at `(local_now, local_now)` so its master time simply *is* its
/// local clock; a failed-over master anchors at `(local_now, FF)`.
#[derive(Debug)]
pub struct MasterState {
    anchor_local: u64,
    anchor_master: u64,
}

impl MasterState {
    /// Master state for the initial clock master: global time equals its
    /// local clock.
    pub fn initial(clock: &SharedClock) -> Self {
        let now = clock.now_ns();
        MasterState {
            anchor_local: now,
            anchor_master: now,
        }
    }

    /// Master state for a node taking over as clock master after failover:
    /// global time continues from the fast-forward value `ff`.
    pub fn taking_over_at(clock: &SharedClock, ff: u64) -> Self {
        MasterState {
            anchor_local: clock.now_ns(),
            anchor_master: ff,
        }
    }

    /// The current master time.
    #[inline]
    pub fn master_time(&self, clock: &SharedClock) -> u64 {
        let now = clock.now_ns();
        self.anchor_master + now.saturating_sub(self.anchor_local)
    }

    /// The master time this state was anchored at (its enable point).
    pub fn anchor(&self) -> u64 {
        self.anchor_master
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use std::sync::Arc;

    #[test]
    fn initial_master_time_tracks_local_clock() {
        let c = Arc::new(ManualClock::new(1_000));
        let shared: SharedClock = c.clone();
        let m = MasterState::initial(&shared);
        assert_eq!(m.master_time(&shared), c.now_ns());
        c.advance(500);
        assert_eq!(m.master_time(&shared), 1_500);
    }

    #[test]
    fn takeover_master_continues_from_ff() {
        let c = Arc::new(ManualClock::new(10_000));
        let shared: SharedClock = c.clone();
        // The old master had advanced global time to 50_000.
        let m = MasterState::taking_over_at(&shared, 50_000);
        assert_eq!(m.master_time(&shared), 50_000);
        c.advance(1_234);
        assert_eq!(m.master_time(&shared), 51_234);
        assert_eq!(m.anchor(), 50_000);
    }

    #[test]
    fn takeover_never_goes_backwards_even_if_local_clock_is_ahead() {
        // The new master's local clock reads far ahead of FF; master time
        // must still start exactly at FF, not at the local reading.
        let c = Arc::new(ManualClock::new(1_000_000));
        let shared: SharedClock = c.clone();
        let m = MasterState::taking_over_at(&shared, 42);
        assert_eq!(m.master_time(&shared), 42);
    }
}
