//! Property-based tests for the global-time subsystem.
//!
//! These exercise the correctness assumptions of Section 4.1: the computed
//! interval always contains the true master time, intervals shrink (never
//! grow) when better synchronizations arrive, and uncertainty waits produce
//! timestamps that respect happens-before.

use std::sync::Arc;

use farm_clock::{
    ClockConfig, DriftClock, ManualClock, NodeClock, SharedClock, SyncSample, Synchronizer,
};
use proptest::prelude::*;

const EPS_PPM: u32 = 1_000;

/// Builds a (master clock, slave clock) pair over a shared manual base where
/// the slave has the given drift (must be within ±EPS_PPM) and offset.
fn clock_pair(offset: u64, drift_ppm: i32) -> (Arc<ManualClock>, SharedClock, SharedClock) {
    let base = Arc::new(ManualClock::new(1));
    let master: SharedClock = Arc::new(DriftClock::new(base.clone(), 0, 0));
    let slave: SharedClock = Arc::new(DriftClock::new(base.clone(), offset, drift_ppm));
    (base, master, slave)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any sequence of synchronizations and arbitrary elapsed time, the
    /// interval computed on the slave always contains the master's true time.
    #[test]
    fn interval_always_contains_master_time(
        offset in 0u64..1_000_000,
        drift_ppm in -900i32..900,
        // (advance before sync, rtt, advance after sync) triples
        steps in prop::collection::vec((1u64..50_000, 1u64..20_000, 1u64..200_000), 1..20),
    ) {
        let (base, master, slave) = clock_pair(offset, drift_ppm);
        let mut sync = Synchronizer::new(EPS_PPM, 0);
        for (pre, rtt, post) in steps {
            base.advance(pre);
            let t_send = slave.now_ns();
            base.advance(rtt / 2);
            let t_cm = master.now_ns();
            base.advance(rtt - rtt / 2);
            let t_recv = slave.now_ns();
            sync.record(SyncSample { t_send, t_cm, t_recv }, t_recv);
            base.advance(post);
            let interval = sync.time(slave.now_ns()).unwrap();
            let true_master = master.now_ns();
            prop_assert!(interval.lower <= true_master,
                "lower bound {} exceeds master time {}", interval.lower, true_master);
            prop_assert!(interval.upper >= true_master,
                "upper bound {} below master time {}", interval.upper, true_master);
        }
    }

    /// Recording an extra synchronization never widens the interval computed
    /// at the moment the new sample is recorded.
    #[test]
    fn extra_sync_never_widens_interval(
        offset in 0u64..1_000_000,
        drift_ppm in -900i32..900,
        rtt1 in 1u64..100_000,
        rtt2 in 1u64..100_000,
        gap in 1u64..1_000_000,
    ) {
        let (base, master, slave) = clock_pair(offset, drift_ppm);
        let mut sync = Synchronizer::new(EPS_PPM, 0);

        let t_send = slave.now_ns();
        base.advance(rtt1 / 2);
        let t_cm = master.now_ns();
        base.advance(rtt1 - rtt1 / 2);
        let t_recv = slave.now_ns();
        sync.record(SyncSample { t_send, t_cm, t_recv }, t_recv);

        base.advance(gap);

        // Take the second sample; compare the interval computed with and
        // without it at the same local instant (t_recv of the second sample).
        let t_send = slave.now_ns();
        base.advance(rtt2 / 2);
        let t_cm = master.now_ns();
        base.advance(rtt2 - rtt2 / 2);
        let t_recv = slave.now_ns();

        let without = sync.clone();
        sync.record(SyncSample { t_send, t_cm, t_recv }, t_recv);

        let before = without.time(t_recv).unwrap();
        let after = sync.time(t_recv).unwrap();
        prop_assert!(after.uncertainty() <= before.uncertainty(),
            "extra sample widened interval: {} -> {}", before.uncertainty(), after.uncertainty());
        // Bounds individually only ever improve.
        prop_assert!(after.lower >= before.lower);
        prop_assert!(after.upper <= before.upper);
    }

    /// Strict timestamps issued by a master node are monotone with respect to
    /// the order in which they are issued (single node, manual clock).
    #[test]
    fn master_strict_timestamps_are_monotone(advances in prop::collection::vec(0u64..10_000, 1..50)) {
        let base = Arc::new(ManualClock::new(1));
        let shared: SharedClock = base.clone();
        let node = NodeClock::new_master(shared, ClockConfig {
            drift_bound_ppm: EPS_PPM, thread_skew_ns: 0, spin_threshold_ns: 1_000_000,
        });
        let mut prev = 0u64;
        for adv in advances {
            base.advance(adv);
            let (ts, _) = node.get_ts(farm_clock::TsMode::StrictWait);
            prop_assert!(ts.as_nanos() >= prev);
            prev = ts.as_nanos();
        }
    }

    /// The non-strict read timestamp is always <= the strict timestamp that
    /// would be issued at the same moment (it takes L rather than U).
    #[test]
    fn non_strict_read_is_not_ahead_of_interval(
        offset in 0u64..100_000,
        drift_ppm in -900i32..900,
        rtt in 1u64..50_000,
        gap in 0u64..500_000,
    ) {
        let (base, master, slave_clock) = clock_pair(offset, drift_ppm);
        let node = NodeClock::new_slave(slave_clock.clone(), ClockConfig {
            drift_bound_ppm: EPS_PPM, thread_skew_ns: 0, spin_threshold_ns: 1_000_000,
        });
        let t_send = slave_clock.now_ns();
        base.advance(rtt / 2);
        let t_cm = master.now_ns();
        base.advance(rtt - rtt / 2);
        let t_recv = slave_clock.now_ns();
        node.record_sync(SyncSample { t_send, t_cm, t_recv });
        base.advance(gap);
        let (read_ts, waited) = node.get_ts(farm_clock::TsMode::NonStrictRead);
        prop_assert_eq!(waited, 0);
        // The non-strict read timestamp never exceeds the true master time:
        // it must not read a snapshot from the future.
        prop_assert!(read_ts.as_nanos() <= master.now_ns());
    }
}
