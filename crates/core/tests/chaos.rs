//! Chaos harness: seeded randomized kill/partition schedules against a
//! money-transfer workload, with end-to-end recovery invariants checked
//! after every heal.
//!
//! Each schedule runs concurrent transfer workers (through the transparent
//! retry wrapper) and a conservation checker while the schedule kills one or
//! two machines — sometimes the configuration manager, sometimes by
//! partitioning a node until the lease protocol evicts it. After the cluster
//! settles, the invariants are:
//!
//! * **Conservation / no snapshot tears**: the sum of all account balances
//!   equals the initial total, both on every mid-chaos snapshot read and at
//!   the end.
//! * **Acked commits survive**: every account's final value is exactly the
//!   value written by the highest-timestamped *acknowledged* transfer that
//!   touched it — no acked commit is lost, none is half-applied.
//! * **No leaked locks**: after the final heal and a quiesce, every account
//!   slot at its (possibly promoted) primary is unlocked, no engine holds
//!   pending installs, and every backup redo log has truncated to empty.
//! * **GC never passes a live read**: each live node's global GC safe point
//!   stays at or below its local oldest-active-transaction bound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_core::{AbortReason, Engine, EngineConfig, NodeId, TxError, TxOptions};
use farm_kernel::{ClusterConfig, EventKind};
use farm_memory::Addr;

const ACCOUNTS: usize = 24;
const INITIAL: u64 = 1_000;

/// SplitMix64: a tiny deterministic PRNG so schedules are reproducible from
/// their seed (the core crate deliberately has no `rand` dependency).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn chaos_cluster() -> ClusterConfig {
    ClusterConfig {
        regions_per_node: 2,
        auto_control: true,
        control_interval: Duration::from_millis(1),
        // Generous lease: the schedules run many CPU-bound threads on
        // whatever cores CI grants, and a starved control thread must not
        // cause spurious suspicion of live nodes.
        lease_expiry: Duration::from_millis(50),
        ..ClusterConfig::test(5)
    }
}

fn chaos_engine() -> Arc<Engine> {
    Engine::start_cluster(
        chaos_cluster(),
        EngineConfig {
            gc_interval: Duration::from_millis(2),
            ..EngineConfig::multi_version()
        },
    )
}

/// Allocates the accounts round-robin across every region and settles the
/// setup so chaos starts from fully installed, fully replicated state.
fn setup_accounts(engine: &Arc<Engine>) -> Vec<Addr> {
    let node = engine.node(NodeId(0));
    let regions = engine.cluster().regions();
    let mut tx = node.begin();
    let accounts: Vec<Addr> = (0..ACCOUNTS)
        .map(|i| {
            tx.alloc_in(regions[i % regions.len()], INITIAL.to_le_bytes().to_vec())
                .expect("setup allocation")
        })
        .collect();
    tx.commit().expect("setup commit");
    engine.quiesce();
    accounts
}

fn balance(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte account"))
}

/// One acked write: (write timestamp, account index, post-image).
type AckedWrite = (u64, usize, u64);

/// Transfers 1 unit between random account pairs until stopped (or the home
/// node dies), recording the post-image of every *acknowledged* commit.
fn transfer_worker(
    engine: &Arc<Engine>,
    home: NodeId,
    accounts: &[Addr],
    stop: &AtomicBool,
    seed: u64,
) -> Vec<AckedWrite> {
    let node = engine.node(home);
    let mut rng = Rng::new(seed);
    let mut acked = Vec::new();
    while !stop.load(Ordering::Acquire) {
        if !node.is_alive() {
            break;
        }
        let from = rng.below(accounts.len() as u64) as usize;
        let to = rng.below(accounts.len() as u64) as usize;
        if from == to {
            continue;
        }
        let (from_addr, to_addr) = (accounts[from], accounts[to]);
        let result = node.run_transaction(TxOptions::serializable(), |tx| {
            let from_val = balance(&tx.read(from_addr)?);
            if from_val == 0 {
                // Insufficient funds: a business abort, not retryable.
                return Err(TxError::Aborted(AbortReason::UserRequested));
            }
            let to_val = balance(&tx.read(to_addr)?);
            tx.write(from_addr, (from_val - 1).to_le_bytes().to_vec())?;
            tx.write(to_addr, (to_val + 1).to_le_bytes().to_vec())?;
            Ok((from_val - 1, to_val + 1))
        });
        if let Ok(((from_post, to_post), info)) = result {
            let ts = info.write_ts.expect("read-write commit has a write ts");
            acked.push((ts, from, from_post));
            acked.push((ts, to, to_post));
        }
        // Errors are either retry-budget exhaustion during a long blackout or
        // the coordinator's own death; the loop re-checks liveness and goes
        // on — unacked transactions carry no obligation.
    }
    acked
}

/// Snapshot-reads every account on some live node and asserts conservation —
/// run concurrently with the chaos schedule, it catches snapshot tears and
/// half-applied transfers the moment they would become visible.
fn conservation_checker(engine: &Arc<Engine>, accounts: &[Addr], stop: &AtomicBool) -> usize {
    let total = ACCOUNTS as u64 * INITIAL;
    let mut checks = 0usize;
    while !stop.load(Ordering::Acquire) {
        let Some(node) = engine.nodes().iter().find(|n| n.is_alive()) else {
            break;
        };
        let result = node.run_transaction(TxOptions::serializable(), |tx| {
            let mut sum = 0u64;
            for &addr in accounts {
                sum += balance(&tx.read(addr)?);
            }
            Ok(sum)
        });
        if let Ok((sum, info)) = result {
            assert_eq!(
                sum, total,
                "conservation violated at read_ts {}: snapshot tear",
                info.read_ts
            );
            checks += 1;
        }
        std::thread::sleep(Duration::from_micros(300));
    }
    checks
}

/// Waits until the cluster has restored full redundancy after a failure.
fn wait_for_rereplication(engine: &Arc<Engine>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if engine
            .cluster()
            .events()
            .snapshot()
            .iter()
            .any(|e| matches!(e.kind, EventKind::RereplicationComplete))
        {
            return;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    panic!(
        "re-replication did not complete within {timeout:?}; events: {:#?}",
        engine.cluster().events().snapshot()
    );
}

/// Raises the stop flag when dropped, so that a panic in the schedule body
/// (e.g. a recovery timeout) still releases the spinning workers — without
/// this, `thread::scope` would join them forever and turn a clean test
/// failure into a hang.
struct StopGuard<'a>(&'a AtomicBool);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Runs one full seeded schedule: load → failure(s) → heal → settle →
/// invariants. The failure plan is derived from the seed: one or two
/// victims, killed outright or evicted through a network partition, with the
/// initial configuration manager a possible victim (exercising clock
/// failover).
fn run_schedule(seed: u64) {
    let engine = chaos_engine();
    let accounts = setup_accounts(&engine);
    let mut rng = Rng::new(seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1));

    let cluster_size = engine.cluster().nodes().len() as u64;
    let first = NodeId(rng.below(cluster_size) as u32);
    let second = if rng.below(2) == 0 {
        let mut s = NodeId(rng.below(cluster_size) as u32);
        while s == first {
            s = NodeId(rng.below(cluster_size) as u32);
        }
        Some(s)
    } else {
        None
    };
    let evict_by_partition = rng.below(3) == 0;
    let warmup = Duration::from_millis(3 + rng.below(5));
    let cooldown = Duration::from_millis(3 + rng.below(5));

    // Three workers: one homed on the first victim (its in-flight
    // transactions exercise coordinator death), two on guaranteed survivors.
    // Kept small so the schedule also runs on single-core CI machines.
    let mut worker_homes = vec![first];
    for n in 0..cluster_size as u32 {
        let candidate = NodeId(n);
        if candidate != first && Some(candidate) != second && worker_homes.len() < 3 {
            worker_homes.push(candidate);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let (acked, checks) = std::thread::scope(|scope| {
        let _stop_guard = StopGuard(&stop);
        let mut workers = Vec::new();
        for (w, &home) in worker_homes.iter().enumerate() {
            let engine = Arc::clone(&engine);
            let accounts = &accounts;
            let stop = Arc::clone(&stop);
            let worker_seed = seed.wrapping_mul(31).wrapping_add(w as u64);
            workers.push(
                scope.spawn(move || transfer_worker(&engine, home, accounts, &stop, worker_seed)),
            );
        }
        let checker = {
            let engine = Arc::clone(&engine);
            let accounts = &accounts;
            let stop = Arc::clone(&stop);
            scope.spawn(move || conservation_checker(&engine, accounts, &stop))
        };

        std::thread::sleep(warmup);
        if evict_by_partition {
            // Isolate the victim; the lease protocol suspects it, the
            // reconfiguration evicts (and thereby kills) it, and the heal
            // afterwards must not resurrect it.
            engine.cluster().faults().partition(vec![(first, 1)]);
        } else {
            engine.cluster().kill(first);
        }
        wait_for_rereplication(&engine, Duration::from_secs(10));
        if evict_by_partition {
            engine.cluster().faults().heal();
            assert!(
                !engine.cluster().node(first).is_alive(),
                "seed {seed}: healing the partition resurrected evicted node {first:?}"
            );
        }

        if let Some(second) = second {
            // Redundancy is restored; a second, independent failure must
            // recover the same way.
            engine.cluster().events().clear();
            engine.cluster().kill(second);
            wait_for_rereplication(&engine, Duration::from_secs(10));
        }

        std::thread::sleep(cooldown);
        stop.store(true, Ordering::Release);
        let acked: Vec<AckedWrite> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect();
        (acked, checker.join().expect("checker panicked"))
    });

    engine.quiesce();

    // ---- Invariants ----------------------------------------------------
    assert!(
        !acked.is_empty(),
        "seed {seed}: no transfer ever committed — schedule produced no load"
    );
    assert!(
        checks > 0,
        "seed {seed}: the conservation checker never completed a snapshot"
    );

    // Every acked commit is readable at (and after) its timestamp: each
    // account's final value equals the post-image of the highest-timestamped
    // acked write to it, and the total is conserved.
    let survivor = engine
        .nodes()
        .iter()
        .find(|n| n.is_alive())
        .expect("schedules keep a majority alive");
    let mut check = survivor.begin();
    let finals: Vec<u64> = accounts
        .iter()
        .map(|&a| balance(&check.read(a).expect("final read")))
        .collect();
    drop(check);
    assert_eq!(
        finals.iter().sum::<u64>(),
        ACCOUNTS as u64 * INITIAL,
        "seed {seed}: money not conserved after the final heal"
    );
    let mut last: HashMap<usize, (u64, u64)> = HashMap::new();
    for &(ts, idx, post) in &acked {
        let entry = last.entry(idx).or_insert((0, 0));
        if ts >= entry.0 {
            *entry = (ts, post);
        }
    }
    for (idx, (ts, post)) in last {
        assert_eq!(
            finals[idx], post,
            "seed {seed}: account {idx} diverges from its last acked write (ts {ts})"
        );
    }

    // No leaked locks, no pending installs, no untruncated redo logs.
    for node in engine.nodes() {
        assert_eq!(
            node.pending_installs(),
            0,
            "seed {seed}: {:?} still holds pending installs after quiesce",
            node.id()
        );
        assert_eq!(
            node.backup_log_len(),
            0,
            "seed {seed}: {:?} still holds untruncated redo-log entries",
            node.id()
        );
    }
    for &addr in &accounts {
        let primary = engine
            .cluster()
            .primary_of(addr.region)
            .expect("every region has a primary after recovery");
        assert!(
            engine.cluster().node(primary).is_alive(),
            "seed {seed}: region {:?} promoted to a dead primary",
            addr.region
        );
        let slot = engine
            .cluster()
            .node(primary)
            .regions()
            .ensure(addr.region)
            .slot(addr)
            .expect("account slot resolves at its primary");
        assert!(
            !slot.header_snapshot().locked,
            "seed {seed}: leaked lock on {addr:?} after the final heal"
        );
    }

    // OAT / GC safety on the survivors.
    for node in engine.cluster().nodes().iter().filter(|n| n.is_alive()) {
        assert!(
            node.gc_safe_point() <= node.oat_local(),
            "seed {seed}: GC safe point passed the oldest active transaction on {:?}",
            node.id()
        );
    }

    engine.shutdown();
    engine.cluster().shutdown();
}

// ≥ 20 seeded schedules, split across four test functions so the harness
// runs them in parallel.

#[test]
fn chaos_schedules_seeds_00_04() {
    for seed in 0..5 {
        run_schedule(seed);
    }
}

#[test]
fn chaos_schedules_seeds_05_09() {
    for seed in 5..10 {
        run_schedule(seed);
    }
}

#[test]
fn chaos_schedules_seeds_10_14() {
    for seed in 10..15 {
        run_schedule(seed);
    }
}

#[test]
fn chaos_schedules_seeds_15_19() {
    for seed in 15..20 {
        run_schedule(seed);
    }
}

/// A node that is primary for several regions dies: every one of its regions
/// must promote a backup, and each promoted backup must replay the redo-log
/// records of early-acked commits whose COMMIT-PRIMARY never landed.
#[test]
fn all_regions_of_a_dead_primary_promote_and_replay() {
    let cfg = ClusterConfig {
        regions_per_node: 2,
        lease_expiry: Duration::from_millis(1),
        ..ClusterConfig::test(4)
    };
    let engine = Engine::start_cluster(
        cfg,
        EngineConfig {
            gc_interval: Duration::from_secs(3600),
            ..EngineConfig::multi_version()
        },
    );
    let victim = NodeId(1);
    let regions = engine.cluster().primaries_on(victim);
    assert_eq!(regions.len(), 2, "victim should be primary for two regions");

    // One object per victim region, fully settled.
    let setup_node = engine.node(NodeId(0));
    let mut setup = setup_node.begin();
    let addrs: Vec<Addr> = regions
        .iter()
        .map(|&r| setup.alloc_in(r, 0u64.to_le_bytes().to_vec()).unwrap())
        .collect();
    setup.commit().unwrap();
    engine.quiesce();

    // Early-acked writes from *different* coordinators (so neither is drained
    // by a later `begin` on the same engine): both commits are acknowledged,
    // but their COMMIT-PRIMARY installs are still pending at the victim.
    let coordinators = [NodeId(0), NodeId(2)];
    for (i, &addr) in addrs.iter().enumerate() {
        let node = engine.node(coordinators[i]);
        let mut tx = node.begin();
        tx.write(addr, (7_000 + i as u64).to_le_bytes().to_vec())
            .unwrap();
        tx.commit().unwrap();
        assert_eq!(node.pending_installs(), 1, "install must still be queued");
    }

    // Prime the lease state, kill the victim, let the lease expire, and run
    // the control round that suspects it and reconfigures.
    engine.cluster().control_round();
    engine.cluster().kill(victim);
    std::thread::sleep(Duration::from_millis(3));
    engine.cluster().control_round();

    let events = engine.cluster().events().snapshot();
    for &region in &regions {
        let promoted = events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RegionPromoted { region: r, .. } if r == region));
        assert!(promoted, "region {region:?} was never promoted");
        let primary = engine.cluster().primary_of(region).unwrap();
        assert_ne!(primary, victim, "region {region:?} still on the dead node");
        assert!(engine.cluster().node(primary).is_alive());
    }

    // The promoted primaries replayed the redo logs: both acked writes are
    // readable, from a node that was neither coordinator.
    let reader = engine.node(NodeId(3));
    let mut tx = reader.begin();
    for (i, &addr) in addrs.iter().enumerate() {
        assert_eq!(
            balance(&tx.read(addr).expect("read after promotion")),
            7_000 + i as u64,
            "acked write to {addr:?} lost in promotion"
        );
    }
    drop(tx);
    engine.shutdown();
    engine.cluster().shutdown();
}

/// Regression for the kill / liveness divergence: `Cluster::kill` must flip
/// the fault plane and the node handle atomically — no observer may ever see
/// `is_killed` without `!is_alive` — while commits race the kill.
#[test]
fn commit_racing_kill_keeps_liveness_atomic() {
    let engine = Engine::start_cluster(
        ClusterConfig::test(3),
        EngineConfig {
            gc_interval: Duration::from_secs(3600),
            ..EngineConfig::default()
        },
    );
    let victim = NodeId(1);
    let region = engine.cluster().primaries_on(victim)[0];
    let committer_node = engine.node(NodeId(0));
    let mut setup = committer_node.begin();
    let addr = setup.alloc_in(region, 0u64.to_le_bytes().to_vec()).unwrap();
    setup.commit().unwrap();
    engine.quiesce();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // The invariant observer: races every commit and the kill itself.
        let observer = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    for handle in engine.cluster().nodes() {
                        let killed = engine.cluster().faults().is_killed(handle.id());
                        let alive = handle.is_alive();
                        assert!(
                            !(killed && alive),
                            "{:?} observed killed-but-alive",
                            handle.id()
                        );
                    }
                }
            })
        };
        // The committer: hammers writes at the victim's region; every commit
        // must either succeed or abort cleanly, never wedge or panic.
        let committer = {
            let node = Arc::clone(&committer_node);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                let mut committed = 0u64;
                while !stop.load(Ordering::Acquire) {
                    i += 1;
                    let mut tx = node.begin();
                    if tx.overwrite(addr, i.to_le_bytes().to_vec()).is_err() {
                        continue;
                    }
                    match tx.commit() {
                        Ok(_) => committed += 1,
                        Err(TxError::Aborted(_)) => {}
                        Err(e) => panic!("commit racing kill returned {e:?}"),
                    }
                }
                committed
            })
        };
        std::thread::sleep(Duration::from_millis(2));
        engine.cluster().kill(victim);
        std::thread::sleep(Duration::from_millis(2));
        stop.store(true, Ordering::Release);
        let committed = committer.join().expect("committer panicked");
        observer.join().expect("liveness invariant violated");
        assert!(committed > 0, "no commit ever succeeded before the kill");
    });
    assert!(!engine.cluster().node(victim).is_alive());
    engine.shutdown();
    engine.cluster().shutdown();
}
