//! Behavioural tests of the FaRMv2 transaction engine: snapshot reads,
//! opacity, conflicts, multi-versioning and the baseline comparison engine.

use std::sync::Arc;

use farm_core::{
    AbortReason, Engine, EngineConfig, EngineMode, MvPolicy, NodeId, TxError, TxOptions,
};
use farm_kernel::ClusterConfig;

fn engine(config: EngineConfig) -> Arc<Engine> {
    Engine::start_cluster(ClusterConfig::test(3), config)
}

#[test]
fn alloc_read_write_roundtrip() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut tx = node.begin();
    let addr = tx.alloc(b"hello".as_slice()).unwrap();
    let info = tx.commit().unwrap();
    assert!(info.write_ts.is_some());

    let mut tx = node.begin();
    assert_eq!(&tx.read(addr).unwrap()[..], b"hello");
    tx.write(addr, b"world".as_slice()).unwrap();
    tx.commit().unwrap();

    let mut tx = node.begin();
    assert_eq!(&tx.read(addr).unwrap()[..], b"world");
    // Read-only commit is a no-op and must succeed.
    let info = tx.commit().unwrap();
    assert!(info.write_ts.is_none());
    engine.shutdown();
}

#[test]
fn reads_from_any_node_see_committed_data() {
    let engine = engine(EngineConfig::default());
    let writer = engine.node(NodeId(0));
    let mut tx = writer.begin();
    let addr = tx.alloc(vec![42u8; 16]).unwrap();
    tx.commit().unwrap();
    for i in 0..3 {
        let node = engine.node(NodeId(i));
        let mut tx = node.begin();
        assert_eq!(tx.read(addr).unwrap()[0], 42, "node {i} read wrong value");
        tx.commit().unwrap();
    }
    engine.shutdown();
}

#[test]
fn own_writes_are_visible_before_commit() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![1u8]).unwrap();
    setup.commit().unwrap();

    let mut tx = node.begin();
    tx.write(addr, vec![9u8]).unwrap();
    assert_eq!(
        tx.read(addr).unwrap()[0],
        9,
        "transaction must see its own write"
    );
    // But other transactions must not see it until commit (writes are
    // buffered, Section 3.1).
    let mut other = node.begin();
    assert_eq!(other.read(addr).unwrap()[0], 1);
    other.commit().unwrap();
    tx.commit().unwrap();
    engine.shutdown();
}

#[test]
fn write_write_conflict_aborts_one_transaction() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();

    let mut t1 = node.begin();
    let mut t2 = node.begin();
    t1.write(addr, vec![1u8]).unwrap();
    t2.write(addr, vec![2u8]).unwrap();
    let r1 = t1.commit();
    let r2 = t2.commit();
    // Exactly one must have succeeded: the second to lock/validate fails.
    assert!(
        r1.is_ok() ^ r2.is_ok(),
        "exactly one of two conflicting writers must commit: {r1:?} {r2:?}"
    );
    let stats = engine.aggregate_stats();
    assert_eq!(stats.commits_rw, 2); // setup + surviving writer
    assert!(stats.aborts() >= 1);
    engine.shutdown();
}

#[test]
fn read_validation_catches_concurrent_writer() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let a = setup.alloc(vec![0u8]).unwrap();
    let b = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();

    // T reads a, then a concurrent transaction updates a, then T writes b.
    let mut t = node.begin();
    assert_eq!(t.read(a).unwrap()[0], 0);
    let mut w = node.begin();
    w.write(a, vec![7u8]).unwrap();
    w.commit().unwrap();
    t.write(b, vec![1u8]).unwrap();
    let err = t.commit().unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::ValidationFailed(_))),
        "{err:?}"
    );
    engine.shutdown();
}

#[test]
fn snapshot_isolation_skips_validation_but_catches_write_conflicts() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let a = setup.alloc(vec![0u8]).unwrap();
    let b = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();

    // Same pattern as above, but under SI the read of `a` is not validated,
    // so the transaction commits (write skew is allowed by SI).
    let mut t = node.begin_with(TxOptions::snapshot_isolation());
    assert_eq!(t.read(a).unwrap()[0], 0);
    let mut w = node.begin();
    w.write(a, vec![7u8]).unwrap();
    w.commit().unwrap();
    t.write(b, vec![1u8]).unwrap();
    t.commit()
        .expect("SI transaction without write conflicts must commit");

    // Write-write conflicts still abort under SI (first locker wins).
    let mut t1 = node.begin_with(TxOptions::snapshot_isolation());
    let mut t2 = node.begin_with(TxOptions::snapshot_isolation());
    t1.write(a, vec![1u8]).unwrap();
    t2.write(a, vec![2u8]).unwrap();
    let r1 = t1.commit();
    let r2 = t2.commit();
    assert!(r1.is_ok() ^ r2.is_ok());
    engine.shutdown();
}

#[test]
fn opacity_snapshot_reads_are_consistent_even_for_doomed_transactions() {
    // Two objects with the invariant x + y == 100. A reader that starts
    // before an update must see a consistent pair even if it will abort.
    let engine = engine(EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let x = setup.alloc(vec![60u8]).unwrap();
    let y = setup.alloc(vec![40u8]).unwrap();
    setup.commit().unwrap();

    for round in 0..20 {
        let mut reader = engine.node(NodeId(1)).begin();
        let vx = reader.read(x).unwrap()[0];
        // A concurrent writer moves 10 from x to y between the two reads.
        let mut writer = node.begin();
        let cur_x = writer.read(x).unwrap()[0];
        let cur_y = writer.read(y).unwrap()[0];
        writer.write(x, vec![cur_x - 1]).unwrap();
        writer.write(y, vec![cur_y + 1]).unwrap();
        writer.commit().unwrap();
        // The reader still sees the snapshot from before the write: the
        // invariant must hold for the values it observes, whatever happens
        // at commit time.
        let vy = reader.read(y).unwrap()[0];
        assert_eq!(
            vx as u32 + vy as u32,
            100,
            "opacity violated in round {round}"
        );
        let _ = reader.commit();
    }
    engine.shutdown();
}

#[test]
fn single_version_mode_aborts_readers_that_need_old_versions() {
    let engine = engine(EngineConfig::default()); // single-version FaRMv2
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![1u8]).unwrap();
    setup.commit().unwrap();

    let mut reader = node.begin();
    // Reader takes its snapshot now...
    let mut writer = node.begin();
    writer.write(addr, vec![2u8]).unwrap();
    writer.commit().unwrap();
    // ...and then tries to read the object, whose head version is now newer
    // than the snapshot. Without old versions this aborts.
    let err = reader.read(addr).unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::OldVersionUnavailable(_))),
        "{err:?}"
    );
    engine.shutdown();
}

#[test]
fn multi_version_mode_serves_readers_from_old_versions() {
    let engine = engine(EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![1u8]).unwrap();
    setup.commit().unwrap();

    let mut reader = node.begin();
    let mut writer = node.begin();
    writer.write(addr, vec![2u8]).unwrap();
    writer.commit().unwrap();
    // The reader's snapshot predates the write; multi-versioning serves the
    // old value instead of aborting.
    assert_eq!(reader.read(addr).unwrap()[0], 1);
    reader.commit().unwrap();

    let stats = engine.aggregate_stats();
    assert!(stats.old_versions_allocated >= 1);
    assert!(stats.old_version_reads >= 1);
    engine.shutdown();
}

#[test]
fn eager_validation_aborts_writers_reading_old_versions() {
    let engine = engine(EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![1u8]).unwrap();
    setup.commit().unwrap();

    let mut rw = node.begin_with(TxOptions {
        write_hint: true,
        ..TxOptions::serializable()
    });
    let mut writer = node.begin();
    writer.write(addr, vec![2u8]).unwrap();
    writer.commit().unwrap();
    // The hinted read-write transaction would fail validation anyway, so the
    // read aborts eagerly instead of returning the old version.
    let err = rw.read(addr).unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::EagerValidation(_))),
        "{err:?}"
    );
    engine.shutdown();
}

#[test]
fn free_makes_object_unreadable_and_reusable() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![5u8]).unwrap();
    setup.commit().unwrap();

    let mut tx = node.begin();
    tx.free(addr).unwrap();
    tx.commit().unwrap();

    let mut reader = node.begin();
    let err = reader.read(addr).unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::BadAddress(_))),
        "{err:?}"
    );
    engine.shutdown();
}

#[test]
fn explicit_abort_discards_writes_and_allocations() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![1u8]).unwrap();
    setup.commit().unwrap();

    let mut tx = node.begin();
    tx.write(addr, vec![9u8]).unwrap();
    let _fresh = tx.alloc(vec![0u8]).unwrap();
    let _ = tx.abort();

    let mut check = node.begin();
    assert_eq!(
        check.read(addr).unwrap()[0],
        1,
        "aborted write must not be visible"
    );
    check.commit().unwrap();
    engine.shutdown();
}

#[test]
fn baseline_engine_commits_and_validates_reads() {
    let engine = engine(EngineConfig::baseline());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let a = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();

    // Plain read-modify-write works.
    let mut tx = node.begin();
    let v = tx.read(a).unwrap()[0];
    tx.write(a, vec![v + 1]).unwrap();
    tx.commit().unwrap();

    // A read-only transaction whose read set changed underneath it aborts
    // (FaRMv1 must validate read-only transactions; FaRMv2 does not).
    let mut ro = node.begin();
    let _ = ro.read(a).unwrap();
    let mut w = node.begin();
    let v = w.read(a).unwrap()[0];
    w.write(a, vec![v + 1]).unwrap();
    w.commit().unwrap();
    let err = ro.commit().unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::ValidationFailed(_))),
        "{err:?}"
    );
    engine.shutdown();
}

#[test]
fn baseline_does_not_provide_opacity() {
    // The same x + y == 100 scenario as the opacity test: the baseline reader
    // can observe an inconsistent pair (which is exactly the anomaly FaRMv2
    // removes). We only assert that the baseline *commits or aborts without
    // crashing* and that at least one inconsistent snapshot is observable
    // across many attempts (demonstrating the lack of read snapshots).
    let engine = engine(EngineConfig::baseline());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let x = setup.alloc(vec![100u8]).unwrap();
    let y = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();

    let mut saw_inconsistent = false;
    for _ in 0..200 {
        let mut reader = engine.node(NodeId(1)).begin();
        let vx = reader.read(x).unwrap()[0];
        let mut writer = node.begin();
        let cur_x = writer.read(x).unwrap()[0];
        let cur_y = writer.read(y).unwrap()[0];
        if cur_x == 0 {
            break;
        }
        writer.write(x, vec![cur_x - 1]).unwrap();
        writer.write(y, vec![cur_y + 1]).unwrap();
        writer.commit().unwrap();
        let vy = reader.read(y).unwrap()[0];
        if vx as u32 + vy as u32 != 100 {
            saw_inconsistent = true;
        }
        let _ = reader.commit(); // validation will (correctly) abort it
    }
    assert!(
        saw_inconsistent,
        "baseline reads both objects after the concurrent commit, so an inconsistent pair must appear"
    );
    engine.shutdown();
}

#[test]
fn mv_abort_policy_aborts_writers_when_old_version_memory_is_full() {
    let mut cluster_cfg = ClusterConfig::test(3);
    // Tiny old-version budget: a handful of versions exhaust it.
    cluster_cfg.old_version_block_bytes = 512;
    cluster_cfg.old_version_max_bytes = 1024;
    let engine = Engine::start_cluster(
        cluster_cfg,
        EngineConfig {
            mode: EngineMode::farmv2_multi_version(MvPolicy::Abort),
            ..EngineConfig::default()
        },
    );
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![0u8; 64]).unwrap();
    setup.commit().unwrap();
    // Pin the GC safe point by keeping an old transaction open so memory
    // cannot be reclaimed.
    let _pin = node.begin();
    let mut failures = 0;
    for i in 0..64u8 {
        let mut tx = node.begin();
        if tx.write(addr, vec![i; 64]).is_err() {
            failures += 1;
            continue;
        }
        if tx.commit().is_err() {
            failures += 1;
        }
    }
    assert!(
        failures > 0,
        "old-version memory exhaustion must abort some writers"
    );
    assert!(engine.aggregate_stats().aborts_oldver_memory > 0);
    engine.shutdown();
}

#[test]
fn mv_truncate_policy_keeps_writers_running_and_aborts_readers_instead() {
    let mut cluster_cfg = ClusterConfig::test(3);
    cluster_cfg.old_version_block_bytes = 512;
    cluster_cfg.old_version_max_bytes = 1024;
    let engine = Engine::start_cluster(
        cluster_cfg,
        EngineConfig {
            mode: EngineMode::farmv2_multi_version(MvPolicy::Truncate),
            ..EngineConfig::default()
        },
    );
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![0u8; 64]).unwrap();
    setup.commit().unwrap();
    let _pin = node.begin();
    for i in 0..64u8 {
        let mut tx = node.begin();
        tx.write(addr, vec![i; 64]).unwrap();
        tx.commit()
            .expect("MV-TRUNCATE writers must keep committing");
    }
    assert!(engine.aggregate_stats().oldver_truncations > 0);
    engine.shutdown();
}

#[test]
fn non_strict_transactions_still_serialize_writes() {
    let engine = engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![0u8]).unwrap();
    setup.commit().unwrap();
    for _ in 0..10 {
        let mut tx = node.begin_with(TxOptions::serializable_non_strict());
        let v = tx.read(addr).unwrap()[0];
        tx.write(addr, vec![v + 1]).unwrap();
        tx.commit().unwrap();
    }
    let mut check = node.begin();
    assert_eq!(check.read(addr).unwrap()[0], 10);
    check.commit().unwrap();
    engine.shutdown();
}

#[test]
fn unsafe_skip_write_wait_removes_the_commit_time_wait() {
    // Section 7.3 ablation: the correct protocol waits out the uncertainty
    // while holding write locks; the deliberately-incorrect variant does not.
    // On a non-CM node (which has genuine uncertainty) the correct engine
    // records commit-time waits, the unsafe one records none — which is
    // exactly the property the counterexample exploits (locks may be
    // released while the write timestamp is still in the future).
    let run = |skip: bool| {
        let engine = engine(EngineConfig {
            unsafe_skip_write_wait: skip,
            ..EngineConfig::default()
        });
        let node = engine.node(NodeId(1));
        let mut setup = node.begin();
        let addr = setup.alloc(vec![0u8]).unwrap();
        setup.commit().unwrap();
        for i in 0..50u8 {
            let mut tx = node.begin();
            tx.write(addr, vec![i]).unwrap();
            tx.commit().unwrap();
        }
        let waits = engine.aggregate_stats().write_waits;
        engine.shutdown();
        waits
    };
    let unsafe_waits = run(true);
    let safe_waits = run(false);
    assert_eq!(unsafe_waits, 0, "the ablation must not wait at commit time");
    assert!(
        safe_waits > 0,
        "the correct protocol must wait out uncertainty at commit time"
    );
}

#[test]
fn concurrent_counter_increments_from_all_nodes_are_serializable() {
    let engine = engine(EngineConfig::default());
    let node0 = engine.node(NodeId(0));
    let mut setup = node0.begin();
    let addr = setup.alloc(vec![0u8, 0u8]).unwrap();
    setup.commit().unwrap();

    let per_thread = 30u16;
    let threads: Vec<_> = (0..3u32)
        .map(|n| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(n));
                let mut committed = 0u16;
                while committed < per_thread {
                    let mut tx = node.begin();
                    let cur = match tx.read(addr) {
                        Ok(b) => u16::from_le_bytes([b[0], b[1]]),
                        Err(_) => continue,
                    };
                    if tx.write(addr, (cur + 1).to_le_bytes().to_vec()).is_err() {
                        continue;
                    }
                    if tx.commit().is_ok() {
                        committed += 1;
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut check = node0.begin();
    let b = check.read(addr).unwrap();
    assert_eq!(u16::from_le_bytes([b[0], b[1]]), 3 * per_thread);
    check.commit().unwrap();
    engine.shutdown();
}
