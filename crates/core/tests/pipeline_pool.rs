//! Reactor and pipeline-pool lifecycle tests: the deadline-heap reactor's
//! edge cases (drop with in-flight commits, depth backpressure, non-blocking
//! poll, intra-pipeline conflicts) and the multi-worker pool (disjoint
//! commits across workers, submit-ring backpressure, deterministic drain on
//! shutdown).

use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_core::{Engine, EngineConfig, NodeId, PoolConfig, TxError};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, RegionId};
use farm_net::LatencyModel;

/// A latency model scaled well above debug-build CPU costs, spinning (not
/// sleeping) so OS scheduling slack cannot blur timing-sensitive assertions.
fn spin_model() -> LatencyModel {
    LatencyModel {
        rdma_read_ns: 25_000,
        rdma_write_ns: 30_000,
        rpc_ns: 70_000,
        spin_threshold_ns: 300_000,
    }
}

/// A model with latencies far above any assertion margin (tens of ms,
/// slept): a call that returns in a few ms provably did not block on a
/// flight deadline.
fn huge_model() -> LatencyModel {
    LatencyModel {
        rdma_read_ns: 5_000_000,
        rdma_write_ns: 10_000_000,
        rpc_ns: 20_000_000,
        spin_threshold_ns: 20_000,
    }
}

fn engine_with(latency: LatencyModel) -> Arc<Engine> {
    let config = EngineConfig {
        latency,
        gc_interval: Duration::from_secs(3600),
        ..EngineConfig::default()
    };
    Engine::start_cluster(ClusterConfig::test(3), config)
}

fn remote_region(engine: &Arc<Engine>, coordinator: NodeId) -> RegionId {
    engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| engine.cluster().primary_of(r) != Some(coordinator))
        .expect("multi-node cluster has a remote region")
}

fn alloc_pool(engine: &Arc<Engine>, node: NodeId, count: usize) -> Vec<Addr> {
    let coordinator = engine.node(node);
    let region = remote_region(engine, node);
    let mut setup = coordinator.begin();
    let addrs = (0..count)
        .map(|_| setup.alloc_in(region, vec![0u8; 16]).unwrap())
        .collect();
    setup.commit().unwrap();
    coordinator.drain_pending_installs();
    addrs
}

fn assert_unlocked_with(engine: &Arc<Engine>, addrs: &[Addr], value: u8) {
    let node = engine.node(NodeId(0));
    let mut check = node.begin();
    for &addr in addrs {
        assert_eq!(
            check.read(addr).unwrap()[0],
            value,
            "commit did not land (or left its primary lock held) at {addr:?}"
        );
    }
}

/// Dropping a pipeline with commits still in flight completes them: their
/// drivers hold primary locks, and the `Drop` drain releases every one —
/// later readers see the committed values, not a wedged lock.
#[test]
fn dropping_a_pipeline_completes_in_flight_commits() {
    let engine = engine_with(spin_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 8);

    let mut pipeline = node.pipeline(8);
    for &addr in &addrs {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![3u8; 16]).unwrap();
        pipeline.submit(tx);
    }
    assert!(
        pipeline.in_flight() > 0,
        "commits should still be in flight"
    );
    drop(pipeline);

    engine.quiesce();
    assert_unlocked_with(&engine, &addrs, 3);
    engine.shutdown();
}

/// `submit` past depth blocks until a slot frees: the in-flight count never
/// exceeds the configured depth, and the full submits collectively absorb
/// the flights' wait time (any single full submit may return quickly when
/// the flight it pumps has already expired, but the protocol's spin waits
/// have to be paid somewhere, and with the test thread doing nothing else
/// that somewhere is inside `submit`).
#[test]
fn submit_past_depth_blocks_until_a_slot_frees() {
    let engine = engine_with(spin_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 6);

    let mut pipeline = node.pipeline(2);
    let mut over_depth_submits = 0u32;
    let mut full_submit_time = Duration::ZERO;
    for &addr in &addrs {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![4u8; 16]).unwrap();
        let was_full = pipeline.in_flight() == 2;
        let start = Instant::now();
        pipeline.submit(tx);
        if was_full {
            over_depth_submits += 1;
            full_submit_time += start.elapsed();
        }
        assert!(pipeline.in_flight() <= 2, "depth bound violated");
    }
    assert!(over_depth_submits > 0, "test never filled the pipeline");
    assert!(
        full_submit_time >= Duration::from_micros(50),
        "submits into a full pipeline must wait out flight deadlines \
         (4 evicting submits over >=95us-critical-path commits spent only \
         {full_submit_time:?} blocked)"
    );
    let results = pipeline.drain();
    assert!(results.iter().all(|r| r.is_ok()));
    engine.shutdown();
}

/// `poll` makes progress without blocking: with flight times of tens of
/// milliseconds, each poll returns in a fraction of one flight — it never
/// sleeps to a deadline — yet repeated polling alone completes the commits.
#[test]
fn poll_makes_progress_without_blocking() {
    let engine = engine_with(huge_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 2);

    let mut pipeline = node.pipeline(2);
    for &addr in &addrs {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![5u8; 16]).unwrap();
        pipeline.submit(tx);
    }
    let mut results = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    while results.len() < 2 {
        assert!(
            Instant::now() < deadline,
            "poll never completed the commits"
        );
        let start = Instant::now();
        pipeline.poll();
        assert!(
            start.elapsed() < Duration::from_millis(4),
            "poll blocked on a flight deadline (flights are >= 5 ms here)"
        );
        results.extend(pipeline.take());
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(results.iter().all(|r| r.is_ok()));
    engine.shutdown();
}

/// Two pipelined transactions writing the same object are genuinely
/// concurrent committers: the later one aborts on the lock conflict with a
/// clean `TxError` — no deadlock, no wedged locks, and a retry commits.
#[test]
fn intra_pipeline_write_conflict_aborts_cleanly() {
    let engine = engine_with(spin_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 1);
    let addr = addrs[0];

    let mut pipeline = node.pipeline(2);
    for value in [6u8, 7u8] {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![value; 16]).unwrap();
        pipeline.submit(tx);
    }
    let results = pipeline.drain();
    assert_eq!(results.len(), 2);
    let oks = results.iter().filter(|r| r.is_ok()).count();
    let aborts = results
        .iter()
        .filter(|r| matches!(r, Err(TxError::Aborted(_))))
        .count();
    assert_eq!(
        (oks, aborts),
        (1, 1),
        "exactly one writer wins, the other aborts: {results:?}"
    );

    let mut retry = node.begin();
    retry.overwrite(addr, vec![8u8; 16]).unwrap();
    retry.commit().unwrap();
    engine.quiesce();
    assert_unlocked_with(&engine, &addrs, 8);
    engine.shutdown();
}

/// A pool spreads disjoint commits across its workers and completes them
/// all; the merged cycle accounting shows both issue work and flight waits.
#[test]
fn pool_commits_disjoint_transactions_across_workers() {
    let engine = engine_with(spin_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 24);

    let pool = node.pipeline_pool(PoolConfig::new(2, 4));
    for &addr in &addrs {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![9u8; 16]).unwrap();
        pool.submit(tx);
    }
    let results = pool.drain();
    assert_eq!(results.len(), 24);
    for r in &results {
        r.as_ref().expect("disjoint pooled commits all succeed");
    }
    let stats = pool.stats();
    assert_eq!(stats.completed, 24);
    assert!(stats.timings.issue_ns > 0, "no issue work recorded");
    assert!(stats.timings.wait_ns > 0, "no deadline waits recorded");
    assert!(stats.timings.serial_fraction() < 1.0);

    engine.quiesce();
    assert_unlocked_with(&engine, &addrs, 9);
    engine.shutdown();
}

/// The submit ring is bounded: while the single depth-1 worker is deep in a
/// multi-ms flight, the ring fills and `try_submit` refuses instead of
/// growing without bound; blocking `submit` had to wait for that same
/// backpressure earlier in the test (it completed regardless).
#[test]
fn submit_ring_overflow_applies_backpressure() {
    let engine = engine_with(huge_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 4);

    let pool = node.pipeline_pool(PoolConfig {
        workers: 1,
        depth: 1,
        ring_capacity: 2,
    });
    // One for the worker (it pops and enters a tens-of-ms flight) and two
    // to fill the ring behind it.
    for &addr in &addrs[..3] {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![1u8; 16]).unwrap();
        pool.submit(tx);
    }
    let mut refused = node.begin();
    refused.overwrite(addrs[3], vec![1u8; 16]).unwrap();
    match pool.try_submit(refused) {
        Err(tx) => drop(tx), // returned un-submitted; dropping holds no locks
        Ok(()) => panic!("try_submit into a full ring must refuse"),
    }
    let results = pool.drain();
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(|r| r.is_ok()));
    engine.shutdown();
}

/// `shutdown` is a deterministic drain: every accepted transaction
/// completes (no primary lock leaks), results stay retrievable afterwards,
/// and a second shutdown is a no-op.
#[test]
fn shutdown_drains_deterministically() {
    let engine = engine_with(spin_model());
    let node = engine.node(NodeId(0));
    let addrs = alloc_pool(&engine, NodeId(0), 10);

    let mut pool = node.pipeline_pool(PoolConfig::new(2, 2));
    for &addr in &addrs {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![2u8; 16]).unwrap();
        pool.submit(tx);
    }
    pool.shutdown();
    assert_eq!(pool.pending(), 0, "shutdown left accepted work unfinished");
    let results = pool.take();
    assert_eq!(results.len(), 10);
    assert!(results.iter().all(|r| r.is_ok()));
    pool.shutdown(); // idempotent

    engine.quiesce();
    assert_unlocked_with(&engine, &addrs, 2);
    engine.shutdown();
}
