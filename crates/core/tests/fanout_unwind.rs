//! Fan-out unwind tests: when one destination of a concurrently dispatched
//! LOCK fan-out fails, the in-flight sibling destinations are drained first
//! and **every** acquired lock is released — in descending global address
//! order — leaving no tombstoned old versions and no leaked slot locks,
//! whatever order the destinations completed in and wherever the failure
//! was injected.

use std::sync::Arc;

use farm_core::{AbortReason, Engine, EngineConfig, NodeId, TxError};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, LockOutcome, RegionId};
use farm_net::DispatchMode;
use proptest::prelude::*;

/// All dispatch modes a driver can run in; every invariant must hold in
/// each of them.
const MODES: [DispatchMode; 3] = [
    DispatchMode::Serial,
    DispatchMode::Concurrent,
    DispatchMode::ConcurrentThreads,
];

fn engine_with(dispatch: DispatchMode, config: EngineConfig) -> Arc<Engine> {
    let config = EngineConfig { dispatch, ..config };
    Engine::start_cluster(ClusterConfig::test(3), config)
}

/// Allocates one object per cluster region (so a transaction writing all of
/// them fans out to every primary), committing the setup.
fn one_object_per_region(engine: &Arc<Engine>) -> Vec<Addr> {
    let node = engine.node(NodeId(0));
    let mut tx = node.begin();
    let addrs: Vec<Addr> = engine
        .cluster()
        .regions()
        .into_iter()
        .map(|r| tx.alloc_in(r, vec![1u8; 16]).unwrap())
        .collect();
    tx.commit().unwrap();
    addrs
}

/// Asserts that no slot of `addrs` is left locked and no region holds
/// pending tombstones: the post-unwind quiescent state.
fn assert_clean(engine: &Arc<Engine>, addrs: &[Addr]) {
    for &addr in addrs {
        let primary = engine.cluster().primary_of(addr.region).unwrap();
        let region = engine.cluster().node(primary).regions().ensure(addr.region);
        let slot = region.slot(addr).unwrap();
        let h = slot.header_snapshot();
        assert!(!h.locked, "slot {addr:?} left locked after unwind");
        assert_eq!(
            region.pending_tombstones(),
            0,
            "unwound commit left tombstones in {:?}",
            addr.region
        );
    }
}

#[test]
fn lock_conflict_on_one_destination_releases_every_destination() {
    for mode in MODES {
        let engine = engine_with(mode, EngineConfig::default());
        let addrs = one_object_per_region(&engine);
        assert!(addrs.len() >= 3, "need a multi-primary write set");

        // Buffer writes to every destination first (the execution-phase
        // reads happen here, on unlocked slots) ...
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        for &a in &addrs {
            tx.write(a, vec![9u8; 16]).unwrap();
        }
        // ... then hold a commit-style lock on the *last* destination's
        // object, as a concurrent committer would while its own fan-out is
        // in flight.
        let victim = *addrs.last().unwrap();
        let victim_primary = engine.cluster().primary_of(victim.region).unwrap();
        let victim_slot = engine
            .cluster()
            .node(victim_primary)
            .regions()
            .ensure(victim.region)
            .slot(victim)
            .unwrap();
        let head_ts = victim_slot.header_snapshot().ts;
        assert_eq!(victim_slot.try_lock_at(head_ts), LockOutcome::Acquired);

        // The fan-out must abort on the victim — after draining the sibling
        // destinations that locked successfully.
        let err = tx.commit().unwrap_err();
        assert!(
            matches!(err, TxError::Aborted(AbortReason::LockConflict(a)) if a == victim),
            "unexpected abort: {err:?} (mode {mode:?})"
        );

        victim_slot.unlock();
        assert_clean(&engine, &addrs);

        // Every lock the unwound fan-out acquired must be free again: a
        // retry writing the full set commits.
        let mut tx = node.begin();
        for &a in &addrs {
            tx.write(a, vec![8u8; 16]).unwrap();
        }
        tx.commit()
            .unwrap_or_else(|e| panic!("retry after unwind failed under {mode:?}: {e:?}"));
        engine.shutdown();
        engine.cluster().shutdown();
    }
}

#[test]
fn multi_version_unwind_leaves_no_tombstones_or_linked_old_versions() {
    for mode in MODES {
        let engine = engine_with(mode, EngineConfig::multi_version());
        let addrs = one_object_per_region(&engine);
        let victim = addrs[1]; // fail a middle destination
                               // The failed fan-out copies old versions at the destinations that
                               // lock successfully; those copies are never linked, so reads must
                               // still see the original value and no tombstone may appear. Buffer
                               // the intents first (execution-phase reads run on unlocked slots),
                               // then inject the conflict.
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        // Mix frees and updates: a free that unwinds must tombstone nothing.
        tx.write(addrs[0], vec![5u8; 16]).unwrap();
        tx.free(addrs[2]).unwrap();
        tx.write(victim, vec![5u8; 16]).unwrap();
        let victim_primary = engine.cluster().primary_of(victim.region).unwrap();
        let victim_slot = engine
            .cluster()
            .node(victim_primary)
            .regions()
            .ensure(victim.region)
            .slot(victim)
            .unwrap();
        let head_ts = victim_slot.header_snapshot().ts;
        assert_eq!(victim_slot.try_lock_at(head_ts), LockOutcome::Acquired);
        let err = tx.commit().unwrap_err();
        assert!(
            matches!(err, TxError::Aborted(AbortReason::LockConflict(a)) if a == victim),
            "unexpected abort: {err:?} (mode {mode:?})"
        );
        victim_slot.unlock();
        assert_clean(&engine, &addrs);

        // All three objects still hold their original payloads.
        let mut tx = node.begin();
        for &a in &addrs {
            assert_eq!(tx.read(a).unwrap().as_ref(), &[1u8; 16]);
        }
        tx.commit().unwrap();
        engine.shutdown();
        engine.cluster().shutdown();
    }
}

#[test]
fn killed_destination_mid_run_aborts_without_leaking_sibling_locks() {
    // FaultPlane injection against the in-flight alive check: committers
    // hammer multi-primary transactions while a primary is killed under
    // them. Every abort — whether it fired in planning or inside a LOCK
    // verb closure with sibling destinations in flight — must leave the
    // surviving destinations' locks released.
    for mode in [DispatchMode::Concurrent, DispatchMode::ConcurrentThreads] {
        let engine = engine_with(mode, EngineConfig::default());
        let addrs = one_object_per_region(&engine);
        let doomed: NodeId = engine.cluster().primary_of(addrs[2].region).unwrap();

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let engine2 = Arc::clone(&engine);
        let addrs2 = addrs.clone();
        let stop2 = Arc::clone(&stop);
        let coordinator = engine
            .cluster()
            .regions()
            .into_iter()
            .map(|r| engine.cluster().primary_of(r).unwrap())
            .find(|&p| p != doomed)
            .unwrap();
        let writer = std::thread::spawn(move || {
            let node = engine2.node(coordinator);
            let mut committed = 0u64;
            let mut aborted = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                let mut tx = node.begin();
                let outcome = (|| {
                    for &a in &addrs2 {
                        tx.write(a, vec![3u8; 16])?;
                    }
                    tx.commit().map(|_| ())
                })();
                match outcome {
                    Ok(()) => committed += 1,
                    Err(_) => aborted += 1,
                }
            }
            (committed, aborted)
        });
        // Let some commits succeed, then kill the third primary under the
        // running fan-outs.
        std::thread::sleep(std::time::Duration::from_millis(20));
        engine.cluster().kill(doomed);
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let (committed, aborted) = writer.join().unwrap();
        assert!(committed > 0, "no commit succeeded before the kill");
        assert!(aborted > 0, "the kill never aborted a fan-out");

        // The surviving destinations' objects must all be unlocked: a
        // transaction over just those objects commits.
        let survivors: Vec<Addr> = addrs
            .iter()
            .copied()
            .filter(|a| engine.cluster().primary_of(a.region) != Some(doomed))
            .collect();
        assert_clean(&engine, &survivors);
        let node = engine.node(coordinator);
        let mut tx = node.begin();
        for &a in &survivors {
            tx.write(a, vec![4u8; 16]).unwrap();
        }
        tx.commit().unwrap();
        engine.shutdown();
        engine.cluster().shutdown();
    }
}

#[test]
fn serializable_fanout_overlaps_uncertainty_wait_with_replication() {
    // Under pipelined dispatch the strict write-timestamp wait happens while
    // COMMIT-BACKUP is in flight: the overlapped-wait counter tracks the
    // wait counter. Under serial dispatch nothing overlaps.
    let concurrent = engine_with(DispatchMode::Concurrent, EngineConfig::default());
    let serial = engine_with(DispatchMode::Serial, EngineConfig::default());
    for (engine, expect_overlap) in [(&concurrent, true), (&serial, false)] {
        // Coordinator 1 runs on a slave clock, so strict timestamps carry
        // real uncertainty waits.
        let addrs = one_object_per_region(engine);
        let node = engine.node(NodeId(1));
        for round in 0..64u8 {
            let mut tx = node.begin();
            for &a in &addrs {
                tx.write(a, vec![round; 16]).unwrap();
            }
            tx.commit().unwrap();
        }
        let stats = engine.aggregate_stats();
        if expect_overlap {
            assert!(
                stats.write_waits == 0 || stats.write_wait_overlapped_ns > 0,
                "pipelined dispatch never overlapped its waits: {stats:?}"
            );
            assert!(stats.write_wait_overlapped_ns <= stats.write_wait_ns);
        } else {
            assert_eq!(
                stats.write_wait_overlapped_ns, 0,
                "serial dispatch cannot overlap"
            );
        }
    }
    concurrent.shutdown();
    concurrent.cluster().shutdown();
    serial.shutdown();
    serial.cluster().shutdown();
}

/// The destination-ordering / failure-injection sweep: whatever subset of
/// regions a transaction writes, in whatever order the writes were issued,
/// and whichever destination is made to fail, the unwind releases every
/// acquired lock and leaves no tombstones.
fn unwind_case(
    engine: &Arc<Engine>,
    addrs: &[Addr],
    picks: &[usize],
    victim_pick: usize,
) -> Result<(), TestCaseError> {
    let node = engine.node(NodeId(0));
    // Dedup picks preserving issue order.
    let mut chosen: Vec<Addr> = Vec::new();
    for &p in picks {
        let a = addrs[p % addrs.len()];
        if !chosen.contains(&a) {
            chosen.push(a);
        }
    }
    let victim = chosen[victim_pick % chosen.len()];
    // Buffer the writes first (reads run on unlocked slots), then inject
    // the conflict at the chosen destination.
    let mut tx = node.begin();
    for &a in &chosen {
        tx.write(a, vec![0xAB; 16]).unwrap();
    }
    let victim_primary = engine.cluster().primary_of(victim.region).unwrap();
    let victim_slot = engine
        .cluster()
        .node(victim_primary)
        .regions()
        .ensure(victim.region)
        .slot(victim)
        .unwrap();
    let head_ts = victim_slot.header_snapshot().ts;
    prop_assert_eq!(victim_slot.try_lock_at(head_ts), LockOutcome::Acquired);
    let err = tx.commit().unwrap_err();
    prop_assert!(
        matches!(err, TxError::Aborted(AbortReason::LockConflict(a)) if a == victim),
        "unexpected abort {:?}",
        err
    );
    victim_slot.unlock();

    // Post-unwind: every chosen slot unlocked, no tombstones anywhere, and
    // the full set commits on retry.
    for &a in &chosen {
        let primary = engine.cluster().primary_of(a.region).unwrap();
        let region = engine.cluster().node(primary).regions().ensure(a.region);
        prop_assert!(!region.slot(a).unwrap().header_snapshot().locked);
        prop_assert_eq!(region.pending_tombstones(), 0);
    }
    let mut tx = node.begin();
    for &a in &chosen {
        tx.write(a, vec![0xCD; 16]).unwrap();
    }
    prop_assert!(tx.commit().is_ok());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unwind_invariants_hold_over_orderings_and_failure_sites(
        picks in prop::collection::vec(0usize..16, 1..12),
        victim_pick in 0usize..16,
        threaded in 0usize..2,
    ) {
        let mode = if threaded == 1 {
            DispatchMode::ConcurrentThreads
        } else {
            DispatchMode::Concurrent
        };
        let engine = engine_with(mode, EngineConfig::multi_version());
        // Several objects per region so a destination's batch can carry
        // more than one lock.
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        let mut addrs: Vec<Addr> = Vec::new();
        for r in engine.cluster().regions() {
            for _ in 0..3 {
                addrs.push(tx.alloc_in(r, vec![1u8; 16]).unwrap());
            }
        }
        tx.commit().unwrap();
        let result = unwind_case(&engine, &addrs, &picks, victim_pick);
        engine.shutdown();
        engine.cluster().shutdown();
        result?;
    }
}

/// RegionId is used in signatures above; silence the unused-import lint
/// gracefully if the type alias changes.
#[allow(dead_code)]
fn _region_id_witness(r: RegionId) -> RegionId {
    r
}
