//! Integration tests of the batched commit driver: message counts scale with
//! the number of **destination machines**, not the number of objects; abort
//! paths release every lock across every primary; multi-version frees
//! preserve history; concurrent committers neither deadlock nor lose
//! updates.

use std::sync::Arc;

use farm_core::{AbortReason, Engine, EngineConfig, NodeId, Transaction, TxError};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, LockOutcome, RegionId};
use farm_net::{NetStatsSnapshot, Verb};
use proptest::prelude::*;

fn engine(config: EngineConfig) -> Arc<Engine> {
    Engine::start_cluster(ClusterConfig::test(3), config)
}

/// Allocates `count` objects in the given region, committing the setup.
fn alloc_in_region(engine: &Arc<Engine>, region: RegionId, count: usize) -> Vec<Addr> {
    let node = engine.node(NodeId(0));
    let mut tx = node.begin();
    let addrs = (0..count)
        .map(|_| tx.alloc_in(region, vec![0u8; 32]).unwrap())
        .collect();
    tx.commit().unwrap();
    addrs
}

/// Runs `commit` on a K-object write-set transaction and returns the
/// coordinator's network-stats delta across just the commit call.
fn commit_delta(engine: &Arc<Engine>, coordinator: NodeId, addrs: &[Addr]) -> NetStatsSnapshot {
    let node = engine.node(coordinator);
    let mut tx = node.begin();
    for a in addrs {
        tx.write(*a, vec![7u8; 32]).unwrap();
    }
    let before = node.handle().stats().snapshot();
    tx.commit().unwrap();
    node.handle().stats().snapshot().delta(&before)
}

#[test]
fn k_writes_to_one_primary_issue_one_lock_message() {
    let engine = engine(EngineConfig::default());
    let region = engine.cluster().regions()[0];
    let addrs = alloc_in_region(&engine, region, 8);
    let coordinator = NodeId(0);

    let stats_before = engine.node(coordinator).stats();
    let delta = commit_delta(&engine, coordinator, &addrs);
    let stats = engine.node(coordinator).stats().delta(&stats_before);

    // One LOCK batch carrying all 8 writes — O(1) messages, not O(K).
    assert_eq!(
        stats.lock_batches, 1,
        "one destination primary => one LOCK message"
    );
    assert_eq!(stats.lock_batch_objects, 8);
    assert_eq!(
        stats.primary_batches, 1,
        "one COMMIT-PRIMARY install message"
    );
    assert_eq!(
        delta.count(Verb::Rpc),
        1 + stats.truncate_batches,
        "LOCK + truncations"
    );
    assert_eq!(
        delta.ops(Verb::Rpc),
        8 + stats.truncate_batches,
        "8 lock ops in 1 message"
    );
    // COMMIT-BACKUP and COMMIT-PRIMARY are one RDMA write per destination.
    let backups = engine.cluster().replicas_of(region).len() as u64 - 1;
    assert_eq!(stats.backup_batches, backups);
    assert_eq!(delta.count(Verb::RdmaWrite), backups + 1);
    assert_eq!(delta.ops(Verb::RdmaWrite), (backups + 1) * 8);
    engine.shutdown();
}

#[test]
fn message_count_is_independent_of_write_set_size() {
    let engine = engine(EngineConfig::default());
    let region = engine.cluster().regions()[0];
    let addrs = alloc_in_region(&engine, region, 16);

    let d1 = commit_delta(&engine, NodeId(0), &addrs[..1]);
    let d16 = commit_delta(&engine, NodeId(0), &addrs);

    // Same number of messages whether the transaction writes 1 or 16
    // objects of the same primary...
    assert_eq!(
        d1.total_messages(),
        d16.total_messages(),
        "{d1:?} vs {d16:?}"
    );
    // ...while the logical operation and byte counts grow with K.
    assert!(d16.total_ops() > d1.total_ops());
    assert!(d16.bytes(Verb::Rpc) > d1.bytes(Verb::Rpc));
    engine.shutdown();
}

#[test]
fn writes_spread_over_primaries_issue_one_lock_message_each() {
    let engine = engine(EngineConfig::default());
    let regions = engine.cluster().regions();
    assert!(regions.len() >= 3);
    // Two objects in each of three regions with three distinct primaries.
    let mut addrs = Vec::new();
    let mut primaries = std::collections::HashSet::new();
    for &r in regions.iter().take(3) {
        primaries.insert(engine.cluster().primary_of(r).unwrap());
        addrs.extend(alloc_in_region(&engine, r, 2));
    }
    assert_eq!(primaries.len(), 3, "test cluster must spread primaries");

    let before = engine.node(NodeId(0)).stats();
    let _ = commit_delta(&engine, NodeId(0), &addrs);
    let stats = engine.node(NodeId(0)).stats().delta(&before);
    assert_eq!(
        stats.lock_batches, 3,
        "one LOCK message per destination primary"
    );
    assert_eq!(stats.lock_batch_objects, 6);
    assert_eq!(stats.primary_batches, 3);
    engine.shutdown();
}

#[test]
fn partial_lock_batch_failure_releases_locks_on_all_primaries() {
    let engine = engine(EngineConfig::default());
    let regions = engine.cluster().regions();
    let a = alloc_in_region(&engine, regions[0], 1)[0];
    let b = alloc_in_region(&engine, regions[1], 1)[0];
    // Global address order: `a` (region 0) locks before `b` (region 1).
    assert!(a < b);

    // Buffer both writes first (the implied reads must see unlocked
    // objects), then let a foreign committer take `b`'s lock before the
    // commit's LOCK phase runs.
    let node = engine.node(NodeId(0));
    let mut tx = node.begin();
    tx.write(a, vec![1u8]).unwrap();
    tx.write(b, vec![2u8]).unwrap();
    let primary_b = engine.cluster().primary_of(b.region).unwrap();
    let slot_b = engine
        .cluster()
        .node(primary_b)
        .regions()
        .get(b.region)
        .unwrap()
        .slot(b)
        .unwrap();
    let ts_b = slot_b.header_snapshot().ts;
    assert_eq!(slot_b.try_lock_at(ts_b), LockOutcome::Acquired);

    // The transaction locks `a` successfully, then fails on `b` — the
    // unwind must release `a` even though it sits on a different primary.
    let err = tx.commit().unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::LockConflict(addr)) if addr == b),
        "{err:?}"
    );

    let primary_a = engine.cluster().primary_of(a.region).unwrap();
    let slot_a = engine
        .cluster()
        .node(primary_a)
        .regions()
        .get(a.region)
        .unwrap()
        .slot(a)
        .unwrap();
    assert!(
        !slot_a.header_snapshot().locked,
        "lock on first primary leaked after unwind"
    );
    // The foreign lock on `b` is untouched.
    assert!(slot_b.header_snapshot().locked);
    slot_b.unlock();

    let stats = engine.node(NodeId(0)).stats();
    assert_eq!(stats.unwinds, 1);
    assert_eq!(stats.aborts_lock, 1);

    // After the unwind, the same transaction succeeds.
    let mut retry = node.begin();
    retry.write(a, vec![1u8]).unwrap();
    retry.write(b, vec![2u8]).unwrap();
    retry.commit().unwrap();
    engine.shutdown();
}

#[test]
fn multi_version_free_preserves_history_for_snapshot_readers() {
    let engine = engine(EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![42u8; 8]).unwrap();
    setup.commit().unwrap();

    // A reader opens its snapshot before the free...
    let mut reader = node.begin();
    // ...then the object is freed.
    let mut freeer = node.begin();
    freeer.free(addr).unwrap();
    freeer.commit().unwrap();
    // The reader still sees the pre-free value from the old-version chain —
    // identical to how an overwrite preserves history.
    assert_eq!(reader.read(addr).unwrap()[0], 42);
    reader.commit().unwrap();

    // A reader whose snapshot postdates the free observes the object as
    // gone.
    let mut late = node.begin();
    let err = late.read(addr).unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::BadAddress(_))),
        "{err:?}"
    );
    engine.shutdown();
}

#[test]
fn tombstoned_slots_are_reclaimed_once_gc_passes() {
    let engine = engine(EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![1u8; 8]).unwrap();
    setup.commit().unwrap();

    let primary = engine.cluster().primary_of(addr.region).unwrap();
    let region = engine
        .cluster()
        .node(primary)
        .regions()
        .get(addr.region)
        .unwrap();
    let (_, free_before) = region.occupancy();

    let mut tx = node.begin();
    tx.free(addr).unwrap();
    tx.commit().unwrap();
    // The commit early-acks at replication; settle the background install
    // (which lays the tombstone down) before inspecting the region.
    node.drain_pending_installs();
    assert_eq!(
        region.pending_tombstones(),
        1,
        "free leaves a tombstone behind"
    );

    // Advance the GC safe point past the free and sweep.
    for _ in 0..4 {
        engine.cluster().control_round();
    }
    engine.collect_garbage_now();
    assert_eq!(
        region.pending_tombstones(),
        0,
        "sweep reclaims the tombstone"
    );
    let (_, free_after) = region.occupancy();
    assert_eq!(
        free_after,
        free_before + 1,
        "slot returned to the allocator"
    );
    engine.shutdown();
}

#[test]
fn free_and_write_batches_share_the_lock_message() {
    let engine = engine(EngineConfig::multi_version());
    let region = engine.cluster().regions()[0];
    let addrs = alloc_in_region(&engine, region, 4);
    let node = engine.node(NodeId(0));

    let before = node.stats();
    let mut tx = node.begin();
    tx.write(addrs[0], vec![9u8; 8]).unwrap();
    tx.write(addrs[1], vec![9u8; 8]).unwrap();
    tx.free(addrs[2]).unwrap();
    tx.free(addrs[3]).unwrap();
    tx.commit().unwrap();
    let stats = node.stats().delta(&before);

    // Updates and frees ride the same per-destination LOCK batch, and the
    // frees made old-version copies exactly like the updates.
    assert_eq!(stats.lock_batches, 1);
    assert_eq!(stats.lock_batch_objects, 4);
    assert_eq!(
        stats.old_versions_allocated, 4,
        "frees copy history like writes"
    );
    engine.shutdown();
}

fn run_concurrent_history(config: EngineConfig, ops: &[(u8, u8, u8)]) {
    let engine = Engine::start_cluster(ClusterConfig::test(3), config);
    // Objects spread across every region => every commit is cross-primary.
    let regions = engine.cluster().regions();
    let node0 = engine.node(NodeId(0));
    let mut setup = node0.begin();
    let objects: Vec<Addr> = (0..6)
        .map(|i| {
            setup
                .alloc_in(regions[i % regions.len()], 0u64.to_le_bytes().to_vec())
                .unwrap()
        })
        .collect();
    setup.commit().unwrap();
    let objects = Arc::new(objects);

    let mut per_thread: Vec<Vec<(usize, u8)>> = vec![Vec::new(); 3];
    for &(t, o, d) in ops {
        per_thread[(t % 3) as usize].push(((o % 6) as usize, d));
    }
    let handles: Vec<_> = per_thread
        .into_iter()
        .enumerate()
        .map(|(t, thread_ops)| {
            let engine = Arc::clone(&engine);
            let objects = Arc::clone(&objects);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(t as u32));
                let mut committed = vec![0u64; 6];
                for (o, d) in thread_ops {
                    for _attempt in 0..50 {
                        let mut tx = node.begin();
                        // Touch two objects per transaction so lock batches
                        // regularly span primaries.
                        let partner = (o + 1) % 6;
                        let Ok(v) = tx.read(objects[o]) else { continue };
                        let cur = u64::from_le_bytes(v[..8].try_into().unwrap());
                        if tx.read(objects[partner]).is_err() {
                            continue;
                        }
                        if tx
                            .write(objects[o], (cur + d as u64).to_le_bytes().to_vec())
                            .is_err()
                        {
                            continue;
                        }
                        if tx.commit().is_ok() {
                            committed[o] += d as u64;
                            break;
                        }
                    }
                }
                committed
            })
        })
        .collect();
    let mut totals = [0u64; 6];
    for h in handles {
        for (i, c) in h.join().unwrap().into_iter().enumerate() {
            totals[i] += c;
        }
    }
    let mut check = engine.node(NodeId(0)).begin();
    for (i, &expected) in totals.iter().enumerate() {
        let v = check.read(objects[i]).unwrap();
        assert_eq!(
            u64::from_le_bytes(v[..8].try_into().unwrap()),
            expected,
            "object {i}"
        );
    }
    check.commit().unwrap();
    engine.shutdown();
    engine.cluster().shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent cross-primary committers acquire their lock batches in the
    /// deterministic global address order: histories complete (no deadlock /
    /// livelock under the bounded retry budget) and no update is lost.
    #[test]
    fn concurrent_batched_committers_serialize(
        ops in prop::collection::vec((0u8..3, 0u8..6, 1u8..9), 1..24)
    ) {
        run_concurrent_history(EngineConfig::default(), &ops);
    }

    /// Same under multi-versioning, where frees and writes share batches and
    /// old-version copies happen inside LOCK processing.
    #[test]
    fn concurrent_batched_committers_serialize_mv(
        ops in prop::collection::vec((0u8..3, 0u8..6, 1u8..9), 1..24)
    ) {
        run_concurrent_history(EngineConfig::multi_version(), &ops);
    }
}

/// The commit-path phase loop must live in `commit/`, not `tx.rs`: the
/// transaction type only exposes the execution API plus `commit`, and the
/// driver's phases are observable through the per-phase statistics asserted
/// above. This test pins the module boundary via the public API surface.
#[test]
fn commit_driver_is_the_public_commit_surface() {
    // The driver and phases are exported types.
    fn assert_exists<T>() {}
    assert_exists::<farm_core::CommitDriver>();
    assert_exists::<farm_core::CommitPhase>();
    let _ = farm_core::CommitPhase::Lock;
    // Transaction has no public lock/validate/install entry points — only
    // the execution API. (Compile-time check by construction: the calls
    // below are the entire mutation surface.)
    let _ = |mut tx: Transaction, addr: Addr| {
        let _ = tx.read(addr);
        let _ = tx.write(addr, vec![0u8]);
        let _ = tx.free(addr);
        let _ = tx.commit();
    };
}

/// A transaction that only allocates and frees the same object produces a
/// plan with no region groups — only a cancelled allocation. The commit
/// must still return the pre-allocated slot to its slab (a leak here
/// exhausts the region under alloc+free churn).
#[test]
fn cancelled_alloc_with_no_other_intents_returns_its_slot() {
    let engine = engine(EngineConfig::default());
    // Use a region whose primary is NOT the coordinator, so the cancelled
    // allocation's primary has no other reason to appear in the commit
    // fan-out.
    let coordinator = NodeId(0);
    let region = engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| engine.cluster().primary_of(r) != Some(coordinator))
        .unwrap();
    let primary = engine.cluster().primary_of(region).unwrap();
    let replica = engine.cluster().node(primary).regions().ensure(region);
    let node = engine.node(coordinator);
    // Warm up the slab so occupancy comparisons see a stable layout.
    let mut tx = node.begin();
    let keep = tx.alloc_in(region, vec![0u8; 16]).unwrap();
    tx.commit().unwrap();
    let (used_before, free_before) = replica.occupancy();
    for _ in 0..64 {
        let mut tx = node.begin();
        let addr = tx.alloc_in(region, vec![1u8; 16]).unwrap();
        tx.free(addr).unwrap();
        tx.commit().unwrap();
    }
    let (used_after, free_after) = replica.occupancy();
    assert_eq!(
        (used_before, free_before),
        (used_after, free_after),
        "alloc+free churn leaked cancelled-allocation slots"
    );
    // The kept object is untouched.
    let mut tx = node.begin();
    assert_eq!(tx.read(keep).unwrap().as_ref(), &[0u8; 16]);
    tx.commit().unwrap();
    engine.shutdown();
}
