//! Lazy (piggybacked) truncation tests: TRUNCATE is never a standalone
//! message under commit traffic, watermarks flush on idle and never regress,
//! an abort-unwind cannot lose an earlier transaction's truncate, and a
//! primary killed between the early ack and COMMIT-PRIMARY loses nothing —
//! the promoted backup replays its untruncated redo log.

use std::sync::Arc;
use std::time::Duration;

use farm_core::{Engine, EngineConfig, NodeId, TxError};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, RegionId};
use farm_net::Verb;

/// An engine whose background flusher cannot race the assertions.
fn quiet_engine(nodes: usize, config: EngineConfig) -> Arc<Engine> {
    let config = EngineConfig {
        gc_interval: Duration::from_secs(3600),
        ..config
    };
    Engine::start_cluster(ClusterConfig::test(nodes), config)
}

fn remote_region(engine: &Arc<Engine>, coordinator: NodeId) -> RegionId {
    engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| engine.cluster().primary_of(r) != Some(coordinator))
        .expect("multi-node cluster has a remote region")
}

/// The committed version visible at `node`'s replica of `addr`'s region
/// (0 when the replica has no slab/slot yet).
fn replica_ts(engine: &Arc<Engine>, node: NodeId, addr: Addr) -> u64 {
    engine
        .cluster()
        .node(node)
        .regions()
        .get(addr.region)
        .and_then(|r| r.slot(addr).ok())
        .map(|s| s.header_snapshot().ts)
        .unwrap_or(0)
}

#[test]
fn steady_traffic_piggybacks_every_truncation() {
    let engine = quiet_engine(3, EngineConfig::default());
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));
    let backups: Vec<NodeId> = engine
        .cluster()
        .replicas_of(region)
        .into_iter()
        .skip(1)
        .collect();
    assert!(!backups.is_empty());

    let mut setup = node.begin();
    let addr = setup.alloc_in(region, vec![0u8; 32]).unwrap();
    setup.commit().unwrap();

    let stats_before = node.stats();
    let net_before = node.handle().stats().snapshot();
    let mut last_ts = 0;
    for round in 1..=10u8 {
        // Each `begin` drains the previous commit's install, raising the
        // watermark; each commit's LOCK verb piggybacks it.
        let mut tx = node.begin();
        tx.write(addr, vec![round; 32]).unwrap();
        last_ts = tx.commit().unwrap().write_ts.unwrap();
    }
    let stats = node.stats().delta(&stats_before);
    let net = node.handle().stats().snapshot().delta(&net_before);

    assert_eq!(stats.truncate_batches, 0, "no standalone TRUNCATE messages");
    assert_eq!(stats.truncate_flushes, 0, "no idle flushes under traffic");
    assert!(
        stats.truncations_piggybacked >= 9,
        "watermarks ride the LOCK verbs: {}",
        stats.truncations_piggybacked
    );
    // Every two-sided message of the window is a LOCK batch: truncation
    // added zero messages.
    assert_eq!(net.count(Verb::Rpc), stats.lock_batches);
    // Deliveries applied earlier rounds' records at the backups (the last
    // round's truncate is still pending — nothing has piggybacked it yet).
    for &backup in &backups {
        let ts = replica_ts(&engine, backup, addr);
        assert!(ts > 0 && ts < last_ts, "backup saw piggybacked truncations");
    }
    engine.shutdown();
}

#[test]
fn idle_watermarks_flush_and_never_regress() {
    // Fast background flusher: 1 ms GC cadence, 1 ms idle threshold.
    let config = EngineConfig {
        gc_interval: Duration::from_millis(1),
        truncate_idle_flush: Duration::from_millis(1),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(ClusterConfig::test(3), config);
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));
    let backups: Vec<NodeId> = engine
        .cluster()
        .replicas_of(region)
        .into_iter()
        .skip(1)
        .collect();

    let mut setup = node.begin();
    let addr = setup.alloc_in(region, vec![0u8; 32]).unwrap();
    setup.commit().unwrap();
    let mut tx = node.begin();
    tx.write(addr, vec![9u8; 32]).unwrap();
    let write_ts = tx.commit().unwrap().write_ts.unwrap();
    node.drain_pending_installs();
    let w1 = node.truncation_watermark();
    assert!(w1 >= write_ts, "watermark covers the installed commit");

    // Idle: no further verbs to piggyback on. The background flusher must
    // deliver the watermark on its own.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while std::time::Instant::now() < deadline {
        if backups.iter().all(|&b| node.delivered_truncation(b) >= w1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for &backup in &backups {
        assert!(
            node.delivered_truncation(backup) >= w1,
            "idle flush never delivered to {backup}"
        );
        assert_eq!(replica_ts(&engine, backup, addr), write_ts);
    }
    assert!(node.stats().truncate_flushes >= 1, "flushes are counted");

    // Watermarks are monotone across further commits.
    let mut last = node.truncation_watermark();
    for round in 0..5u8 {
        let mut tx = node.begin();
        tx.write(addr, vec![round; 32]).unwrap();
        tx.commit().unwrap();
        node.drain_pending_installs();
        let w = node.truncation_watermark();
        assert!(w >= last, "watermark regressed: {w} < {last}");
        last = w;
    }
    engine.shutdown();
}

#[test]
fn abort_unwind_does_not_lose_an_earlier_truncate() {
    let engine = quiet_engine(3, EngineConfig::default());
    let node0 = engine.node(NodeId(0));
    let node2 = engine.node(NodeId(2));
    let region = remote_region(&engine, NodeId(0));
    let backups: Vec<NodeId> = engine
        .cluster()
        .replicas_of(region)
        .into_iter()
        .skip(1)
        .collect();

    let mut setup = node0.begin();
    let x = setup.alloc_in(region, vec![0u8; 32]).unwrap();
    let y = setup.alloc(vec![0u8; 16]).unwrap();
    setup.commit().unwrap();
    node0.drain_pending_installs();

    // T1 commits x and installs; its truncate is pending (watermark raised,
    // nothing delivered — no outgoing traffic since).
    let mut t1 = node0.begin();
    t1.write(x, vec![0x5Au8; 32]).unwrap();
    let t1_ts = t1.commit().unwrap().write_ts.unwrap();
    node0.drain_pending_installs();
    let w1 = node0.truncation_watermark();
    assert!(w1 >= t1_ts);

    // T2 (same coordinator) acquires a later write timestamp but fails
    // validation: its unwind must withdraw only its own reservation.
    let mut t2 = node0.begin();
    t2.read(y).unwrap();
    t2.write(x, vec![0x66u8; 32]).unwrap();
    let mut racer = node2.begin();
    racer.write(y, vec![1u8; 16]).unwrap();
    racer.commit().unwrap();
    let err = t2.commit().unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(_)),
        "validation abort expected: {err:?}"
    );

    // The watermark never regressed, and T1's truncate still delivers: the
    // backups receive exactly T1's version.
    assert!(node0.truncation_watermark() >= w1, "watermark regressed");
    engine.quiesce();
    for &backup in &backups {
        assert_eq!(
            replica_ts(&engine, backup, x),
            t1_ts,
            "T1's truncate was lost at {backup}"
        );
    }
    engine.shutdown();
}

/// The satellite fault-injection case: a primary dies after the coordinator
/// early-acked (commit returned) but before COMMIT-PRIMARY landed. The
/// committed value must survive via the promoted backup's redo log — and a
/// reader must never observe a torn install.
#[test]
fn primary_killed_between_early_ack_and_install_loses_nothing() {
    let mut cluster_cfg = ClusterConfig::test(4);
    cluster_cfg.lease_expiry = Duration::from_millis(1);
    let config = EngineConfig {
        gc_interval: Duration::from_secs(3600),
        ..EngineConfig::default()
    };
    let engine = Engine::start(farm_core::Cluster::start(cluster_cfg), config);
    let node0 = engine.node(NodeId(0));

    // A region whose primary is node 1.
    let region = engine
        .cluster()
        .primaries_on(NodeId(1))
        .into_iter()
        .next()
        .expect("node 1 hosts a primary");
    let original_replicas = engine.cluster().replicas_of(region);
    let mut setup = node0.begin();
    let addr = setup.alloc_in(region, vec![0x11u8; 64]).unwrap();
    setup.commit().unwrap();
    engine.quiesce(); // baseline value mirrored everywhere

    // The measured transaction: commit returns at the durability point; the
    // install is left pending (no drain — the background thread is quiet).
    let mut tx = node0.begin();
    tx.write(addr, vec![0xEEu8; 64]).unwrap();
    let write_ts = tx.commit().unwrap().write_ts.unwrap();
    assert_eq!(node0.pending_installs(), 1);

    // Kill the primary before COMMIT-PRIMARY lands, and reconfigure.
    engine.cluster().kill(NodeId(1));
    std::thread::sleep(Duration::from_millis(3));
    for _ in 0..6 {
        engine.cluster().control_round();
    }
    let new_primary = engine.cluster().primary_of(region).unwrap();
    assert_ne!(new_primary, NodeId(1), "a backup was promoted");

    // The committed value is visible at the promoted primary — recovered
    // from its untruncated redo log — and is never torn: the payload is
    // whole and carries the transaction's write timestamp.
    let mut reader = node0.begin();
    let value = reader.read(addr).unwrap();
    assert_eq!(
        &value[..],
        &[0xEEu8; 64],
        "committed value lost or torn after primary failure"
    );
    assert_eq!(replica_ts(&engine, new_primary, addr), write_ts);

    // Draining the dead-primary install is a no-op, not a crash, and the
    // truncation watermark still rises so the *other* surviving backup is
    // brought up to date too.
    node0.drain_pending_installs();
    assert!(node0.truncation_watermark() >= write_ts);
    engine.quiesce();
    // Only the replicas that held the region at commit time carry the redo
    // log; a fresh re-replication backup catches up by paced copy instead.
    for &replica in original_replicas.iter().filter(|&&r| r != NodeId(1)) {
        assert_eq!(
            replica_ts(&engine, replica, addr),
            write_ts,
            "surviving replica {replica} missed the committed write"
        );
    }
    engine.shutdown();
}
