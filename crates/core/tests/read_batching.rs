//! Integration tests of the batched, pipelined read path: `read_many`
//! message counts scale with the number of destination primaries (not keys),
//! the VALIDATE phase batches per primary exactly like LOCK, local-primary
//! reads bypass the network, locked/tombstoned slots inside one batch fall
//! back per slot, and batched reads stay snapshot-consistent under a
//! concurrent committer.

use std::sync::Arc;

use farm_core::{AbortReason, Engine, EngineConfig, NodeId, ParallelQuery, TxError};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, LockOutcome, RegionId};
use farm_net::Verb;
use proptest::prelude::*;

fn engine(config: EngineConfig) -> Arc<Engine> {
    Engine::start_cluster(ClusterConfig::test(3), config)
}

/// A region whose primary is (`want_local` =) / is not the given node.
fn region_with_primary(engine: &Arc<Engine>, node: NodeId, want_local: bool) -> RegionId {
    engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| (engine.cluster().primary_of(r).unwrap() == node) == want_local)
        .expect("test placement spreads primaries")
}

fn alloc_in_region(engine: &Arc<Engine>, region: RegionId, count: usize) -> Vec<Addr> {
    let node = engine.node(NodeId(0));
    let mut tx = node.begin();
    let addrs = (0..count)
        .map(|i| tx.alloc_in(region, vec![i as u8; 32]).unwrap())
        .collect();
    tx.commit().unwrap();
    addrs
}

#[test]
fn read_many_of_k_remote_keys_on_one_primary_is_one_message() {
    let engine = engine(EngineConfig::default());
    let coordinator = NodeId(0);
    let remote = region_with_primary(&engine, coordinator, false);
    let addrs = alloc_in_region(&engine, remote, 8);

    let node = engine.node(coordinator);
    let mut tx = node.begin();
    let net_before = node.handle().stats().snapshot();
    let stats_before = node.stats();
    let values = tx.read_many(&addrs).unwrap();
    let net = node.handle().stats().snapshot().delta(&net_before);
    let stats = node.stats().delta(&stats_before);

    for (i, v) in values.iter().enumerate() {
        assert_eq!(&v[..], vec![i as u8; 32].as_slice());
    }
    // One doorbell-batched message carrying all 8 reads — O(1), not O(K).
    assert_eq!(net.count(Verb::RdmaRead), 1, "1 read message per primary");
    assert_eq!(net.ops(Verb::RdmaRead), 8, "8 logical reads in 1 message");
    assert_eq!(stats.read_batches, 1);
    assert_eq!(stats.read_batch_objects, 8);
    assert_eq!(stats.read_local_bypass, 0);
    tx.commit().unwrap();
    engine.shutdown();
}

#[test]
fn read_many_message_count_scales_with_primaries_not_keys() {
    let engine = engine(EngineConfig::default());
    let coordinator = NodeId(0);
    // Keys on every region in the cluster: one batch per distinct primary,
    // and the local primary's batch bypasses the network entirely.
    let mut addrs = Vec::new();
    for r in engine.cluster().regions() {
        addrs.extend(alloc_in_region(&engine, r, 4));
    }
    let remote_primaries: std::collections::HashSet<NodeId> = addrs
        .iter()
        .map(|a| engine.cluster().primary_of(a.region).unwrap())
        .filter(|&p| p != coordinator)
        .collect();

    let node = engine.node(coordinator);
    let mut tx = node.begin();
    let net_before = node.handle().stats().snapshot();
    let stats_before = node.stats();
    let values = tx.read_many(&addrs).unwrap();
    let net = node.handle().stats().snapshot().delta(&net_before);
    let stats = node.stats().delta(&stats_before);

    assert_eq!(values.len(), addrs.len());
    assert_eq!(
        net.count(Verb::RdmaRead),
        remote_primaries.len() as u64,
        "one message per remote primary"
    );
    assert_eq!(
        net.ops(Verb::RdmaRead),
        (addrs.len() - 4) as u64,
        "remote keys ride the batches"
    );
    assert_eq!(stats.read_local_bypass, 4, "local keys skip the network");
    tx.commit().unwrap();
    engine.shutdown();
}

#[test]
fn validating_k_unwritten_reads_on_one_primary_is_one_message() {
    let engine = engine(EngineConfig::default());
    let coordinator = NodeId(0);
    let remote = region_with_primary(&engine, coordinator, false);
    let local = region_with_primary(&engine, coordinator, true);
    let read_addrs = alloc_in_region(&engine, remote, 6);
    let write_addr = alloc_in_region(&engine, local, 1)[0];

    let node = engine.node(coordinator);
    let mut tx = node.begin();
    let _ = tx.read_many(&read_addrs).unwrap();
    tx.write(write_addr, vec![9u8; 8]).unwrap();

    let net_before = node.handle().stats().snapshot();
    let stats_before = node.stats();
    tx.commit().unwrap();
    let net = node.handle().stats().snapshot().delta(&net_before);
    let stats = node.stats().delta(&stats_before);

    // The commit's only RDMA reads are VALIDATE header reads: 6 unwritten
    // read-set objects on one primary = exactly 1 message.
    assert_eq!(net.count(Verb::RdmaRead), 1, "1 VALIDATE message");
    assert_eq!(net.ops(Verb::RdmaRead), 6, "6 header reads in 1 message");
    assert_eq!(stats.validate_batches, 1);
    assert_eq!(stats.validate_batch_objects, 6);
    engine.shutdown();
}

#[test]
fn validate_batches_split_per_destination_primary() {
    let engine = engine(EngineConfig::default());
    let coordinator = NodeId(0);
    // Unwritten reads spread over every region: one VALIDATE batch per
    // distinct primary (including the coordinator's own, which is free).
    let mut read_addrs = Vec::new();
    let mut primaries = std::collections::HashSet::new();
    for r in engine.cluster().regions() {
        read_addrs.extend(alloc_in_region(&engine, r, 2));
        primaries.insert(engine.cluster().primary_of(r).unwrap());
    }
    let write_addr = alloc_in_region(&engine, read_addrs[0].region, 1)[0];

    let node = engine.node(coordinator);
    let mut tx = node.begin();
    let _ = tx.read_many(&read_addrs).unwrap();
    tx.write(write_addr, vec![1u8; 8]).unwrap();
    let stats_before = node.stats();
    tx.commit().unwrap();
    let stats = node.stats().delta(&stats_before);

    assert_eq!(stats.validate_batches, primaries.len() as u64);
    assert_eq!(stats.validate_batch_objects, read_addrs.len() as u64);
    engine.shutdown();
}

#[test]
fn read_many_handles_locked_and_tombstoned_slots_in_one_batch() {
    let mut config = EngineConfig::multi_version();
    config.read_lock_retries = 100_000; // generous budget for the held lock
    let engine = engine(config);
    let node = engine.node(NodeId(0));
    let region = engine.cluster().regions()[0];
    let addrs = alloc_in_region(&engine, region, 3);

    // Open the reader's snapshot first.
    let mut reader = node.begin();

    // Tombstone addrs[2] after the snapshot: the batch read must fall back
    // to the old-version chain and still return the pre-free value.
    let mut freeer = node.begin();
    freeer.free(addrs[2]).unwrap();
    freeer.commit().unwrap();

    // Hold addrs[1]'s commit lock from a foreign committer for a while: the
    // batch read must retry just that slot with backoff and then succeed.
    let primary = engine.cluster().primary_of(region).unwrap();
    let slot = engine
        .cluster()
        .node(primary)
        .regions()
        .get(region)
        .unwrap()
        .slot(addrs[1])
        .unwrap();
    let ts = slot.header_snapshot().ts;
    assert_eq!(slot.try_lock_at(ts), LockOutcome::Acquired);
    let unlocker = {
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            slot.unlock();
        })
    };

    let values = reader.read_many(&addrs).unwrap();
    unlocker.join().unwrap();
    assert_eq!(&values[0][..], vec![0u8; 32].as_slice());
    assert_eq!(&values[1][..], vec![1u8; 32].as_slice());
    assert_eq!(
        &values[2][..],
        vec![2u8; 32].as_slice(),
        "tombstoned slot resolved through the old-version chain"
    );
    reader.commit().unwrap();
    engine.shutdown();
}

#[test]
fn exhausted_lock_backoff_aborts_and_is_counted() {
    let config = EngineConfig {
        read_lock_retries: 3,
        ..Default::default()
    };
    let engine = engine(config);
    let node = engine.node(NodeId(0));
    let region = engine.cluster().regions()[0];
    let addrs = alloc_in_region(&engine, region, 2);

    let primary = engine.cluster().primary_of(region).unwrap();
    let slot = engine
        .cluster()
        .node(primary)
        .regions()
        .get(region)
        .unwrap()
        .slot(addrs[1])
        .unwrap();
    let ts = slot.header_snapshot().ts;
    assert_eq!(slot.try_lock_at(ts), LockOutcome::Acquired);

    // Single-object read path.
    let mut tx = node.begin();
    let err = tx.read(addrs[1]).unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::ReadLockedObject(a)) if a == addrs[1]),
        "{err:?}"
    );
    // Batched read path: the healthy slot does not mask the locked one.
    let mut tx = node.begin();
    let err = tx.read_many(&addrs).unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::ReadLockedObject(a)) if a == addrs[1]),
        "{err:?}"
    );
    assert_eq!(node.stats().read_lock_retries_exhausted, 2);
    slot.unlock();
    engine.shutdown();
}

#[test]
fn finished_query_snapshot_is_rejected_once_gc_passes() {
    let engine = engine(EngineConfig::multi_version());
    let node = engine.node(NodeId(0));
    let mut tx = node.begin();
    let addr = tx.alloc(vec![1u8; 8]).unwrap();
    tx.commit().unwrap();

    let query = ParallelQuery::start(&engine, NodeId(0));
    let pinned_ts = query.read_ts();
    // While the query is live its snapshot holds GC back, so slaves start.
    let values = query
        .map_nodes(&[NodeId(1), NodeId(2)], |_e, tx| {
            tx.read(addr).map(|b| b[0])
        })
        .unwrap();
    assert_eq!(values, vec![1, 1]);
    query.finish();

    // After finish the pin is gone: GC_local advances past the snapshot and
    // a late slave at the old timestamp is rejected (its old versions may
    // already be reclaimed).
    for _ in 0..4 {
        engine.cluster().control_round();
    }
    engine.collect_garbage_now();
    assert!(
        engine.node(NodeId(1)).handle().gc_local() > pinned_ts,
        "GC must advance once the query is finished"
    );
    let err = engine
        .node(NodeId(1))
        .begin_stale_readonly(pinned_ts)
        .unwrap_err();
    assert!(
        matches!(err, TxError::Aborted(AbortReason::SnapshotTooStale { .. })),
        "{err:?}"
    );
    engine.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `read_many` returns a snapshot-consistent view while a committer
    /// concurrently rewrites the same objects: every batch must observe all
    /// objects at one logical version (the writer keeps them equal).
    #[test]
    fn read_many_is_snapshot_consistent_under_concurrent_committer(
        rounds in 4u8..16,
        batch in 2usize..6,
    ) {
        let engine = Engine::start_cluster(
            ClusterConfig::test(3),
            EngineConfig::multi_version(),
        );
        let node0 = engine.node(NodeId(0));
        let regions = engine.cluster().regions();
        let mut setup = node0.begin();
        let addrs: Vec<Addr> = (0..batch)
            .map(|i| {
                setup
                    .alloc_in(regions[i % regions.len()], 0u64.to_le_bytes().to_vec())
                    .unwrap()
            })
            .collect();
        setup.commit().unwrap();
        let addrs = Arc::new(addrs);

        let writer = {
            let engine = Arc::clone(&engine);
            let addrs = Arc::clone(&addrs);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(1));
                for v in 1..=rounds as u64 {
                    loop {
                        let mut tx = node.begin();
                        let ok = addrs
                            .iter()
                            .all(|&a| tx.write(a, v.to_le_bytes().to_vec()).is_ok());
                        if ok && tx.commit().is_ok() {
                            break;
                        }
                    }
                }
            })
        };
        let reader = {
            let engine = Arc::clone(&engine);
            let addrs = Arc::clone(&addrs);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(2));
                for _ in 0..32 {
                    let mut tx = node.begin();
                    let Ok(values) = tx.read_many(&addrs) else {
                        continue; // retryable conflict; the snapshot held
                    };
                    let first = u64::from_le_bytes(values[0][..8].try_into().unwrap());
                    for v in &values {
                        let got = u64::from_le_bytes(v[..8].try_into().unwrap());
                        assert_eq!(got, first, "torn batch: {values:?}");
                    }
                    let _ = tx.commit();
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        engine.shutdown();
        engine.cluster().shutdown();
    }
}
