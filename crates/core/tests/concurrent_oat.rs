//! Concurrency tests for OAT / GC-safe-point advancement (Figure 9) under
//! multi-threaded begin/commit/finish — the paths the lock-free active-tx
//! slot table now serves without a node-global lock.
//!
//! Invariants checked:
//!
//! * The OAT a node reports, and the GC safe point derived from it, never
//!   exceed the read timestamp of any transaction that is live at the
//!   moment of observation (otherwise GC could reclaim versions a running
//!   transaction still needs).
//! * A pinned snapshot (a long-lived transaction) can still read its
//!   version of an object after concurrent writers overwrite it many times
//!   and GC passes run — old versions below a live read timestamp are never
//!   reclaimed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_core::{Engine, EngineConfig, EngineMode, MvPolicy, NodeId, TxOptions};
use farm_kernel::ClusterConfig;

/// Four worker threads churn transactions (read-only commits, read-write
/// commits, and drops) while the main thread drives control rounds and
/// samples: whenever a worker's published read timestamp is stable across a
/// sample, the node's OAT and GC safe point must not exceed it.
#[test]
fn oat_and_gc_safe_point_never_pass_a_live_transaction() {
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
    let node0 = engine.node(NodeId(0));
    let region = node0.home_region().expect("node 0 holds a primary");
    let mut tx = node0.begin();
    let addr = tx.alloc_in(region, vec![1u8; 16]).unwrap();
    tx.commit().unwrap();

    const WORKERS: usize = 4;
    let stop = Arc::new(AtomicBool::new(false));
    // One published read timestamp per worker; 0 = no transaction live.
    let live: Arc<Vec<AtomicU64>> = Arc::new((0..WORKERS).map(|_| AtomicU64::new(0)).collect());

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(w as u32 % 3));
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let mut tx = node.begin_with(TxOptions::serializable());
                    // Publish only after `begin` returns: from here until the
                    // slot is cleared the registration is provably live.
                    live[w].store(tx.read_ts(), Ordering::SeqCst);
                    let outcome = match i % 3 {
                        0 => tx.read(addr).map(|_| ()),
                        1 => tx.write(addr, vec![w as u8; 16]),
                        _ => Ok(()), // drop without committing (abort path)
                    };
                    // Clear before finishing, so a sampled non-zero slot
                    // implies the transaction is still registered.
                    live[w].store(0, Ordering::SeqCst);
                    if outcome.is_ok() && i % 3 != 2 {
                        let _ = tx.commit();
                    }
                    i += 1;
                }
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_millis(400);
    let mut samples = 0u64;
    while Instant::now() < deadline {
        engine.cluster().control_round();
        for w in 0..WORKERS {
            let node = engine.node(NodeId(w as u32 % 3));
            let ts1 = live[w].load(Ordering::SeqCst);
            let oat = node.handle().oat_local();
            let gc = node.handle().gc_safe_point();
            let ts2 = live[w].load(Ordering::SeqCst);
            // Only judge samples where the same transaction was provably
            // live across the whole observation window (timestamps are
            // nanosecond-unique, so ts1 == ts2 != 0 pins one registration).
            if ts1 != 0 && ts1 == ts2 {
                assert!(
                    oat <= ts1,
                    "OAT {oat} passed live transaction read_ts {ts1} (worker {w})"
                );
                assert!(
                    gc <= ts1,
                    "GC safe point {gc} passed live transaction read_ts {ts1} (worker {w})"
                );
                samples += 1;
            }
        }
    }
    stop.store(true, Ordering::SeqCst);
    for h in workers {
        h.join().unwrap();
    }
    assert!(samples > 0, "sampler never caught a live transaction");
    engine.shutdown();
}

/// A long-lived snapshot keeps reading its version while concurrent writers
/// overwrite the object and GC runs — the pinned read timestamp holds the
/// OAT (and therefore the GC safe point) back, so the version chain below it
/// survives every sweep.
#[test]
fn gc_never_reclaims_a_version_a_pinned_snapshot_can_read() {
    // MV-BLOCK: when old-version memory fills, writers stall or abort rather
    // than truncating history (MV-TRUNCATE deliberately sacrifices readers
    // under memory pressure, which is not the invariant under test — GC must
    // never reclaim below a live pin, however fast the writers churn).
    let config = EngineConfig {
        mode: EngineMode::farmv2_multi_version(MvPolicy::Block),
        ..EngineConfig::multi_version()
    };
    let engine = Engine::start_cluster(ClusterConfig::test(3), config);
    let node0 = engine.node(NodeId(0));
    let region = node0.home_region().expect("node 0 holds a primary");
    let mut tx = node0.begin();
    let addr = tx.alloc_in(region, vec![42u8; 16]).unwrap();
    tx.commit().unwrap();

    // Pin a snapshot that has observed value 42.
    let mut pinned = node0.begin();
    let snapshot_value = pinned.read(addr).unwrap();
    assert_eq!(snapshot_value[0], 42);

    // Writers on two other nodes overwrite the object concurrently while
    // control rounds advance the watermarks and GC sweeps run.
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (1..3u32)
        .map(|n| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(n));
                let mut v = 0u8;
                while !stop.load(Ordering::SeqCst) {
                    let mut tx = node.begin();
                    if tx.write(addr, vec![v; 16]).is_ok() {
                        let _ = tx.commit();
                    }
                    v = v.wrapping_add(1);
                }
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < deadline {
        engine.cluster().control_round();
        engine.collect_garbage_now();
        std::thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    for h in writers {
        h.join().unwrap();
    }

    // After all that churn the pinned snapshot must still read its version:
    // GC was never allowed to reclaim history at or below its read_ts.
    let again = pinned
        .read(addr)
        .expect("pinned snapshot lost its version to GC");
    assert_eq!(again, snapshot_value, "snapshot read became inconsistent");
    pinned.commit().unwrap();

    // Once the pin is released the watermarks may advance past it and the
    // accumulated old versions become reclaimable.
    for _ in 0..4 {
        engine.cluster().control_round();
    }
    engine.collect_garbage_now();
    engine.shutdown();
}
