//! Early-ack commit lifecycle tests: `commit` returns at the durability
//! point (all COMMIT-BACKUP acks), COMMIT-PRIMARY installs drain in the
//! background, readers that hit a still-locked slot of a durable
//! transaction help complete the install, and the per-thread commit
//! pipeline keeps several transactions in their critical paths at once.

use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_core::{Engine, EngineConfig, NodeId, TxError};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, RegionId};
use farm_net::LatencyModel;

/// An engine whose background thread cannot interfere with assertions about
/// intermediate lifecycle states (installs stay pending until someone drains
/// or helps).
fn quiet_engine(config: EngineConfig) -> Arc<Engine> {
    let config = EngineConfig {
        gc_interval: Duration::from_secs(3600),
        ..config
    };
    Engine::start_cluster(ClusterConfig::test(3), config)
}

/// A region whose primary is NOT `coordinator`, so its LOCK/COMMIT messages
/// are remote.
fn remote_region(engine: &Arc<Engine>, coordinator: NodeId) -> RegionId {
    engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| engine.cluster().primary_of(r) != Some(coordinator))
        .expect("multi-node cluster has a remote region")
}

fn slot_of(engine: &Arc<Engine>, addr: Addr) -> Arc<farm_memory::ObjectSlot> {
    let primary = engine.cluster().primary_of(addr.region).unwrap();
    engine
        .cluster()
        .node(primary)
        .regions()
        .ensure(addr.region)
        .slot(addr)
        .unwrap()
}

#[test]
fn commit_returns_before_install_and_a_reader_helps() {
    let engine = quiet_engine(EngineConfig::default());
    let coordinator = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));

    let mut setup = coordinator.begin();
    let addr = setup.alloc_in(region, vec![0u8; 64]).unwrap();
    setup.commit().unwrap();
    coordinator.drain_pending_installs();

    let mut tx = coordinator.begin();
    tx.write(addr, vec![0xABu8; 64]).unwrap();
    let info = tx.commit().unwrap();
    let write_ts = info.write_ts.unwrap();

    // Stage 1 ended: the commit reported success while the install is still
    // pending — the slot is locked at the primary.
    assert_eq!(coordinator.pending_installs(), 1);
    assert!(
        slot_of(&engine, addr).header_snapshot().locked,
        "COMMIT-PRIMARY should not have landed yet"
    );
    let stats = coordinator.stats();
    assert_eq!(stats.early_ack_commits, 2, "setup + measured commit");

    // A reader on another machine (whose own backlog is empty) hits the
    // locked slot and helps complete the install instead of backing off.
    let reader_node = engine.node(NodeId(2));
    let mut reader = reader_node.begin();
    let value = reader.read(addr).unwrap();
    assert_eq!(&value[..], &[0xABu8; 64], "helped read sees the new value");
    assert!(
        reader_node.stats().install_helps >= 1,
        "the read should have helped the pending install"
    );
    let header = slot_of(&engine, addr).header_snapshot();
    assert!(!header.locked, "helping completed the install");
    assert_eq!(header.ts, write_ts);

    // The committing engine's drain finds nothing left to do.
    assert_eq!(coordinator.drain_pending_installs(), 0);
    assert_eq!(coordinator.pending_installs(), 0);
    engine.shutdown();
}

#[test]
fn begin_drains_the_engines_own_backlog() {
    let engine = quiet_engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));

    let mut setup = node.begin();
    let addr = setup.alloc_in(region, vec![1u8; 16]).unwrap();
    setup.commit().unwrap();

    let mut tx = node.begin();
    tx.write(addr, vec![2u8; 16]).unwrap();
    tx.commit().unwrap();
    assert_eq!(node.pending_installs(), 1);

    // The next `begin` on the same engine is the opportunistic stage-2
    // completion point: the backlog drains off the commit critical path.
    let mut next = node.begin();
    assert_eq!(node.pending_installs(), 0);
    assert!(!slot_of(&engine, addr).header_snapshot().locked);
    assert_eq!(next.read(addr).unwrap()[0], 2);
    engine.shutdown();
}

#[test]
fn early_ack_off_keeps_the_synchronous_protocol() {
    let engine = quiet_engine(EngineConfig {
        early_ack: false,
        ..EngineConfig::default()
    });
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));

    let mut setup = node.begin();
    let addr = setup.alloc_in(region, vec![0u8; 16]).unwrap();
    setup.commit().unwrap();
    let before = node.stats();
    let mut tx = node.begin();
    tx.write(addr, vec![7u8; 16]).unwrap();
    tx.commit().unwrap();
    let stats = node.stats().delta(&before);

    // Fully synchronous: installed at commit return, standalone TRUNCATE
    // messages sent, nothing queued.
    assert_eq!(node.pending_installs(), 0);
    assert!(!slot_of(&engine, addr).header_snapshot().locked);
    assert_eq!(stats.early_ack_commits, 0);
    let backups = engine.cluster().replicas_of(region).len() as u64 - 1;
    assert_eq!(stats.truncate_batches, backups);
    assert_eq!(stats.truncations_piggybacked, 0);
    engine.shutdown();
}

/// Concurrent read-modify-write increments on one shared counter: helping
/// keeps the counter exact even though every commit leaves its lock held
/// until someone (the next beginner, a reader, a conflicting locker)
/// completes the install.
#[test]
fn concurrent_increments_stay_exact_under_helping() {
    let engine = quiet_engine(EngineConfig::default());
    let node0 = engine.node(NodeId(0));
    let mut setup = node0.begin();
    let counter = setup.alloc(0u64.to_le_bytes().to_vec()).unwrap();
    setup.commit().unwrap();
    node0.drain_pending_installs();

    const THREADS: usize = 4;
    const INCREMENTS: usize = 50;
    let committed: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            handles.push(scope.spawn(move || {
                let node = engine.node(NodeId(t as u32 % 3));
                let mut committed = 0u64;
                for _ in 0..INCREMENTS {
                    // Retry aborts (lock conflicts, validation failures):
                    // only successful commits count.
                    loop {
                        let mut tx = node.begin();
                        let current = match tx.read(counter) {
                            Ok(bytes) => u64::from_le_bytes(bytes[..8].try_into().unwrap()),
                            Err(_) => continue,
                        };
                        if tx
                            .write(counter, (current + 1).to_le_bytes().to_vec())
                            .is_err()
                        {
                            continue;
                        }
                        match tx.commit() {
                            Ok(_) => {
                                committed += 1;
                                break;
                            }
                            Err(TxError::Aborted(_)) => continue,
                            Err(e) => panic!("unexpected error: {e:?}"),
                        }
                    }
                }
                committed
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    assert_eq!(committed, (THREADS * INCREMENTS) as u64);
    engine.quiesce();
    let mut check = node0.begin();
    let value = u64::from_le_bytes(check.read(counter).unwrap()[..8].try_into().unwrap());
    assert_eq!(value, committed, "increments lost or duplicated");
    engine.shutdown();
}

/// Blind writes (`Transaction::overwrite`) lock at whatever version is
/// installed: no read on the execution path, no validation entry, and never
/// a `VersionChanged` abort — two back-to-back blind writers both commit,
/// the second helping the first's pending install at its LOCK.
#[test]
fn blind_overwrite_commits_without_reading() {
    let engine = quiet_engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc_in(region, vec![0u8; 16]).unwrap();
    setup.commit().unwrap();
    node.drain_pending_installs();

    let mut t1 = node.begin();
    t1.overwrite(addr, vec![1u8; 16]).unwrap();
    assert_eq!(t1.reads(), 0, "blind write performs no read");
    let ts1 = t1.commit().unwrap().write_ts.unwrap();

    // The second blind writer runs before t1's install landed: its LOCK
    // conflicts with the durable pending install, helps it, and then locks
    // blind at t1's version — no spurious abort.
    let reader_node = engine.node(NodeId(2));
    let mut t2 = reader_node.begin();
    t2.overwrite(addr, vec![2u8; 16]).unwrap();
    let ts2 = t2.commit().unwrap().write_ts.unwrap();
    assert!(ts2 > ts1);

    engine.quiesce();
    let mut check = node.begin();
    assert_eq!(check.read(addr).unwrap()[0], 2);

    // A blind write to a freed object still aborts: there is nothing to
    // overwrite.
    let mut free = node.begin();
    free.free(addr).unwrap();
    free.commit().unwrap();
    engine.quiesce();
    let mut stale = node.begin();
    stale.overwrite(addr, vec![3u8; 16]).unwrap();
    assert!(
        matches!(stale.commit(), Err(TxError::Aborted(_))),
        "blind write of a freed object must abort"
    );
    engine.shutdown();
}

#[test]
fn pipeline_commits_disjoint_transactions() {
    let engine = quiet_engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));

    let mut setup = node.begin();
    let addrs: Vec<Addr> = (0..16)
        .map(|_| setup.alloc_in(region, vec![0u8; 16]).unwrap())
        .collect();
    setup.commit().unwrap();

    let before = node.stats();
    let mut pipeline = node.pipeline(4);
    for (i, &addr) in addrs.iter().enumerate() {
        let mut tx = node.begin();
        tx.write(addr, vec![i as u8 + 1; 16]).unwrap();
        pipeline.submit(tx);
        assert!(pipeline.in_flight() <= 4);
    }
    let results = pipeline.drain();
    assert_eq!(results.len(), 16);
    for r in &results {
        r.as_ref().expect("disjoint pipelined commits all succeed");
    }
    assert_eq!(node.stats().delta(&before).commits_rw, 16);

    engine.quiesce();
    let mut check = node.begin();
    for (i, &addr) in addrs.iter().enumerate() {
        assert_eq!(check.read(addr).unwrap()[0], i as u8 + 1);
    }
    engine.shutdown();
}

#[test]
fn pipeline_handles_read_only_and_aborting_transactions() {
    let engine = quiet_engine(EngineConfig::default());
    let node = engine.node(NodeId(0));
    let mut setup = node.begin();
    let addr = setup.alloc(vec![5u8; 16]).unwrap();
    setup.commit().unwrap();

    let mut pipeline = node.pipeline(2);
    // Read-only: resolved without entering the pipeline.
    let mut ro = node.begin();
    ro.read(addr).unwrap();
    pipeline.submit(ro);
    // A conflicting write: the transaction reads first (while unlocked),
    // then another committer's lock appears. Helping finds no durable
    // owner, so the pipelined commit aborts on the lock conflict.
    let mut conflicted = node.begin();
    conflicted.read(addr).unwrap();
    let slot = slot_of(&engine, addr);
    let ts = slot.header_snapshot().ts;
    assert_eq!(
        slot.try_lock_at(ts),
        farm_memory::LockOutcome::Acquired,
        "manual foreign lock"
    );
    conflicted.write(addr, vec![6u8; 16]).unwrap();
    pipeline.submit(conflicted);
    let results = pipeline.drain();
    slot.unlock();
    assert_eq!(results.len(), 2);
    assert!(results[0].is_ok(), "read-only commit succeeds");
    assert!(
        matches!(results[1], Err(TxError::Aborted(_))),
        "conflicted pipelined commit aborts cleanly: {:?}",
        results[1]
    );
    // The abort unwound: a retry commits.
    let mut retry = node.begin();
    retry.write(addr, vec![7u8; 16]).unwrap();
    retry.commit().unwrap();
    engine.shutdown();
}

/// Under injected network latency, a depth-8 pipeline overlaps the
/// transactions' flight windows: committing N disjoint transactions takes a
/// fraction of the serial wall-clock. The latency model is scaled well above
/// debug-build CPU costs (and waits spin, so OS sleep slack cannot blur the
/// comparison) — the measured ratio is then dominated by flight overlap, not
/// by host speed.
#[test]
fn pipeline_overlaps_flight_windows_under_latency() {
    let config = EngineConfig {
        latency: LatencyModel {
            rdma_read_ns: 25_000,
            rdma_write_ns: 30_000,
            rpc_ns: 70_000,
            spin_threshold_ns: 300_000,
        },
        gc_interval: Duration::from_secs(3600),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(ClusterConfig::test(3), config);
    let node = engine.node(NodeId(0));
    let region = remote_region(&engine, NodeId(0));
    let mut setup = node.begin();
    let addrs: Vec<Addr> = (0..80)
        .map(|_| setup.alloc_in(region, vec![0u8; 16]).unwrap())
        .collect();
    setup.commit().unwrap();
    node.drain_pending_installs();

    const N: usize = 40;
    // Serial: one synchronous commit at a time — pays `Σ phase latencies`
    // per transaction (~100 µs here).
    let start = Instant::now();
    for &addr in &addrs[..N] {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![1u8; 16]).unwrap();
        tx.commit().unwrap();
    }
    let serial = start.elapsed();

    // Pipelined: up to 8 critical paths in flight on this one thread.
    let start = Instant::now();
    let mut pipeline = node.pipeline(8);
    for &addr in &addrs[N..2 * N] {
        let mut tx = node.begin();
        tx.overwrite(addr, vec![2u8; 16]).unwrap();
        pipeline.submit(tx);
    }
    let results = pipeline.drain();
    let pipelined = start.elapsed();
    assert!(results.iter().all(|r| r.is_ok()));

    assert!(
        pipelined < serial.mul_f64(0.75),
        "depth-8 pipeline did not overlap flight windows: serial {serial:?} vs pipelined {pipelined:?}"
    );
    engine.shutdown();
}
