//! Lock-free tracking of active local transactions.
//!
//! FaRMv2 computes each machine's oldest-active-timestamp (OAT, Figure 9)
//! without any centralized synchronization: every thread publishes the read
//! timestamps of its in-flight transactions in its own slots, and the OAT is
//! a wait-free minimum scan over all slots. This module is that structure —
//! the replacement for the seed's node-global `Mutex<BTreeMap>` which made
//! every `begin`/`finish` serialize.
//!
//! Layout: a fixed table of [`SHARDS`] cache-line-sized shards of
//! [`SLOTS_PER_SHARD`] atomic slots each. A slot holds either a read
//! timestamp or the [`EMPTY`] sentinel. Each thread is assigned a home shard
//! (round-robin at first use), so in the common case `begin` is one
//! compare-and-swap on an otherwise-idle cache line and `finish` is one
//! store. If every slot is taken — more concurrent transactions than slots,
//! e.g. thousands of pinned snapshots — registrations spill into a mutexed
//! overflow map; the spillover is counted so the fast path can skip the lock
//! entirely when the overflow is empty.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Sentinel marking a free slot. Registered timestamps are clamped one below
/// it, which is semantically free: a `u64::MAX` read timestamp constrains no
/// minimum.
pub const EMPTY: u64 = u64::MAX;

/// Shards in the table. Each is one 64-byte cache line of slots.
const SHARDS: usize = 64;

/// Slots per shard (8 × `u64` = one cache line).
const SLOTS_PER_SHARD: usize = 8;

/// One cache line of active-transaction slots, plus (on its own second
/// cache line, thanks to the alignment padding) an occupancy count that
/// lets the OAT scan skip shards with no registrations at all.
#[repr(align(64))]
struct Shard {
    slots: [AtomicU64; SLOTS_PER_SHARD],
    /// Number of occupied slots. Incremented *before* the slot CAS in
    /// `register` and decremented *after* the slot store in `unregister`,
    /// so a scanner reading 0 is guaranteed the shard held no registration
    /// that had completed before the read — it may only miss registrations
    /// still in flight, whose timestamps are bounded by the clock's current
    /// lower bound and therefore cannot lower the OAT (see
    /// [`ActiveTxTable::oat`]).
    used: AtomicUsize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            slots: std::array::from_fn(|_| AtomicU64::new(EMPTY)),
            used: AtomicUsize::new(0),
        }
    }
}

/// Handle returned by [`ActiveTxTable::register`]; required to unregister.
///
/// Copyable so transaction objects can store it inline; callers must
/// unregister exactly once (a double-unregister of a `Slot` token could wipe
/// a later registration that reused the slot — the engine's `finished` flag
/// enforces the discipline, as it did for the serial-keyed map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveToken {
    /// Fast path: flat slot index into the shard table.
    Slot(u32),
    /// Spillover: key into the overflow map (the registration serial).
    Overflow(u64),
}

/// The per-node active-transaction table. See the module docs.
pub struct ActiveTxTable {
    shards: Vec<Shard>,
    /// Spillover registrations: serial → read timestamp.
    overflow: Mutex<BTreeMap<u64, u64>>,
    /// Number of entries in `overflow`, so [`ActiveTxTable::oat`] can skip
    /// the lock (and stay wait-free) while nothing has spilled.
    overflow_len: AtomicUsize,
}

impl Default for ActiveTxTable {
    fn default() -> Self {
        ActiveTxTable::new()
    }
}

impl ActiveTxTable {
    /// Creates an empty table.
    pub fn new() -> ActiveTxTable {
        ActiveTxTable {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            overflow: Mutex::new(BTreeMap::new()),
            overflow_len: AtomicUsize::new(0),
        }
    }

    /// The calling thread's home shard, assigned round-robin at first use
    /// (same ordinal scheme as the old-version cursor shards).
    fn home_shard() -> usize {
        farm_memory::thread_ordinal() % SHARDS
    }

    /// Publishes an active transaction with the given read timestamp.
    /// `serial` is only used to key the overflow map when the table is full.
    ///
    /// The common case is one CAS into a free slot of the caller's home
    /// shard; the shard is effectively thread-private, so the CAS does not
    /// contend.
    pub fn register(&self, serial: u64, read_ts: u64) -> ActiveToken {
        let ts = read_ts.min(EMPTY - 1);
        let home = Self::home_shard();
        for probe in 0..SHARDS {
            let shard = &self.shards[(home + probe) % SHARDS];
            // Publish intent before touching the slots, so an OAT scan that
            // observes `used == 0` can safely skip the whole shard: any
            // registration it might thereby miss has not completed yet.
            shard.used.fetch_add(1, Ordering::AcqRel);
            for (i, slot) in shard.slots.iter().enumerate() {
                if slot.load(Ordering::Relaxed) == EMPTY
                    && slot
                        .compare_exchange(EMPTY, ts, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    let flat = ((home + probe) % SHARDS) * SLOTS_PER_SHARD + i;
                    return ActiveToken::Slot(flat as u32);
                }
            }
            // No free slot here: withdraw the intent and try the next shard.
            shard.used.fetch_sub(1, Ordering::AcqRel);
        }
        // Every slot taken: spill over.
        self.overflow.lock().insert(serial, ts);
        self.overflow_len.fetch_add(1, Ordering::Release);
        ActiveToken::Overflow(serial)
    }

    /// Replaces the read timestamp of an existing registration (one release
    /// store for slot tokens). Used by `begin`, which first registers a
    /// conservative placeholder (the clock's current lower bound) and then
    /// raises it to the acquired read timestamp — so a control round that
    /// interleaves with `begin` can only *under*-estimate the OAT, never
    /// advance it past a timestamp that is about to become live.
    pub fn update(&self, token: ActiveToken, read_ts: u64) {
        let ts = read_ts.min(EMPTY - 1);
        match token {
            ActiveToken::Slot(flat) => {
                let shard = flat as usize / SLOTS_PER_SHARD;
                let slot = flat as usize % SLOTS_PER_SHARD;
                self.shards[shard].slots[slot].store(ts, Ordering::Release);
            }
            ActiveToken::Overflow(serial) => {
                self.overflow.lock().insert(serial, ts);
            }
        }
    }

    /// Withdraws a registration. One release store (plus the occupancy
    /// decrement) for slot tokens.
    pub fn unregister(&self, token: ActiveToken) {
        match token {
            ActiveToken::Slot(flat) => {
                let shard = flat as usize / SLOTS_PER_SHARD;
                let slot = flat as usize % SLOTS_PER_SHARD;
                self.shards[shard].slots[slot].store(EMPTY, Ordering::Release);
                // After the slot store: the count never reads 0 while a
                // completed registration is still in its slot.
                self.shards[shard].used.fetch_sub(1, Ordering::AcqRel);
            }
            ActiveToken::Overflow(serial) => {
                if self.overflow.lock().remove(&serial).is_some() {
                    self.overflow_len.fetch_sub(1, Ordering::Release);
                }
            }
        }
    }

    /// The oldest active read timestamp, or `None` when no transaction is
    /// registered — the node's OAT contribution. A wait-free scan that
    /// reads one occupancy word per shard and only walks the slots of
    /// shards that hold registrations: with T worker threads the scan costs
    /// `64 + 8·min(T, 64)` loads instead of a fixed 512, which is what made
    /// the 4/8-thread fig16 sweep pay more per control round than the
    /// global-mutex baseline it replaced.
    ///
    /// Skipping a shard whose `used` reads 0 is safe: `register` raises the
    /// count *before* claiming a slot, so only a registration that has not
    /// yet returned can be missed — and `begin` publishes its conservative
    /// placeholder (≤ the clock's current lower bound) through exactly this
    /// path before acquiring its timestamp, so a missed in-flight
    /// registration is always covered by the clock lower bound that
    /// [`NodeHandle::oat_local`](farm_kernel::NodeHandle::oat_local) also
    /// takes the minimum with.
    pub fn oat(&self) -> Option<u64> {
        let mut min: u64 = EMPTY;
        for shard in &self.shards {
            if shard.used.load(Ordering::Acquire) == 0 {
                continue;
            }
            for slot in &shard.slots {
                min = min.min(slot.load(Ordering::Acquire));
            }
        }
        if self.overflow_len.load(Ordering::Acquire) > 0 {
            if let Some(&ts) = self.overflow.lock().values().min() {
                min = min.min(ts);
            }
        }
        if min == EMPTY {
            None
        } else {
            Some(min)
        }
    }

    /// Number of current registrations (slots + overflow). For tests and
    /// reporting; counts concurrently-changing slots, so only exact when the
    /// table is quiescent.
    pub fn len(&self) -> usize {
        let slots = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .filter(|s| s.load(Ordering::Acquire) != EMPTY)
            .count();
        slots + self.overflow_len.load(Ordering::Acquire)
    }

    /// Whether no transaction is currently registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ActiveTxTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTxTable")
            .field("active", &self.len())
            .field("oat", &self.oat())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn register_unregister_and_oat() {
        let t = ActiveTxTable::new();
        assert_eq!(t.oat(), None);
        let a = t.register(1, 100);
        let b = t.register(2, 50);
        let c = t.register(3, 200);
        assert_eq!(t.oat(), Some(50));
        assert_eq!(t.len(), 3);
        t.unregister(b);
        assert_eq!(t.oat(), Some(100));
        t.unregister(a);
        t.unregister(c);
        assert_eq!(t.oat(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn max_timestamp_is_clamped_not_confused_with_empty() {
        let t = ActiveTxTable::new();
        let tok = t.register(1, u64::MAX);
        assert_eq!(t.oat(), Some(u64::MAX - 1));
        assert_eq!(t.len(), 1);
        t.unregister(tok);
        assert_eq!(t.oat(), None);
    }

    #[test]
    fn spills_into_overflow_when_slots_exhausted() {
        let t = ActiveTxTable::new();
        let capacity = SHARDS * SLOTS_PER_SHARD;
        let mut tokens: Vec<ActiveToken> = (0..capacity as u64)
            .map(|i| t.register(i, 1_000 + i))
            .collect();
        assert!(tokens.iter().all(|t| matches!(t, ActiveToken::Slot(_))));
        // The next registrations must spill, and the overflow minimum must
        // still feed the OAT.
        let spill = t.register(9_999, 5);
        assert!(matches!(spill, ActiveToken::Overflow(9_999)));
        assert_eq!(t.oat(), Some(5));
        assert_eq!(t.len(), capacity + 1);
        t.unregister(spill);
        assert_eq!(t.oat(), Some(1_000));
        for tok in tokens.drain(..) {
            t.unregister(tok);
        }
        assert_eq!(t.oat(), None);
    }

    #[test]
    fn concurrent_register_unregister_is_exact_when_quiescent() {
        let t = Arc::new(ActiveTxTable::new());
        let handles: Vec<_> = (0..8u64)
            .map(|thread| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let serial = thread * 1_000_000 + i;
                        let tok = t.register(serial, 10 + serial);
                        std::hint::spin_loop();
                        t.unregister(tok);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.oat(), None, "all registrations withdrawn");
        assert!(t.is_empty());
    }

    #[test]
    fn occupancy_skip_never_hides_a_completed_registration() {
        // Hammer register/unregister from many threads while a scanner
        // checks that a permanently registered floor is never lost to the
        // shard-skip fast path, and that the table drains back to empty.
        let t = Arc::new(ActiveTxTable::new());
        let stop = Arc::new(AtomicBool::new(false));
        let floor = t.register(0, 42);
        let writers: Vec<_> = (0..4u64)
            .map(|thread| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let tok = t.register(thread * 1_000_000 + i, 1_000 + i);
                        t.unregister(tok);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            assert_eq!(
                t.oat(),
                Some(42),
                "shard-skip scan lost the completed floor registration"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        t.unregister(floor);
        assert_eq!(t.oat(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn oat_scan_never_reports_below_any_live_registration() {
        // Writers register monotonically increasing timestamps; a concurrent
        // scanner must never observe an OAT above a timestamp that is
        // currently registered (it may observe one below — a registration
        // may complete right after the scan).
        let t = Arc::new(ActiveTxTable::new());
        let stop = Arc::new(AtomicBool::new(false));
        let floor = t.register(0, 100); // permanent lower bound
        let writers: Vec<_> = (0..4u64)
            .map(|thread| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let tok = t.register(thread * 1_000_000 + i, 200 + i);
                        t.unregister(tok);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..10_000 {
            let oat = t.oat().expect("floor registration always present");
            assert!(oat <= 100, "OAT {oat} exceeds the live floor (ts=100)");
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        t.unregister(floor);
    }
}
