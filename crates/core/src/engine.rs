//! Engine assembly: the cluster-wide [`Engine`] and per-machine
//! [`NodeEngine`] handles.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use farm_kernel::{Cluster, ConfigRecord, EventKind, EventLog, NodeHandle, RecoveryHooks};
use farm_memory::{Addr, Region, RegionId};
use farm_net::{CompletionSet, NodeId, OneSidedMeter, Verb};
use parking_lot::Mutex;

use crate::active::{ActiveToken, ActiveTxTable};
use crate::commit::backlog::{Backlog, PendingInstall};
use crate::error::{AbortReason, TxError};
use crate::opts::{EngineConfig, TxOptions};
use crate::stats::{EngineStats, EngineStatsSnapshot};
use crate::tx::{CommitInfo, Transaction};

/// A record appended to replicated in-memory operation logs when the engine
/// runs in operation-logging mode (Section 5.6).
#[derive(Debug, Clone)]
pub struct OpLogRecord {
    /// Coordinator node.
    pub coordinator: NodeId,
    /// Write timestamp of the committed transaction.
    pub write_ts: u64,
    /// Addresses written (the "transaction description and inputs").
    pub writes: Vec<Addr>,
}

/// Bounded exponential backoff for [`NodeEngine::run_transaction`]: how many
/// commit attempts to make and how long to sleep between them. The defaults
/// (64 attempts, 50 µs doubling to a 5 ms cap) ride out both ordinary
/// conflicts and a full lease-expiry + reconfiguration window, so a machine
/// failure shows up to the application as latency rather than an error.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum commit attempts before the last error surfaces to the caller.
    pub max_attempts: u32,
    /// Sleep after the first absorbed retry; doubles on each further retry.
    pub base_backoff: Duration,
    /// Cap on the per-retry sleep (the doubling stops here).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 64,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }
}

/// The per-machine transaction engine. Application threads whose home is this
/// machine obtain transactions here; the thread then acts as the coordinator
/// for the distributed commit, exactly as in FaRM's symmetric model.
pub struct NodeEngine {
    id: NodeId,
    cluster: Arc<Cluster>,
    handle: Arc<NodeHandle>,
    config: EngineConfig,
    pub(crate) meter: OneSidedMeter,
    /// Active local transactions: a sharded atomic slot table. `begin` and
    /// `finish` are one atomic operation each, and the OAT provider is a
    /// wait-free minimum scan — no node-global lock on the per-op path.
    pub(crate) active: Arc<ActiveTxTable>,
    next_serial: AtomicU64,
    pub(crate) stats: EngineStats,
    /// Operation log kept at this node when operation logging is enabled
    /// (this node acting as a log replica): a bounded ring of the most
    /// recent [`EngineConfig::op_log_capacity`] records.
    op_log: Mutex<VecDeque<OpLogRecord>>,
    /// Records currently held in `op_log`, maintained alongside it so
    /// [`NodeEngine::op_log_len`] is an O(1) atomic load.
    op_log_len: AtomicUsize,
    /// Records ever appended to `op_log` (monotone; not capped by the ring).
    op_log_appended: AtomicU64,
    /// Cluster-shared commit-completion backlog (pending installs, backup
    /// redo logs, truncation watermarks). See [`crate::commit::backlog`].
    backlog: Arc<Backlog>,
    /// This engine's committed-but-not-installed transactions, drained
    /// opportunistically (at `begin`, in pipeline dead time, by the
    /// background thread) and raced by helping readers.
    installs: Mutex<VecDeque<Arc<PendingInstall>>>,
    /// O(1) emptiness check for the hot path.
    installs_len: AtomicUsize,
    alive: AtomicBool,
}

impl NodeEngine {
    fn new(
        cluster: Arc<Cluster>,
        id: NodeId,
        config: EngineConfig,
        backlog: Arc<Backlog>,
    ) -> Arc<Self> {
        let handle = Arc::clone(cluster.node(id));
        let active = Arc::new(ActiveTxTable::new());
        // Register the OAT provider: the oldest active local transaction's
        // read timestamp (Figure 9), computed by a wait-free slot scan.
        let active_for_oat = Arc::clone(&active);
        handle.set_oat_provider(Arc::new(move || active_for_oat.oat()));
        let meter = OneSidedMeter::new(Arc::clone(handle.stats()), config.latency);
        Arc::new(NodeEngine {
            id,
            cluster,
            handle,
            config,
            meter,
            active,
            next_serial: AtomicU64::new(1),
            stats: EngineStats::default(),
            op_log: Mutex::new(VecDeque::new()),
            op_log_len: AtomicUsize::new(0),
            op_log_appended: AtomicU64::new(0),
            backlog,
            installs: Mutex::new(VecDeque::new()),
            installs_len: AtomicUsize::new(0),
            alive: AtomicBool::new(true),
        })
    }

    /// This engine's machine id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The kernel-level handle of this machine.
    pub fn handle(&self) -> &Arc<NodeHandle> {
        &self.handle
    }

    /// The cluster this engine runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Per-node statistics snapshot.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of operation-log records currently stored at this node
    /// (operation-logging mode only). O(1): an atomic load, no lock.
    pub fn op_log_len(&self) -> usize {
        self.op_log_len.load(Ordering::Acquire)
    }

    /// Total operation-log records ever appended at this node, including
    /// those the bounded ring has since evicted.
    pub fn op_log_appended(&self) -> u64 {
        self.op_log_appended.load(Ordering::Acquire)
    }

    /// Appends one record to this node's operation log, evicting the oldest
    /// record once the configured ring capacity is reached (so long
    /// operation-logging runs do not grow memory unboundedly).
    pub(crate) fn append_op_log(&self, record: OpLogRecord) {
        let mut log = self.op_log.lock();
        log.push_back(record);
        if log.len() > self.config.op_log_capacity.max(1) {
            log.pop_front();
        }
        self.op_log_len.store(log.len(), Ordering::Release);
        self.op_log_appended.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether this node is still alive (not killed by fault injection).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire) && self.handle.is_alive()
    }

    /// Starts a transaction with default options (strict serializability).
    pub fn begin(self: &Arc<Self>) -> Transaction {
        self.begin_with(TxOptions::default())
    }

    /// Starts a transaction with explicit options. Pending COMMIT-PRIMARY
    /// installs of this engine's earlier early-acked commits are drained
    /// first (off the commit critical path — this is the opportunistic
    /// stage-2 completion point of the lifecycle).
    pub fn begin_with(self: &Arc<Self>, opts: TxOptions) -> Transaction {
        self.drain_pending_installs();
        Transaction::start(Arc::clone(self), opts)
    }

    /// Runs `body` in a transaction, transparently retrying retryable aborts
    /// (conflicts *and* availability errors — a dead primary, a region
    /// draining for reconfiguration) with the default [`RetryPolicy`]'s
    /// bounded exponential backoff. Machine failures surface to the caller
    /// only as latency: the loop outlasts lease expiry plus reconfiguration,
    /// by which time a promoted backup serves the affected regions again.
    ///
    /// `body` must be idempotent up to the transaction (it may run several
    /// times, each against a fresh snapshot). Returns the body's value and
    /// the commit info of the attempt that committed.
    pub fn run_transaction<T>(
        self: &Arc<Self>,
        opts: TxOptions,
        body: impl FnMut(&mut Transaction) -> Result<T, TxError>,
    ) -> Result<(T, CommitInfo), TxError> {
        self.run_transaction_with(RetryPolicy::default(), opts, body)
    }

    /// [`NodeEngine::run_transaction`] with an explicit retry policy.
    pub fn run_transaction_with<T>(
        self: &Arc<Self>,
        policy: RetryPolicy,
        opts: TxOptions,
        mut body: impl FnMut(&mut Transaction) -> Result<T, TxError>,
    ) -> Result<(T, CommitInfo), TxError> {
        let mut backoff = policy.base_backoff;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = {
                let mut tx = self.begin_with(opts);
                match body(&mut tx) {
                    // Dropping an uncommitted transaction on the error path
                    // releases its registration and rolls allocations back.
                    Err(e) => Err(e),
                    Ok(value) => tx.commit().map(|info| (value, info)),
                }
            };
            match result {
                Ok(out) => return Ok(out),
                Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                    EngineStats::bump(&self.stats.retries_absorbed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff = (backoff * 2).min(policy.max_backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit-completion backlog (stages 2 and 3 of the commit lifecycle)
    // ------------------------------------------------------------------

    /// The cluster-shared commit-completion backlog.
    pub(crate) fn backlog(&self) -> &Backlog {
        &self.backlog
    }

    /// Queues an early-acked commit's leftover installs. An install with no
    /// destinations (pure allocations) completes immediately, releasing its
    /// truncation reservation.
    pub(crate) fn enqueue_install(&self, install: PendingInstall) {
        if install.dest_count() == 0 {
            self.backlog
                .trunc_complete(install.coordinator(), install.write_ts());
            return;
        }
        let install = Arc::new(install);
        // Publish the address index before the queue entry so a reader that
        // observes the still-held locks can already find (and help) it.
        self.backlog.index_insert(&install);
        let mut queue = self.installs.lock();
        queue.push_back(install);
        // Under the queue lock, so the drain's bulk subtraction stays
        // consistent with the queue contents.
        self.installs_len.fetch_add(1, Ordering::Release);
    }

    /// Drains this engine's pending COMMIT-PRIMARY installs: every
    /// destination not already claimed by a helper is processed now.
    /// Returns the number of destination installs this call performed. An
    /// empty backlog costs one atomic load.
    pub fn drain_pending_installs(&self) -> usize {
        self.drain_pending_installs_up_to(usize::MAX)
    }

    /// Like [`NodeEngine::drain_pending_installs`], but claims at most
    /// `limit` queued commits per call. Pipeline-pool workers drain in
    /// bounded chunks so a deep backlog cannot make them miss the next
    /// flight deadline; a single pipeline's dead time uses the full drain.
    pub fn drain_pending_installs_up_to(&self, limit: usize) -> usize {
        if limit == 0 || self.installs_len.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut done = 0;
        // Take the claimed chunk under one lock; the installs themselves run
        // outside it so concurrent enqueuers never wait on install work.
        let drained: Vec<Arc<PendingInstall>> = {
            let mut queue = self.installs.lock();
            let take = queue.len().min(limit);
            let drained: Vec<Arc<PendingInstall>> = queue.drain(..take).collect();
            self.installs_len
                .fetch_sub(drained.len(), Ordering::Release);
            drained
        };
        for install in drained {
            for di in 0..install.dest_count() {
                if install.install_dest(self, &self.backlog, di) {
                    done += 1;
                }
            }
        }
        done
    }

    /// Number of commits whose installs are still queued at this engine.
    pub fn pending_installs(&self) -> usize {
        self.installs_len.load(Ordering::Acquire)
    }

    /// Survivor-side recovery of a dead coordinator's in-flight commits.
    /// Everything queued here is *decided*: the transaction reached
    /// durability (all COMMIT-BACKUP acks) before the coordinator early-acked
    /// it, so survivors roll it forward from the replicated redo state —
    /// installs run (skipping dead destinations), locks release, and the
    /// coordinator's truncation watermark is force-delivered to every node so
    /// backup redo logs holding its records can truncate. Transactions that
    /// had *not* reached durability never enqueued anything: their drivers
    /// unwind with [`AbortReason::CoordinatorDead`], releasing any locks they
    /// took. Between the two, a dead coordinator leaks no lock.
    ///
    /// Returns the number of decided transactions rolled forward. Idempotent
    /// (installs are claim-based; watermark delivery is monotone).
    pub fn recover_dead_coordinator(&self) -> usize {
        let orphans = self.pending_installs();
        self.drain_pending_installs();
        if orphans > 0 {
            EngineStats::add(&self.stats.orphans_rolled_forward, orphans as u64);
        }
        for dest in self.cluster.nodes() {
            self.backlog.deliver_truncation(self, dest.id(), true);
        }
        orphans
    }

    /// A reader / locker / validator hit a locked slot: if the lock belongs
    /// to an already-durable transaction, complete (or observe another
    /// thread completing) its install. Returns whether a pending install
    /// existed — callers re-read instead of backing off when it did.
    pub(crate) fn help_install(&self, addr: Addr) -> bool {
        self.backlog.help_install(self, addr)
    }

    /// This coordinator's current `truncate_below` watermark: every one of
    /// its committed transactions at or below this write timestamp has
    /// completed its installs. Monotone.
    pub fn truncation_watermark(&self) -> u64 {
        self.backlog.watermark(self.id)
    }

    /// The watermark already delivered (piggybacked or flushed) from this
    /// coordinator to `dest`.
    pub fn delivered_truncation(&self, dest: NodeId) -> u64 {
        self.backlog.delivered(self.id, dest)
    }

    /// Untruncated backup redo-log entries currently held at this node.
    pub fn backup_log_len(&self) -> usize {
        self.backlog.log_len(self.id)
    }

    /// Starts a read-only transaction at an explicit (possibly past) read
    /// timestamp — a *stale snapshot read*, used by the slave side of
    /// parallel distributed read-only transactions (Section 4.6). Fails if
    /// the requested timestamp is below this node's `GC_local`, because old
    /// versions that old may already have been reclaimed.
    pub fn begin_stale_readonly(self: &Arc<Self>, read_ts: u64) -> Result<Transaction, TxError> {
        let gc_local = self.handle.gc_local();
        if read_ts < gc_local {
            return Err(TxError::Aborted(AbortReason::SnapshotTooStale {
                requested: read_ts,
                gc_local,
            }));
        }
        Ok(Transaction::start_stale(Arc::clone(self), read_ts))
    }

    /// A region whose primary is this machine, if any — used for
    /// locality-aware allocation (FaRM exploits locality by co-locating the
    /// coordinator with the primaries it writes).
    pub fn home_region(&self) -> Option<RegionId> {
        self.cluster.primaries_on(self.id).into_iter().next()
    }

    // ------------------------------------------------------------------
    // Internal helpers used by the transaction implementation.
    // ------------------------------------------------------------------

    pub(crate) fn next_serial(&self) -> u64 {
        self.next_serial.fetch_add(1, Ordering::Relaxed)
    }

    /// Publishes an active transaction (one uncontended CAS into the
    /// caller's home shard of the slot table). The returned token withdraws
    /// the registration; `serial` only keys the overflow spillover.
    pub(crate) fn register_active(&self, serial: u64, read_ts: u64) -> ActiveToken {
        self.active.register(serial, read_ts)
    }

    /// Raises a registration's timestamp from its conservative placeholder
    /// to the transaction's acquired read timestamp (one atomic store).
    pub(crate) fn update_active(&self, token: ActiveToken, read_ts: u64) {
        self.active.update(token, read_ts);
    }

    /// Withdraws an active-transaction registration (one atomic store).
    pub(crate) fn unregister_active(&self, token: ActiveToken) {
        self.active.unregister(token);
    }

    /// Number of currently registered active transactions (tests/reporting).
    pub fn active_transactions(&self) -> usize {
        self.active.len()
    }

    /// Resolves the primary replica of the region holding `addr`, along with
    /// the primary's node id. Fails retryably while the region is draining
    /// for a reconfiguration or its primary is dead awaiting promotion —
    /// both clear within one reconfiguration, so a retry loop rides them
    /// out.
    pub(crate) fn primary_region_of(&self, addr: Addr) -> Result<(NodeId, Arc<Region>), TxError> {
        if self.cluster.is_region_blocked(addr.region) {
            return Err(TxError::Aborted(AbortReason::Reconfiguring(addr.region)));
        }
        let primary = self
            .cluster
            .primary_of(addr.region)
            .ok_or(TxError::Aborted(AbortReason::BadAddress(addr)))?;
        if !self.cluster.node(primary).is_alive() {
            return Err(TxError::Aborted(AbortReason::NodeUnavailable(addr)));
        }
        Ok((
            primary,
            self.cluster.node(primary).regions().ensure(addr.region),
        ))
    }

    /// Backup replicas of the region holding `addr` (may be empty).
    pub(crate) fn backups_of(&self, addr: Addr) -> Vec<NodeId> {
        let replicas = self.cluster.replicas_of(addr.region);
        match replicas.split_first() {
            Some((_, rest)) => rest.to_vec(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Debug for NodeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeEngine").field("id", &self.id).finish()
    }
}

/// The engine's reactions to control-plane events, forming the data-plane
/// half of failure recovery:
///
/// * **Promotion replay** — when a backup is promoted to primary, it replays
///   its untruncated redo-log entries for the region before serving, so
///   committed (early-acked) transactions whose COMMIT-PRIMARY never landed
///   at the failed primary are recovered from the log, never lost and never
///   observed torn.
/// * **Orphan resolution** — when a new configuration commits, survivors
///   reconstruct the outcomes a dead coordinator left in flight: decided
///   transactions roll forward from the replicated redo state, undecided
///   ones unwind in their own drivers, and the dead coordinator's truncation
///   watermark is force-delivered so backup logs drain.
/// * **Log catch-up** — when background re-replication finishes its state
///   copy onto a new backup, commits that raced the copy are replayed onto
///   it from the surviving redo logs, restoring full redundancy.
struct EngineHooks {
    backlog: Arc<Backlog>,
    nodes: Vec<Arc<NodeEngine>>,
    events: EventLog,
}

impl RecoveryHooks for EngineHooks {
    fn on_region_promoted(&self, region: RegionId, new_primary: NodeId) {
        self.backlog.recover_region(region, new_primary);
    }

    fn on_config_committed(&self, config: &ConfigRecord) {
        for engine in &self.nodes {
            if config.contains(engine.id()) || engine.handle().is_alive() {
                continue;
            }
            let rolled_forward = engine.recover_dead_coordinator();
            if rolled_forward > 0 {
                self.events.record(EventKind::OrphansRecovered {
                    coordinator: engine.id(),
                    rolled_forward,
                });
            }
        }
    }

    fn on_backup_rereplicated(&self, region: RegionId, new_backup: NodeId) {
        // Any live node can serve as the catch-up source: the redo state is
        // read from every surviving replicated log, not one replica.
        let Some(src) = self
            .nodes
            .iter()
            .find(|n| n.id() != new_backup && n.is_alive())
        else {
            return;
        };
        let backlog = Arc::clone(&self.backlog);
        let mut set = CompletionSet::new(src.meter.latency_model());
        set.issue(new_backup, Verb::RdmaWrite, move || {
            backlog.catch_up_region(region, new_backup)
        });
        let completions = set.complete(src.config().dispatch, Some(src.meter.stats()));
        let intents: usize = completions.into_iter().map(|c| c.value).sum();
        if intents > 0 {
            EngineStats::bump(&src.stats.backups_caught_up);
            self.events.record(EventKind::LogCatchUp {
                region,
                new_backup,
                intents,
            });
        }
    }
}

/// One GC pass on one node: reclaim old-version blocks below the safe point
/// and sweep tombstoned slots the point has passed. Shared by the background
/// GC thread and [`Engine::collect_garbage_now`].
fn collect_node_garbage(handle: &Arc<NodeHandle>) {
    let gc = handle.gc_safe_point();
    if gc == 0 {
        return;
    }
    handle.old_versions().collect(gc);
    for region_id in handle.regions().hosted() {
        if let Some(region) = handle.regions().get(region_id) {
            region.sweep_tombstones(gc);
        }
    }
}

/// The cluster-wide engine: one [`NodeEngine`] per machine plus a background
/// garbage-collection driver that reclaims old-version blocks below each
/// node's GC safe point.
pub struct Engine {
    cluster: Arc<Cluster>,
    config: EngineConfig,
    nodes: Vec<Arc<NodeEngine>>,
    stop: Arc<AtomicBool>,
    gc_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Builds the engine on an already-started cluster.
    pub fn start(cluster: Arc<Cluster>, config: EngineConfig) -> Arc<Engine> {
        let backlog = Arc::new(Backlog::new(cluster.nodes().to_vec()));
        let nodes: Vec<Arc<NodeEngine>> = cluster
            .nodes()
            .iter()
            .map(|n| NodeEngine::new(Arc::clone(&cluster), n.id(), config, Arc::clone(&backlog)))
            .collect();
        cluster.set_recovery_hooks(Arc::new(EngineHooks {
            backlog: Arc::clone(&backlog),
            nodes: nodes.clone(),
            events: cluster.events().clone(),
        }));
        let engine = Arc::new(Engine {
            cluster: Arc::clone(&cluster),
            config,
            nodes,
            stop: Arc::new(AtomicBool::new(false)),
            gc_thread: Mutex::new(None),
        });
        // Background GC driver; also drains straggler installs and flushes
        // truncation watermarks that sat idle (no outgoing verb to piggyback
        // on).
        let stop = Arc::clone(&engine.stop);
        let nodes_for_gc: Vec<Arc<NodeEngine>> = engine.nodes.clone();
        let interval = config.gc_interval;
        let idle = config.truncate_idle_flush;
        let handle = std::thread::Builder::new()
            .name("farm-gc".into())
            .spawn(move || {
                loop {
                    // Sleep first (in bounded slices so `shutdown` never
                    // waits out a long GC interval to join this thread): a
                    // pass at startup has nothing to do, and engines
                    // configured with a long interval expect no background
                    // interference at all.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop.load(Ordering::Acquire) {
                        let slice = remaining.min(std::time::Duration::from_millis(10));
                        std::thread::sleep(slice);
                        remaining -= slice;
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    for node in &nodes_for_gc {
                        // Installs and truncation flushes run for dead nodes
                        // too: survivors help a dead coordinator's decided
                        // commits to completion (the replicated state needed
                        // is cluster-shared), so locks never wait on an
                        // explicit reconfiguration to release.
                        node.drain_pending_installs();
                        node.backlog.flush_idle(node, idle);
                        if node.is_alive() {
                            collect_node_garbage(node.handle());
                        }
                    }
                }
            })
            .expect("spawn GC thread");
        *engine.gc_thread.lock() = Some(handle);
        engine
    }

    /// Convenience: start a fresh cluster with `cluster_cfg` and the engine
    /// on top of it.
    pub fn start_cluster(
        cluster_cfg: farm_kernel::ClusterConfig,
        config: EngineConfig,
    ) -> Arc<Engine> {
        let cluster = Cluster::start(cluster_cfg);
        Self::start(cluster, config)
    }

    /// The engine of one machine.
    pub fn node(&self, id: NodeId) -> Arc<NodeEngine> {
        Arc::clone(&self.nodes[id.index()])
    }

    /// All per-machine engines.
    pub fn nodes(&self) -> &[Arc<NodeEngine>] {
        &self.nodes
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Aggregated statistics across every machine.
    pub fn aggregate_stats(&self) -> EngineStatsSnapshot {
        self.nodes
            .iter()
            .map(|n| n.stats())
            .fold(EngineStatsSnapshot::default(), |acc, s| acc.merged(&s))
    }

    /// Runs one old-version GC pass (including tombstone sweeps) on every
    /// node immediately. Pending installs drain first so tombstones laid
    /// down by early-acked frees are visible to the sweep.
    pub fn collect_garbage_now(&self) {
        for node in &self.nodes {
            if node.is_alive() {
                node.drain_pending_installs();
            }
            collect_node_garbage(node.handle());
        }
    }

    /// Settles the commit-completion backlog cluster-wide: every pending
    /// COMMIT-PRIMARY install is applied and every truncation watermark is
    /// force-delivered to every destination (each undelivered watermark
    /// costs one standalone flush message, exactly as the idle flusher would
    /// pay). After this, all committed state is installed at primaries and
    /// mirrored at backups — the quiescent point benchmarks and tests settle
    /// to before inspecting replicas.
    pub fn quiesce(&self) {
        // Dead nodes settle too: their queued (decided) installs are rolled
        // forward by this surviving thread and their watermarks delivered,
        // so a post-failure quiescent cluster holds no leaked locks and no
        // untruncated redo-log entries.
        for node in &self.nodes {
            node.drain_pending_installs();
        }
        for node in &self.nodes {
            for dest in self.cluster.nodes() {
                node.backlog.deliver_truncation(node, dest.id(), true);
            }
        }
    }

    /// Stops the background GC thread (the cluster keeps running). The
    /// commit-completion backlog is settled first so no locks or undelivered
    /// truncations outlive the engine's background machinery.
    pub fn shutdown(&self) {
        self.quiesce();
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.gc_thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.gc_thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.nodes.len())
            .field("mode", &self.config.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_kernel::ClusterConfig;

    #[test]
    fn engine_starts_on_cluster_and_reports_stats() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
        assert_eq!(engine.nodes().len(), 3);
        let stats = engine.aggregate_stats();
        assert_eq!(stats.commits(), 0);
        assert!(engine.node(NodeId(1)).home_region().is_some());
        engine.shutdown();
    }

    #[test]
    fn op_log_is_a_bounded_ring_with_o1_len() {
        let config = EngineConfig {
            operation_logging: true,
            op_log_capacity: 4,
            ..EngineConfig::multi_version()
        };
        let engine = Engine::start_cluster(ClusterConfig::test(3), config);
        let node = engine.node(NodeId(0));
        let region = node.home_region().unwrap();
        let mut tx = node.begin();
        let addr = tx.alloc_in(region, vec![0u8; 8]).unwrap();
        tx.commit().unwrap();
        // Commit more read-write transactions than the ring holds.
        for i in 0..32u8 {
            let mut tx = node.begin();
            tx.write(addr, vec![i; 8]).unwrap();
            tx.commit().unwrap();
        }
        let stored: usize = engine.nodes().iter().map(|n| n.op_log_len()).sum();
        let appended: u64 = engine.nodes().iter().map(|n| n.op_log_appended()).sum();
        assert!(appended >= 33, "replicated op-log appends happened");
        assert!(
            stored <= 3 * 4,
            "ring capacity 4 per node exceeded: {stored} records stored"
        );
        assert!(stored > 0);
        engine.shutdown();
    }

    #[test]
    fn stale_readonly_below_gc_local_is_rejected() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        // Drive some control rounds so GC_local advances well past 1 ns.
        for _ in 0..4 {
            engine.cluster().control_round();
        }
        let node = engine.node(NodeId(1));
        let err = node.begin_stale_readonly(1).unwrap_err();
        assert!(matches!(
            err,
            TxError::Aborted(AbortReason::SnapshotTooStale { .. })
        ));
        engine.shutdown();
    }
}
