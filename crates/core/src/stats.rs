//! Per-node engine statistics (commits, aborts, latencies, waits) and
//! per-phase commit-protocol counters (batches sent, batch sizes, unwinds).

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-node counters. Benchmarks snapshot and diff them.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Committed read-write transactions.
    pub commits_rw: AtomicU64,
    /// Committed read-only transactions.
    pub commits_ro: AtomicU64,
    /// Aborts during execution (reads of locked objects, missing old
    /// versions, eager validation, stale snapshots).
    pub aborts_execution: AtomicU64,
    /// Aborts in the LOCK phase.
    pub aborts_lock: AtomicU64,
    /// Aborts in read validation.
    pub aborts_validation: AtomicU64,
    /// Aborts because old-version memory was exhausted (MV-ABORT policy).
    pub aborts_oldver_memory: AtomicU64,
    /// Total nanoseconds spent in commit-time uncertainty waits.
    pub write_wait_ns: AtomicU64,
    /// Number of commit-time uncertainty waits.
    pub write_waits: AtomicU64,
    /// Nanoseconds of commit-time uncertainty wait performed **while
    /// COMMIT-BACKUP replication was in flight** (the Figure 4 overlap):
    /// a subset of `write_wait_ns`. Serial dispatch never overlaps, so this
    /// stays 0 there; under pipelined dispatch it approaches `write_wait_ns`.
    pub write_wait_overlapped_ns: AtomicU64,
    /// Old versions allocated.
    pub old_versions_allocated: AtomicU64,
    /// Old-version reads that had to walk the version chain.
    pub old_version_reads: AtomicU64,
    /// Times a writer blocked waiting for old-version memory (MV-BLOCK).
    pub oldver_blocks: AtomicU64,
    /// Times history was truncated due to memory pressure (MV-TRUNCATE).
    pub oldver_truncations: AtomicU64,
    /// Reads that exhausted their bounded-backoff retry budget on a locked
    /// head version and aborted.
    pub read_lock_retries_exhausted: AtomicU64,
    // ---- Batched read-path counters -------------------------------------
    /// `read_many` batches issued (one per destination primary per call).
    pub read_batches: AtomicU64,
    /// Objects carried by all `read_many` batches (mean batch size =
    /// `read_batch_objects / read_batches`).
    pub read_batch_objects: AtomicU64,
    /// Reads served by the local-bypass fast path (coordinator is the
    /// primary of the target region: no network message is metered).
    pub read_local_bypass: AtomicU64,
    // ---- Batched commit-protocol phase counters -------------------------
    /// LOCK batches sent (one per destination primary per commit attempt).
    pub lock_batches: AtomicU64,
    /// Objects carried by all LOCK batches (mean batch size =
    /// `lock_batch_objects / lock_batches`).
    pub lock_batch_objects: AtomicU64,
    /// VALIDATE batches sent (one per destination primary holding unwritten
    /// read-set objects, per commit attempt).
    pub validate_batches: AtomicU64,
    /// Objects carried by all VALIDATE batches (mean batch size =
    /// `validate_batch_objects / validate_batches`).
    pub validate_batch_objects: AtomicU64,
    /// COMMIT-BACKUP batches sent (one per backup destination).
    pub backup_batches: AtomicU64,
    /// COMMIT-PRIMARY batches sent (one per destination primary).
    pub primary_batches: AtomicU64,
    /// TRUNCATE batches sent (one per backup destination). With early-ack
    /// commits this counts only **standalone idle flushes**; piggybacked
    /// watermark deliveries count under `truncations_piggybacked`.
    pub truncate_batches: AtomicU64,
    /// Abort unwinds executed by the commit driver (locks released across
    /// every destination, allocations rolled back).
    pub unwinds: AtomicU64,
    // ---- Early-ack commit lifecycle counters ----------------------------
    /// Commits acknowledged at the end of the critical path (all
    /// COMMIT-BACKUP acks drained), before COMMIT-PRIMARY installs landed.
    pub early_ack_commits: AtomicU64,
    /// Per-destination COMMIT-PRIMARY installs completed in the background
    /// (by the committing engine's opportunistic drain or by helpers).
    pub installs_background: AtomicU64,
    /// Times a reader / locker / validator hit a locked slot of an
    /// already-durable transaction and helped complete its install instead
    /// of backing off or aborting.
    pub install_helps: AtomicU64,
    /// Truncation watermark deliveries piggybacked on outgoing LOCK /
    /// VALIDATE / COMMIT-BACKUP verbs (zero standalone messages).
    pub truncations_piggybacked: AtomicU64,
    /// Standalone truncation flushes sent because a watermark sat idle past
    /// [`crate::EngineConfig::truncate_idle_flush`].
    pub truncate_flushes: AtomicU64,
    // ---- Pipeline-pool work-stealing counters ---------------------------
    /// Expired pipeline flights advanced by a pool worker that does not own
    /// them (the owner was stuck in a deadline sleep or busy issuing).
    pub pipeline_steals: AtomicU64,
    /// Bounded install-backlog chunks drained by idle pipeline-pool workers
    /// stealing stage-2 completion work.
    pub pipeline_steal_drains: AtomicU64,
    // ---- Failure-recovery counters --------------------------------------
    /// Decided (early-acked) transactions of a dead coordinator rolled
    /// forward by survivors: their pending COMMIT-PRIMARY installs were
    /// completed from the replicated state and their locks released.
    pub orphans_rolled_forward: AtomicU64,
    /// Undecided transactions unwound because their coordinator died before
    /// the durability point (locks released, allocations rolled back).
    pub orphans_rolled_back: AtomicU64,
    /// Retryable aborts absorbed by [`crate::NodeEngine::run_transaction`]'s
    /// bounded-backoff loop (the client observed latency, not a failure).
    pub retries_absorbed: AtomicU64,
    /// Re-replicated backups caught up from untruncated redo-log records
    /// after their state copy (commits that raced the copy).
    pub backups_caught_up: AtomicU64,
}

/// Point-in-time copy of [`EngineStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Committed read-write transactions.
    pub commits_rw: u64,
    /// Committed read-only transactions.
    pub commits_ro: u64,
    /// Execution-phase aborts.
    pub aborts_execution: u64,
    /// LOCK-phase aborts.
    pub aborts_lock: u64,
    /// Validation aborts.
    pub aborts_validation: u64,
    /// MV-ABORT memory aborts.
    pub aborts_oldver_memory: u64,
    /// Total write-wait nanoseconds.
    pub write_wait_ns: u64,
    /// Number of write waits.
    pub write_waits: u64,
    /// Write-wait nanoseconds overlapped with in-flight replication.
    pub write_wait_overlapped_ns: u64,
    /// Old versions allocated.
    pub old_versions_allocated: u64,
    /// Chain-walking reads.
    pub old_version_reads: u64,
    /// MV-BLOCK stalls.
    pub oldver_blocks: u64,
    /// MV-TRUNCATE truncations.
    pub oldver_truncations: u64,
    /// Reads that exhausted the locked-object backoff budget.
    pub read_lock_retries_exhausted: u64,
    /// `read_many` batches issued.
    pub read_batches: u64,
    /// Objects across all `read_many` batches.
    pub read_batch_objects: u64,
    /// Reads served via the local-bypass fast path.
    pub read_local_bypass: u64,
    /// LOCK batches sent.
    pub lock_batches: u64,
    /// Objects across all LOCK batches.
    pub lock_batch_objects: u64,
    /// VALIDATE batches sent.
    pub validate_batches: u64,
    /// Objects across all VALIDATE batches.
    pub validate_batch_objects: u64,
    /// COMMIT-BACKUP batches sent.
    pub backup_batches: u64,
    /// COMMIT-PRIMARY batches sent.
    pub primary_batches: u64,
    /// TRUNCATE batches sent (standalone flushes only under early-ack).
    pub truncate_batches: u64,
    /// Commit-driver abort unwinds.
    pub unwinds: u64,
    /// Commits acknowledged at the end of the critical path.
    pub early_ack_commits: u64,
    /// Background per-destination COMMIT-PRIMARY installs completed.
    pub installs_background: u64,
    /// Installs completed by helping readers/lockers/validators.
    pub install_helps: u64,
    /// Piggybacked truncation watermark deliveries.
    pub truncations_piggybacked: u64,
    /// Standalone idle truncation flushes.
    pub truncate_flushes: u64,
    /// Expired pipeline flights advanced by a non-owner pool worker.
    pub pipeline_steals: u64,
    /// Install-backlog chunks drained by idle pipeline-pool workers.
    pub pipeline_steal_drains: u64,
    /// Dead-coordinator transactions rolled forward by survivors.
    pub orphans_rolled_forward: u64,
    /// Undecided dead-coordinator transactions unwound.
    pub orphans_rolled_back: u64,
    /// Retryable aborts absorbed by the transparent retry wrapper.
    pub retries_absorbed: u64,
    /// Re-replicated backups caught up from redo logs.
    pub backups_caught_up: u64,
}

impl EngineStats {
    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            commits_rw: self.commits_rw.load(Ordering::Relaxed),
            commits_ro: self.commits_ro.load(Ordering::Relaxed),
            aborts_execution: self.aborts_execution.load(Ordering::Relaxed),
            aborts_lock: self.aborts_lock.load(Ordering::Relaxed),
            aborts_validation: self.aborts_validation.load(Ordering::Relaxed),
            aborts_oldver_memory: self.aborts_oldver_memory.load(Ordering::Relaxed),
            write_wait_ns: self.write_wait_ns.load(Ordering::Relaxed),
            write_waits: self.write_waits.load(Ordering::Relaxed),
            write_wait_overlapped_ns: self.write_wait_overlapped_ns.load(Ordering::Relaxed),
            old_versions_allocated: self.old_versions_allocated.load(Ordering::Relaxed),
            old_version_reads: self.old_version_reads.load(Ordering::Relaxed),
            oldver_blocks: self.oldver_blocks.load(Ordering::Relaxed),
            oldver_truncations: self.oldver_truncations.load(Ordering::Relaxed),
            read_lock_retries_exhausted: self.read_lock_retries_exhausted.load(Ordering::Relaxed),
            read_batches: self.read_batches.load(Ordering::Relaxed),
            read_batch_objects: self.read_batch_objects.load(Ordering::Relaxed),
            read_local_bypass: self.read_local_bypass.load(Ordering::Relaxed),
            lock_batches: self.lock_batches.load(Ordering::Relaxed),
            lock_batch_objects: self.lock_batch_objects.load(Ordering::Relaxed),
            validate_batches: self.validate_batches.load(Ordering::Relaxed),
            validate_batch_objects: self.validate_batch_objects.load(Ordering::Relaxed),
            backup_batches: self.backup_batches.load(Ordering::Relaxed),
            primary_batches: self.primary_batches.load(Ordering::Relaxed),
            truncate_batches: self.truncate_batches.load(Ordering::Relaxed),
            unwinds: self.unwinds.load(Ordering::Relaxed),
            early_ack_commits: self.early_ack_commits.load(Ordering::Relaxed),
            installs_background: self.installs_background.load(Ordering::Relaxed),
            install_helps: self.install_helps.load(Ordering::Relaxed),
            truncations_piggybacked: self.truncations_piggybacked.load(Ordering::Relaxed),
            truncate_flushes: self.truncate_flushes.load(Ordering::Relaxed),
            pipeline_steals: self.pipeline_steals.load(Ordering::Relaxed),
            pipeline_steal_drains: self.pipeline_steal_drains.load(Ordering::Relaxed),
            orphans_rolled_forward: self.orphans_rolled_forward.load(Ordering::Relaxed),
            orphans_rolled_back: self.orphans_rolled_back.load(Ordering::Relaxed),
            retries_absorbed: self.retries_absorbed.load(Ordering::Relaxed),
            backups_caught_up: self.backups_caught_up.load(Ordering::Relaxed),
        }
    }

    /// Bumps one counter by `n` (convenience used by the commit driver).
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Bumps one counter by 1.
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl EngineStatsSnapshot {
    /// Total commits.
    pub fn commits(&self) -> u64 {
        self.commits_rw + self.commits_ro
    }

    /// Total aborts.
    pub fn aborts(&self) -> u64 {
        self.aborts_execution
            + self.aborts_lock
            + self.aborts_validation
            + self.aborts_oldver_memory
    }

    /// Abort rate in [0, 1] over commits + aborts (0 when idle).
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits() + self.aborts();
        if total == 0 {
            0.0
        } else {
            self.aborts() as f64 / total as f64
        }
    }

    /// Mean commit-time uncertainty wait in nanoseconds.
    pub fn mean_write_wait_ns(&self) -> f64 {
        if self.write_waits == 0 {
            0.0
        } else {
            self.write_wait_ns as f64 / self.write_waits as f64
        }
    }

    /// Mean number of objects per LOCK batch (0 when no batches were sent).
    pub fn mean_lock_batch_size(&self) -> f64 {
        if self.lock_batches == 0 {
            0.0
        } else {
            self.lock_batch_objects as f64 / self.lock_batches as f64
        }
    }

    /// Mean number of objects per `read_many` batch (0 when none were sent).
    pub fn mean_read_batch_size(&self) -> f64 {
        if self.read_batches == 0 {
            0.0
        } else {
            self.read_batch_objects as f64 / self.read_batches as f64
        }
    }

    /// Mean number of objects per VALIDATE batch (0 when none were sent).
    pub fn mean_validate_batch_size(&self) -> f64 {
        if self.validate_batches == 0 {
            0.0
        } else {
            self.validate_batch_objects as f64 / self.validate_batches as f64
        }
    }

    /// Element-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &EngineStatsSnapshot) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            commits_rw: self.commits_rw - earlier.commits_rw,
            commits_ro: self.commits_ro - earlier.commits_ro,
            aborts_execution: self.aborts_execution - earlier.aborts_execution,
            aborts_lock: self.aborts_lock - earlier.aborts_lock,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_oldver_memory: self.aborts_oldver_memory - earlier.aborts_oldver_memory,
            write_wait_ns: self.write_wait_ns - earlier.write_wait_ns,
            write_waits: self.write_waits - earlier.write_waits,
            write_wait_overlapped_ns: self.write_wait_overlapped_ns
                - earlier.write_wait_overlapped_ns,
            old_versions_allocated: self.old_versions_allocated - earlier.old_versions_allocated,
            old_version_reads: self.old_version_reads - earlier.old_version_reads,
            oldver_blocks: self.oldver_blocks - earlier.oldver_blocks,
            oldver_truncations: self.oldver_truncations - earlier.oldver_truncations,
            read_lock_retries_exhausted: self.read_lock_retries_exhausted
                - earlier.read_lock_retries_exhausted,
            read_batches: self.read_batches - earlier.read_batches,
            read_batch_objects: self.read_batch_objects - earlier.read_batch_objects,
            read_local_bypass: self.read_local_bypass - earlier.read_local_bypass,
            lock_batches: self.lock_batches - earlier.lock_batches,
            lock_batch_objects: self.lock_batch_objects - earlier.lock_batch_objects,
            validate_batches: self.validate_batches - earlier.validate_batches,
            validate_batch_objects: self.validate_batch_objects - earlier.validate_batch_objects,
            backup_batches: self.backup_batches - earlier.backup_batches,
            primary_batches: self.primary_batches - earlier.primary_batches,
            truncate_batches: self.truncate_batches - earlier.truncate_batches,
            unwinds: self.unwinds - earlier.unwinds,
            early_ack_commits: self.early_ack_commits - earlier.early_ack_commits,
            installs_background: self.installs_background - earlier.installs_background,
            install_helps: self.install_helps - earlier.install_helps,
            truncations_piggybacked: self.truncations_piggybacked - earlier.truncations_piggybacked,
            truncate_flushes: self.truncate_flushes - earlier.truncate_flushes,
            pipeline_steals: self.pipeline_steals - earlier.pipeline_steals,
            pipeline_steal_drains: self.pipeline_steal_drains - earlier.pipeline_steal_drains,
            orphans_rolled_forward: self.orphans_rolled_forward - earlier.orphans_rolled_forward,
            orphans_rolled_back: self.orphans_rolled_back - earlier.orphans_rolled_back,
            retries_absorbed: self.retries_absorbed - earlier.retries_absorbed,
            backups_caught_up: self.backups_caught_up - earlier.backups_caught_up,
        }
    }

    /// Merges two snapshots by summing every counter (aggregating nodes).
    pub fn merged(&self, other: &EngineStatsSnapshot) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            commits_rw: self.commits_rw + other.commits_rw,
            commits_ro: self.commits_ro + other.commits_ro,
            aborts_execution: self.aborts_execution + other.aborts_execution,
            aborts_lock: self.aborts_lock + other.aborts_lock,
            aborts_validation: self.aborts_validation + other.aborts_validation,
            aborts_oldver_memory: self.aborts_oldver_memory + other.aborts_oldver_memory,
            write_wait_ns: self.write_wait_ns + other.write_wait_ns,
            write_waits: self.write_waits + other.write_waits,
            write_wait_overlapped_ns: self.write_wait_overlapped_ns
                + other.write_wait_overlapped_ns,
            old_versions_allocated: self.old_versions_allocated + other.old_versions_allocated,
            old_version_reads: self.old_version_reads + other.old_version_reads,
            oldver_blocks: self.oldver_blocks + other.oldver_blocks,
            oldver_truncations: self.oldver_truncations + other.oldver_truncations,
            read_lock_retries_exhausted: self.read_lock_retries_exhausted
                + other.read_lock_retries_exhausted,
            read_batches: self.read_batches + other.read_batches,
            read_batch_objects: self.read_batch_objects + other.read_batch_objects,
            read_local_bypass: self.read_local_bypass + other.read_local_bypass,
            lock_batches: self.lock_batches + other.lock_batches,
            lock_batch_objects: self.lock_batch_objects + other.lock_batch_objects,
            validate_batches: self.validate_batches + other.validate_batches,
            validate_batch_objects: self.validate_batch_objects + other.validate_batch_objects,
            backup_batches: self.backup_batches + other.backup_batches,
            primary_batches: self.primary_batches + other.primary_batches,
            truncate_batches: self.truncate_batches + other.truncate_batches,
            unwinds: self.unwinds + other.unwinds,
            early_ack_commits: self.early_ack_commits + other.early_ack_commits,
            installs_background: self.installs_background + other.installs_background,
            install_helps: self.install_helps + other.install_helps,
            truncations_piggybacked: self.truncations_piggybacked + other.truncations_piggybacked,
            truncate_flushes: self.truncate_flushes + other.truncate_flushes,
            pipeline_steals: self.pipeline_steals + other.pipeline_steals,
            pipeline_steal_drains: self.pipeline_steal_drains + other.pipeline_steal_drains,
            orphans_rolled_forward: self.orphans_rolled_forward + other.orphans_rolled_forward,
            orphans_rolled_back: self.orphans_rolled_back + other.orphans_rolled_back,
            retries_absorbed: self.retries_absorbed + other.retries_absorbed,
            backups_caught_up: self.backups_caught_up + other.backups_caught_up,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_and_merge() {
        let s = EngineStats::default();
        s.commits_rw.store(10, Ordering::Relaxed);
        s.aborts_lock.store(2, Ordering::Relaxed);
        s.lock_batches.store(4, Ordering::Relaxed);
        s.lock_batch_objects.store(12, Ordering::Relaxed);
        let a = s.snapshot();
        s.commits_rw.store(15, Ordering::Relaxed);
        s.lock_batches.store(6, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.commits_rw, 5);
        assert_eq!(d.aborts_lock, 0);
        assert_eq!(d.lock_batches, 2);
        let m = a.merged(&b);
        assert_eq!(m.commits_rw, 25);
        assert_eq!(m.aborts(), 4);
        assert_eq!(m.lock_batches, 10);
        assert_eq!(m.lock_batch_objects, 24);
    }

    #[test]
    fn abort_rate_and_mean_wait() {
        let mut snap = EngineStatsSnapshot {
            commits_rw: 98,
            aborts_lock: 2,
            ..Default::default()
        };
        assert!((snap.abort_rate() - 0.02).abs() < 1e-9);
        snap.write_waits = 4;
        snap.write_wait_ns = 40_000;
        assert_eq!(snap.mean_write_wait_ns(), 10_000.0);
        let idle = EngineStatsSnapshot::default();
        assert_eq!(idle.abort_rate(), 0.0);
        assert_eq!(idle.mean_write_wait_ns(), 0.0);
    }

    #[test]
    fn mean_lock_batch_size() {
        let snap = EngineStatsSnapshot {
            lock_batches: 4,
            lock_batch_objects: 10,
            ..Default::default()
        };
        assert_eq!(snap.mean_lock_batch_size(), 2.5);
        assert_eq!(EngineStatsSnapshot::default().mean_lock_batch_size(), 0.0);
    }

    #[test]
    fn mean_read_and_validate_batch_sizes() {
        let snap = EngineStatsSnapshot {
            read_batches: 2,
            read_batch_objects: 16,
            validate_batches: 3,
            validate_batch_objects: 9,
            ..Default::default()
        };
        assert_eq!(snap.mean_read_batch_size(), 8.0);
        assert_eq!(snap.mean_validate_batch_size(), 3.0);
        assert_eq!(EngineStatsSnapshot::default().mean_read_batch_size(), 0.0);
        assert_eq!(
            EngineStatsSnapshot::default().mean_validate_batch_size(),
            0.0
        );
    }
}
