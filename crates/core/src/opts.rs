//! Engine and per-transaction configuration.

/// Isolation level of a transaction. FaRMv2 supports strict serializability
/// (the default) and snapshot isolation; it deliberately supports nothing
/// weaker (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Serializable: reads are validated at commit so the snapshot is still
    /// current at the write timestamp.
    Serializable,
    /// Snapshot isolation: validation is skipped (consistent snapshots are
    /// already provided during execution) and the write-timestamp uncertainty
    /// wait overlaps replication.
    SnapshotIsolation,
}

/// Policy applied when old-version memory is exhausted during the LOCK phase
/// (Section 5.3 / Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvPolicy {
    /// Block the writer until old-version memory becomes available.
    Block,
    /// Abort the writer.
    Abort,
    /// Let the writer proceed without allocating the old version, truncating
    /// the object's history (readers needing it will abort).
    Truncate,
}

/// Which engine variant executes transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// FaRMv2: opacity via global-time read/write timestamps.
    FarmV2 {
        /// Whether old versions are maintained (multi-version mode) or not
        /// (single-version mode, the default for TPC-C in the paper).
        multi_version: bool,
        /// Policy when old-version memory runs out (only relevant with
        /// `multi_version`).
        mv_policy: MvPolicy,
    },
    /// BASELINE: an optimized FaRMv1 — per-object version OCC without read
    /// snapshots, timestamps or uncertainty waits; every read (including by
    /// read-only transactions) is validated at commit.
    Baseline,
}

impl EngineMode {
    /// FaRMv2 in single-version mode (the paper's default for TPC-C).
    pub fn farmv2_single_version() -> Self {
        EngineMode::FarmV2 {
            multi_version: false,
            mv_policy: MvPolicy::Truncate,
        }
    }

    /// FaRMv2 in multi-version mode with the given out-of-memory policy.
    pub fn farmv2_multi_version(policy: MvPolicy) -> Self {
        EngineMode::FarmV2 {
            multi_version: true,
            mv_policy: policy,
        }
    }

    /// Whether this mode maintains old versions.
    pub fn is_multi_version(&self) -> bool {
        matches!(
            self,
            EngineMode::FarmV2 {
                multi_version: true,
                ..
            }
        )
    }

    /// Whether this is the FaRMv1-style baseline.
    pub fn is_baseline(&self) -> bool {
        matches!(self, EngineMode::Baseline)
    }
}

/// Cluster-wide engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Engine variant.
    pub mode: EngineMode,
    /// How the commit driver and `read_many` dispatch their per-destination
    /// message batches: serially (one destination at a time, `Σ latency` per
    /// phase — the pre-pipelining behavior, kept for A/B benchmarking) or
    /// through a completion set (`max latency` per phase, with the
    /// serializable uncertainty wait overlapping COMMIT-BACKUP). The default
    /// is [`farm_net::DispatchMode::Concurrent`].
    pub dispatch: farm_net::DispatchMode,
    /// Injected wire latency for one-sided verbs and RPCs. Zero (the
    /// default) for raw-throughput runs; [`farm_net::LatencyModel::datacenter`]
    /// for latency-composition experiments like Figure 13 and the commit
    /// pipeline bench.
    pub latency: farm_net::LatencyModel,
    /// Whether committed read-write transactions additionally append an
    /// operation-log record to `replication` in-memory logs (Section 5.6's
    /// NAM-DB-style configuration). Data replication is skipped in that mode.
    pub operation_logging: bool,
    /// How many times a read retries when it observes a locked head version
    /// before aborting.
    pub read_lock_retries: u32,
    /// Early-acknowledged commits (the paper's commit completion rule): a
    /// FaRMv2 transaction is durably committed once every COMMIT-BACKUP is
    /// acked, so `Transaction::commit` returns there and COMMIT-PRIMARY
    /// installs drain in the background (readers hitting a still-locked slot
    /// of a durable transaction help complete its install). TRUNCATE stops
    /// being a standalone message: the coordinator piggybacks a
    /// `truncate_below` watermark on its next outgoing LOCK / VALIDATE /
    /// COMMIT-BACKUP verb to each destination, falling back to a timed flush
    /// when traffic is idle. Ignored under [`farm_net::DispatchMode::Serial`]
    /// (the A/B baseline keeps the fully synchronous protocol), in baseline
    /// mode (its write timestamps are install results) and in
    /// operation-logging mode (durability there is the op-log append).
    pub early_ack: bool,
    /// How long a raised-but-undelivered truncation watermark may sit before
    /// the background flusher sends it as a standalone message. Under any
    /// steady commit traffic the watermark piggybacks on protocol verbs well
    /// before this expires, so standalone TRUNCATE messages only appear on
    /// idle connections.
    pub truncate_idle_flush: std::time::Duration,
    /// Maximum operation-log records retained per node in operation-logging
    /// mode; the log is a ring that evicts its oldest record beyond this, so
    /// long runs do not grow memory unboundedly.
    pub op_log_capacity: usize,
    /// Interval of the background old-version garbage collector.
    pub gc_interval: std::time::Duration,
    /// Wake quantum of the commit-pipeline reactor's deadline coalescing:
    /// when every in-flight commit is waiting on the wire, the pipeline
    /// sleeps to the **latest** completion deadline within this window past
    /// the earliest one, so a single wakeup advances the whole batch of
    /// verbs instead of one wakeup per deadline. Zero disables coalescing
    /// (sleep exactly to the earliest deadline). No verb ever completes
    /// early — the sleep target is itself one of the batched deadlines.
    pub pipeline_wake_quantum: std::time::Duration,
    /// DELIBERATELY INCORRECT (Section 7.3): skip the uncertainty wait when
    /// acquiring the write timestamp. Only for the ablation experiment and
    /// the counterexample test; never enable in real use.
    pub unsafe_skip_write_wait: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: EngineMode::farmv2_single_version(),
            dispatch: farm_net::DispatchMode::Concurrent,
            latency: farm_net::LatencyModel::zero(),
            operation_logging: false,
            read_lock_retries: 100,
            early_ack: true,
            truncate_idle_flush: std::time::Duration::from_millis(1),
            op_log_capacity: 65_536,
            gc_interval: std::time::Duration::from_millis(2),
            pipeline_wake_quantum: std::time::Duration::from_micros(2),
            unsafe_skip_write_wait: false,
        }
    }
}

impl EngineConfig {
    /// FaRMv2 with multi-versioning enabled (MV-TRUNCATE by default, as in
    /// production).
    pub fn multi_version() -> Self {
        EngineConfig {
            mode: EngineMode::farmv2_multi_version(MvPolicy::Truncate),
            ..Default::default()
        }
    }

    /// The FaRMv1-style baseline.
    pub fn baseline() -> Self {
        EngineConfig {
            mode: EngineMode::Baseline,
            ..Default::default()
        }
    }
}

/// Per-transaction options.
#[derive(Debug, Clone, Copy)]
pub struct TxOptions {
    /// Isolation level.
    pub isolation: IsolationLevel,
    /// Strictness: strict transactions wait out the read-timestamp
    /// uncertainty; non-strict transactions use the interval's lower bound
    /// without waiting (Section 4.2).
    pub strict: bool,
    /// Application hint that this transaction is likely to write; enables
    /// eager aborts when it reads an old version even while the write set is
    /// still empty (Section 4.7).
    pub write_hint: bool,
}

impl Default for TxOptions {
    fn default() -> Self {
        TxOptions {
            isolation: IsolationLevel::Serializable,
            strict: true,
            write_hint: false,
        }
    }
}

impl TxOptions {
    /// Strict serializability (the FaRMv2 default).
    pub fn serializable() -> Self {
        Self::default()
    }

    /// Non-strict serializability.
    pub fn serializable_non_strict() -> Self {
        TxOptions {
            strict: false,
            ..Self::default()
        }
    }

    /// Strict snapshot isolation.
    pub fn snapshot_isolation() -> Self {
        TxOptions {
            isolation: IsolationLevel::SnapshotIsolation,
            ..Self::default()
        }
    }

    /// Non-strict snapshot isolation (the configuration of the Section 5.6
    /// comparison).
    pub fn snapshot_isolation_non_strict() -> Self {
        TxOptions {
            isolation: IsolationLevel::SnapshotIsolation,
            strict: false,
            write_hint: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_constructors() {
        assert!(!EngineMode::farmv2_single_version().is_multi_version());
        assert!(EngineMode::farmv2_multi_version(MvPolicy::Block).is_multi_version());
        assert!(EngineMode::Baseline.is_baseline());
        assert!(!EngineMode::farmv2_single_version().is_baseline());
    }

    #[test]
    fn option_presets() {
        let s = TxOptions::serializable();
        assert!(s.strict);
        assert_eq!(s.isolation, IsolationLevel::Serializable);
        let ns = TxOptions::serializable_non_strict();
        assert!(!ns.strict);
        let si = TxOptions::snapshot_isolation();
        assert_eq!(si.isolation, IsolationLevel::SnapshotIsolation);
        assert!(si.strict);
        let nssi = TxOptions::snapshot_isolation_non_strict();
        assert!(!nssi.strict);
    }

    #[test]
    fn engine_config_presets() {
        assert!(EngineConfig::default().mode == EngineMode::farmv2_single_version());
        assert!(EngineConfig::multi_version().mode.is_multi_version());
        assert!(EngineConfig::baseline().mode.is_baseline());
        assert!(!EngineConfig::default().unsafe_skip_write_wait);
    }
}
