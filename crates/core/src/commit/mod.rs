//! The batched commit protocol, extracted from the transaction API into an
//! explicit per-phase state machine.
//!
//! FaRMv2 gets its throughput from fanning commit messages out **per
//! destination machine**, not per object: the coordinator sends one LOCK
//! message (and one COMMIT-BACKUP RDMA write, and one COMMIT-PRIMARY
//! install) per machine, each carrying that machine's share of the write
//! set. This module implements that structure in three parts:
//!
//! * [`plan`] — groups the write/free/alloc sets by destination primary and
//!   backup ([`CommitPlan`]), fixing the deterministic global
//!   address order in which locks are acquired.
//! * [`driver`] — the [`CommitDriver`] state machine with explicit phases
//!   (`Lock → [SI: Replicate] → WriteTs → [Ser: Validate → Replicate] →
//!   InstallPrimary → Truncate → OpLog`), one batched metered message per
//!   destination per phase. Each phase is split into an *issue* and a
//!   *finish* half so the driver can be stepped without blocking.
//! * [`backlog`] — the three-stage commit-completion state: pending
//!   COMMIT-PRIMARY installs (claimable by helpers), backup redo logs, and
//!   per-coordinator `truncate_below` watermarks piggybacked on outgoing
//!   verbs instead of standalone TRUNCATE messages.
//! * [`pipeline`] — the per-thread [`CommitPipeline`]: one worker keeps up
//!   to `depth` transactions in their commit critical paths at once,
//!   multiplexing their completion deadlines through a deadline-heap
//!   reactor.
//! * [`pool`] — the multi-worker [`PipelinePool`]: N pipeline workers fed
//!   from a bounded submit ring, work-stealing expired flights and
//!   install-backlog chunks from each other.
//! * [`unwind`] — the single abort path: every failure releases all locks
//!   held across every destination and rolls back allocations.
//!
//! [`Transaction`](crate::Transaction) builds the plan and hands it to the
//! driver; `tx.rs` itself no longer contains any phase loop.

pub(crate) mod backlog;
pub mod driver;
pub mod pipeline;
pub mod plan;
pub mod pool;
mod unwind;

pub use driver::{CommitDriver, CommitPhase};
pub use pipeline::{CommitPipeline, PipelineTimings};
pub use plan::{CommitPlan, DestinationBatch, IntentKind, RegionGroup, WriteIntent};
pub use pool::{PipelinePool, PoolConfig, PoolStats};
