//! Multi-worker commit pipelining: a [`PipelinePool`] of N worker threads,
//! each owning a deadline-heap reactor, fed from one bounded MPMC submit
//! ring — the step from "one fast thread" to a machine full of them
//! (PAPER.md §6: per-machine throughput scales with worker threads because
//! each thread multiplexes transactions over its completion queues).
//!
//! ## Structure
//!
//! * **Submit ring.** [`PipelinePool::submit`] pushes prepared work into a
//!   bounded ring; at capacity it blocks until a worker frees a slot
//!   (backpressure), [`PipelinePool::try_submit`] returns the transaction
//!   instead. Any thread may submit; any worker may pop.
//! * **Flight decks.** Each worker parks its waiting flights in its own
//!   *deck* — a mutex-guarded deadline heap (same ordering as the
//!   single-thread reactor). The deck mutex is the entire steal protocol:
//!   a flight inside a deck is, by invariant, **not being advanced by
//!   anyone**, so whoever pops it (owner or thief) may advance it.
//! * **Work stealing.** A worker with nothing ready steals two kinds of
//!   work before parking: an **expired flight** from another worker's deck
//!   (its owner is stuck in a deadline sleep — e.g. a long uncertainty
//!   wait — or busy issuing), and **pending-install backlog** chunks via
//!   [`NodeEngine::drain_pending_installs_up_to`]. Stealing a
//!   `Box<CommitDriver>` across threads is sound because drivers are
//!   resumable state machines with no thread affinity: every phase is an
//!   issue/finish pair against engine-shared state, and the box moves
//!   ownership wholesale (asserted `Send` in `driver.rs`).
//! * **Shutdown.** [`PipelinePool::shutdown`] (and `Drop`) is a
//!   deterministic drain: workers stop only once the ring is empty and
//!   their own deck has no flights, so every accepted transaction
//!   completes and no primary lock leaks.
//!
//! Timing accounting mirrors [`PipelineTimings`], accumulated in shared
//! atomics so [`PipelinePool::stats`] is accurate at any point (idle
//! parking on an empty ring is deliberately untracked — it is starvation,
//! not protocol flight time).

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::NodeEngine;
use crate::error::TxError;
use crate::stats::EngineStats;
use crate::tx::{CommitInfo, PreparedCommit, Transaction};

use super::driver::{CommitDriver, DriverStep};
use super::pipeline::{PipelineTimings, Waiting};

/// How many queued commits one idle worker claims from the install backlog
/// per steal: bounded so a deep backlog cannot make it miss the next flight
/// deadline.
const STEAL_DRAIN_CHUNK: usize = 8;

/// How long an idle worker (no flights, empty ring) parks before re-scanning
/// other decks for stealable work.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Sizing of a [`PipelinePool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Pipeline depth **per worker** (clamped to at least 1); total
    /// in-flight capacity is `workers * depth`.
    pub depth: usize,
    /// Submit-ring capacity; `submit` blocks (and `try_submit` refuses)
    /// beyond this many queued-but-unclaimed transactions.
    pub ring_capacity: usize,
}

impl PoolConfig {
    /// `workers` × `depth` with a ring sized at twice the total in-flight
    /// capacity — deep enough to keep workers fed, shallow enough that
    /// backpressure reaches the submitter quickly.
    pub fn new(workers: usize, depth: usize) -> Self {
        let workers = workers.max(1);
        let depth = depth.max(1);
        PoolConfig {
            workers,
            depth,
            ring_capacity: 2 * workers * depth,
        }
    }
}

/// Everything behind the pool's submit side: the ring, result accumulation
/// and the stop flag, under one mutex so the three condvars have a single
/// coherent predicate state.
struct PoolState {
    ring: VecDeque<Transaction>,
    accepted: u64,
    completed: u64,
    results: Vec<Result<CommitInfo, TxError>>,
    stop: bool,
}

/// One worker's parked flights. The mutex is the steal protocol: a flight
/// in the heap is not being advanced by anyone; popping it (owner or thief)
/// transfers the exclusive right to advance it.
struct Deck {
    waiting: Mutex<BinaryHeap<Waiting>>,
    /// Heap length mirror, updated under the mutex; lets owners count
    /// in-flight work and thieves skip empty decks without locking.
    len: AtomicUsize,
}

impl Deck {
    fn new() -> Self {
        Deck {
            waiting: Mutex::new(BinaryHeap::new()),
            len: AtomicUsize::new(0),
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    fn push(&self, flight: Waiting) {
        let mut heap = self.waiting.lock().unwrap();
        heap.push(flight);
        self.len.store(heap.len(), Ordering::Release);
    }

    /// Pops every flight whose deadline has passed into `out` (one clock
    /// read serves the whole batch). Returns how many were popped. The
    /// boxes stay boxed: a pop transfers ownership of the flight without
    /// moving the large driver struct.
    #[allow(clippy::vec_box)]
    fn pop_expired(&self, now: Instant, out: &mut Vec<Box<CommitDriver>>) -> usize {
        let mut heap = self.waiting.lock().unwrap();
        let before = out.len();
        while heap.peek().is_some_and(|w| w.wake <= now) {
            out.push(heap.pop().expect("peeked").driver);
        }
        self.len.store(heap.len(), Ordering::Release);
        out.len() - before
    }

    /// Thief-side pop of one expired flight. Uses `try_lock`: if the owner
    /// holds the deck it is already tending these flights, so there is
    /// nothing worth stealing.
    fn steal_expired(&self, now: Instant) -> Option<Box<CommitDriver>> {
        if self.len() == 0 {
            return None;
        }
        let mut heap = self.waiting.try_lock().ok()?;
        if heap.peek().is_some_and(|w| w.wake <= now) {
            let flight = heap.pop().expect("peeked").driver;
            self.len.store(heap.len(), Ordering::Release);
            return Some(flight);
        }
        None
    }

    /// The coalesced sleep target: the latest deadline within `quantum` of
    /// the earliest (see the reactor's pump loop).
    fn coalesced_target(&self, quantum: Duration) -> Option<Instant> {
        let heap = self.waiting.lock().unwrap();
        let earliest = heap.peek()?.wake;
        let horizon = earliest + quantum;
        let mut batch_end = earliest;
        for w in heap.iter() {
            if w.wake <= horizon && w.wake > batch_end {
                batch_end = w.wake;
            }
        }
        Some(batch_end)
    }
}

/// Pool-wide cycle accounting in atomics (see [`PipelineTimings`]).
#[derive(Default)]
struct AtomicTimings {
    issue_ns: AtomicU64,
    wait_ns: AtomicU64,
    drain_ns: AtomicU64,
    steal_ns: AtomicU64,
    sweeps: AtomicU64,
    wakeups: AtomicU64,
    coalesced: AtomicU64,
}

impl AtomicTimings {
    fn add(&self, field: &AtomicU64, ns: u64) {
        field.fetch_add(ns, Ordering::Relaxed);
    }

    fn snapshot(&self, completed: u64) -> PipelineTimings {
        PipelineTimings {
            issue_ns: self.issue_ns.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
            drain_ns: self.drain_ns.load(Ordering::Relaxed),
            steal_ns: self.steal_ns.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            completed,
        }
    }
}

struct PoolShared {
    engine: Arc<NodeEngine>,
    depth: usize,
    capacity: usize,
    state: Mutex<PoolState>,
    /// Mirrors `PoolState::stop` for lock-free checks in the worker loop
    /// (the mutex-guarded copy is what the condvar predicates use).
    stopping: AtomicBool,
    /// Signaled when the ring frees a slot.
    space: Condvar,
    /// Signaled when the ring gains work (or on shutdown).
    work: Condvar,
    /// Signaled when `completed` catches up with `accepted`.
    idle: Condvar,
    decks: Vec<Deck>,
    timings: AtomicTimings,
    steals: AtomicU64,
    steal_drains: AtomicU64,
}

impl PoolShared {
    fn new(engine: Arc<NodeEngine>, workers: usize, depth: usize, capacity: usize) -> Arc<Self> {
        Arc::new(PoolShared {
            engine,
            depth,
            capacity,
            state: Mutex::new(PoolState {
                ring: VecDeque::new(),
                accepted: 0,
                completed: 0,
                results: Vec::new(),
                stop: false,
            }),
            stopping: AtomicBool::new(false),
            space: Condvar::new(),
            work: Condvar::new(),
            idle: Condvar::new(),
            decks: (0..workers).map(|_| Deck::new()).collect(),
            timings: AtomicTimings::default(),
            steals: AtomicU64::new(0),
            steal_drains: AtomicU64::new(0),
        })
    }

    /// Non-blocking pop of up to `max` transactions from the ring.
    fn pop_many(&self, max: usize, out: &mut Vec<Transaction>) {
        let popped = {
            let mut st = self.state.lock().unwrap();
            let n = st.ring.len().min(max);
            for _ in 0..n {
                out.push(st.ring.pop_front().expect("counted"));
            }
            n
        };
        if popped > 0 {
            self.space.notify_all();
        }
    }

    /// Records one finished commit (completion order across all workers).
    fn finish(&self, result: Result<CommitInfo, TxError>) {
        let all_done = {
            let mut st = self.state.lock().unwrap();
            st.completed += 1;
            st.results.push(result);
            st.completed == st.accepted
        };
        if all_done {
            self.idle.notify_all();
        }
    }

    /// One steal attempt across every other worker's deck.
    fn try_steal(&self, me: usize, now: Instant) -> Option<Box<CommitDriver>> {
        for (i, deck) in self.decks.iter().enumerate() {
            if i == me {
                continue;
            }
            if let Some(driver) = deck.steal_expired(now) {
                self.steals.fetch_add(1, Ordering::Relaxed);
                EngineStats::bump(&self.engine.stats.pipeline_steals);
                return Some(driver);
            }
        }
        None
    }

    /// Whether a worker with no local work may exit: shutdown requested and
    /// the ring fully claimed.
    fn should_exit(&self) -> bool {
        let st = self.state.lock().unwrap();
        st.stop && st.ring.is_empty()
    }

    /// Parks an idle worker until work arrives, shutdown starts, or the
    /// steal-scan interval elapses.
    fn park_for_work(&self) {
        let st = self.state.lock().unwrap();
        if !st.ring.is_empty() || st.stop {
            return;
        }
        let _ = self.work.wait_timeout(st, IDLE_PARK).unwrap();
    }
}

/// A pool of commit-pipeline workers; see the module docs. Built by
/// [`NodeEngine::pipeline_pool`].
pub struct PipelinePool {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

/// Point-in-time pool counters (see [`PipelinePool::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Expired flights advanced by a non-owner worker.
    pub steals: u64,
    /// Bounded install-backlog chunks drained by idle workers.
    pub steal_drains: u64,
    /// Commits completed through the pool.
    pub completed: u64,
    /// Merged cycle accounting across all workers.
    pub timings: PipelineTimings,
}

impl NodeEngine {
    /// Spawns a [`PipelinePool`] of `config.workers` pipeline workers, each
    /// multiplexing up to `config.depth` commit critical paths, committing
    /// on behalf of this node.
    pub fn pipeline_pool(self: &Arc<Self>, config: PoolConfig) -> PipelinePool {
        let workers = config.workers.max(1);
        let depth = config.depth.max(1);
        let shared = PoolShared::new(
            Arc::clone(self),
            workers,
            depth,
            config.ring_capacity.max(1),
        );
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("farm-pipeline-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pipeline worker")
            })
            .collect();
        PipelinePool {
            shared,
            workers,
            handles,
        }
    }
}

impl PipelinePool {
    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Pipeline depth per worker.
    pub fn depth(&self) -> usize {
        self.shared.depth
    }

    /// Transactions accepted but not yet completed.
    pub fn pending(&self) -> u64 {
        let st = self.shared.state.lock().unwrap();
        st.accepted - st.completed
    }

    /// Submits a transaction for commit on some pool worker, blocking while
    /// the submit ring is full (backpressure). Panics if called after
    /// [`PipelinePool::shutdown`].
    pub fn submit(&self, tx: Transaction) {
        let mut st = self.shared.state.lock().unwrap();
        while st.ring.len() >= self.shared.capacity && !st.stop {
            st = self.shared.space.wait(st).unwrap();
        }
        assert!(!st.stop, "submit to a shut-down PipelinePool");
        st.ring.push_back(tx);
        st.accepted += 1;
        drop(st);
        self.shared.work.notify_one();
    }

    /// Non-blocking submit: returns the transaction if the ring is full or
    /// the pool is shutting down. The `Err` variant is deliberately the
    /// whole un-submitted transaction handed back to the caller, not an
    /// error payload.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, tx: Transaction) -> Result<(), Transaction> {
        let mut st = self.shared.state.lock().unwrap();
        if st.stop || st.ring.len() >= self.shared.capacity {
            return Err(tx);
        }
        st.ring.push_back(tx);
        st.accepted += 1;
        drop(st);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Takes the results accumulated so far (completion order across the
    /// whole pool, which may differ from submission order).
    pub fn take(&self) -> Vec<Result<CommitInfo, TxError>> {
        std::mem::take(&mut self.shared.state.lock().unwrap().results)
    }

    /// Waits until every transaction accepted **so far** has completed,
    /// then takes all accumulated results.
    pub fn drain(&self) -> Vec<Result<CommitInfo, TxError>> {
        let mut st = self.shared.state.lock().unwrap();
        let target = st.accepted;
        while st.completed < target {
            // Re-notify in the loop: robust against a worker parked just
            // before our submit's notify landed.
            self.shared.work.notify_all();
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(st, Duration::from_millis(1))
                .unwrap();
            st = guard;
        }
        std::mem::take(&mut st.results)
    }

    /// Pool counters: steals, idle backlog drains, and merged per-worker
    /// cycle accounting.
    pub fn stats(&self) -> PoolStats {
        let completed = self.shared.state.lock().unwrap().completed;
        PoolStats {
            workers: self.workers,
            steals: self.shared.steals.load(Ordering::Relaxed),
            steal_drains: self.shared.steal_drains.load(Ordering::Relaxed),
            completed,
            timings: self.shared.timings.snapshot(completed),
        }
    }

    /// Deterministic drain-and-stop: workers complete every accepted
    /// transaction (the ring is emptied, every deck flight lands — no
    /// primary lock leaks), then exit. Results remain retrievable with
    /// [`PipelinePool::take`]. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        {
            let mut st = self.shared.state.lock().unwrap();
            st.stop = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PipelinePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for PipelinePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinePool")
            .field("workers", &self.workers)
            .field("depth", &self.shared.depth)
            .finish()
    }
}

/// The worker body: refill from the ring, advance ready + expired flights,
/// then (in order) steal an expired flight, steal a backlog chunk, park.
fn worker_loop(shared: &Arc<PoolShared>, me: usize) {
    let engine = &shared.engine;
    let model = engine.meter.latency_model();
    let quantum = engine.config().pipeline_wake_quantum;
    let deck = &shared.decks[me];
    // Per-worker sequence space keeps heap tie-breaks deterministic even
    // for flights that hop decks.
    let mut seq = (me as u64) << 48;
    let mut ready: Vec<Box<CommitDriver>> = Vec::new();
    let mut incoming: Vec<Transaction> = Vec::new();
    loop {
        let mut progressed = false;

        // Refill from the submit ring up to this worker's depth.
        let in_flight = ready.len() + deck.len();
        if in_flight < shared.depth {
            shared.pop_many(shared.depth - in_flight, &mut incoming);
            for tx in incoming.drain(..) {
                progressed = true;
                match tx.prepare_commit() {
                    PreparedCommit::Done(result) => shared.finish(result),
                    PreparedCommit::InFlight(driver) => ready.push(driver),
                }
            }
        }

        // Advance ready flights plus the expired prefix of the own deck —
        // one clock read for the whole sweep.
        let now = Instant::now();
        let popped = deck.pop_expired(now, &mut ready);
        if !ready.is_empty() {
            progressed = true;
            shared.timings.sweeps.fetch_add(1, Ordering::Relaxed);
            shared
                .timings
                .coalesced
                .fetch_add(popped.saturating_sub(1) as u64, Ordering::Relaxed);
            for mut driver in ready.drain(..) {
                match driver.advance() {
                    DriverStep::Wait(wake) => {
                        seq += 1;
                        deck.push(Waiting { wake, seq, driver });
                    }
                    DriverStep::Finished(result) => shared.finish(result),
                }
            }
            shared
                .timings
                .add(&shared.timings.issue_ns, now.elapsed().as_nanos() as u64);
        }
        if progressed {
            continue;
        }

        // Nothing of our own is ready: steal an expired flight whose owner
        // is stuck in a deadline sleep (or busy elsewhere).
        if let Some(mut driver) = shared.try_steal(me, now) {
            let start = Instant::now();
            match driver.advance() {
                DriverStep::Wait(wake) => {
                    seq += 1;
                    // The thief adopts the flight: it lands on OUR deck.
                    deck.push(Waiting { wake, seq, driver });
                }
                DriverStep::Finished(result) => shared.finish(result),
            }
            shared
                .timings
                .add(&shared.timings.steal_ns, start.elapsed().as_nanos() as u64);
            continue;
        }

        // Steal a bounded chunk of the engine's install backlog.
        let start = Instant::now();
        if engine.drain_pending_installs_up_to(STEAL_DRAIN_CHUNK) > 0 {
            shared.steal_drains.fetch_add(1, Ordering::Relaxed);
            EngineStats::bump(&engine.stats.pipeline_steal_drains);
            shared
                .timings
                .add(&shared.timings.drain_ns, start.elapsed().as_nanos() as u64);
            continue;
        }

        // Park. With flights in the deck: a coalesced deadline sleep (the
        // reactor's batching rule); thieves may service expired flights
        // while we oversleep. Without: wait for ring work or exit.
        if deck.len() > 0 {
            if let Some(batch_end) = deck.coalesced_target(quantum) {
                shared.timings.wakeups.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                model.wait_until(batch_end);
                shared
                    .timings
                    .add(&shared.timings.wait_ns, start.elapsed().as_nanos() as u64);
            }
            continue;
        }
        if shared.stopping.load(Ordering::Acquire) && shared.should_exit() {
            return;
        }
        shared.park_for_work();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::{ClusterConfig, EngineConfig, NodeId};

    /// The steal protocol, exercised deterministically (no worker threads,
    /// the "clock" is an explicit parameter): an expired flight parked on a
    /// stalled owner's deck is handed over whole, an unexpired one is not,
    /// and the thief can drive the stolen state machine to a committed
    /// result on its own thread.
    #[test]
    fn steal_hands_over_only_expired_flights() {
        let config = EngineConfig {
            latency: farm_net::LatencyModel {
                rdma_read_ns: 30_000,
                rdma_write_ns: 30_000,
                rpc_ns: 50_000,
                spin_threshold_ns: 1_000_000,
            },
            gc_interval: Duration::from_secs(3600),
            ..EngineConfig::default()
        };
        let engine = Engine::start_cluster(ClusterConfig::test(3), config);
        let node = engine.node(NodeId(0));
        let mut setup = node.begin();
        let addr = setup.alloc(vec![0u8; 16]).unwrap();
        setup.commit().unwrap();
        node.drain_pending_installs();

        let mut tx = node.begin();
        tx.write(addr, vec![9u8; 16]).unwrap();
        let driver = match tx.prepare_commit() {
            PreparedCommit::InFlight(driver) => driver,
            PreparedCommit::Done(r) => panic!("write tx resolved without a driver: {r:?}"),
        };

        // Two decks, no workers: deck 1 plays the stalled owner.
        let shared = PoolShared::new(Arc::clone(&node), 2, 1, 4);
        let base = Instant::now();
        let wake = base + Duration::from_millis(10);
        shared.decks[1].push(Waiting {
            wake,
            seq: 1,
            driver,
        });

        // Before the deadline the flight is the owner's; after it, fair game.
        assert!(shared.try_steal(1, wake).is_none(), "never steals own deck");
        assert!(
            shared.try_steal(0, base).is_none(),
            "unexpired flight stays"
        );
        assert_eq!(shared.steals.load(Ordering::Relaxed), 0);
        let mut stolen = shared
            .try_steal(0, wake)
            .expect("expired flight is stealable");
        assert_eq!(shared.steals.load(Ordering::Relaxed), 1);
        assert_eq!(shared.decks[1].len(), 0);
        assert_eq!(node.stats().pipeline_steals, 1);

        // The thief resumes the state machine to completion.
        let model = node.meter.latency_model();
        let info = loop {
            match stolen.advance() {
                DriverStep::Wait(wake) => model.wait_until(wake),
                DriverStep::Finished(result) => break result.expect("stolen commit lands"),
            }
        };
        assert!(info.write_ts.is_some());
        engine.quiesce();
        let mut check = node.begin();
        assert_eq!(check.read(addr).unwrap()[0], 9);
        engine.shutdown();
    }
}
