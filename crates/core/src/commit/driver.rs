//! The commit driver: an explicit phase state machine executing the FaRMv2
//! commit protocol (Figure 3) — or the FaRMv1-style baseline — with every
//! phase batched per destination machine and **fanned out concurrently**
//! through the net crate's completion-queue abstraction
//! ([`CompletionSet`]).
//!
//! # The three-stage commit lifecycle
//!
//! With [`EngineConfig::early_ack`](crate::EngineConfig::early_ack) (the
//! default for pipelined FaRMv2 dispatch) a commit is split into:
//!
//! 1. **Critical path** — `Lock → AcquireWriteTs → Validate →
//!    ReplicateBackups`. The transaction is durably committed once every
//!    COMMIT-BACKUP is acked, so the driver finishes there and the caller
//!    gets its result: COMMIT-PRIMARY messages are *posted* (metered,
//!    fire-and-forget) but not waited for.
//! 2. **Background install** — the held locks, plan and write timestamp move
//!    into a [`PendingInstall`](super::backlog::PendingInstall) on the
//!    engine's backlog, drained opportunistically (at the next `begin`, in
//!    pipeline dead time, by the background thread). A reader — or a locker,
//!    or a validator — that hits a still-locked slot of a durable
//!    transaction **helps complete that destination's install** instead of
//!    backing off or aborting.
//! 3. **Lazy truncation** — TRUNCATE is no longer a standalone message: once
//!    all of a coordinator's transactions at or below some write timestamp
//!    have installed, that `truncate_below` watermark piggybacks on the next
//!    outgoing LOCK / VALIDATE / COMMIT-BACKUP verb to each destination
//!    (with a timed flush for idle connections), and delivery *applies* the
//!    backup's redo-log records to its replica.
//!
//! Under [`DispatchMode::Serial`] (the A/B baseline), in baseline mode, and
//! in operation-logging mode the driver keeps the fully synchronous phase
//! order `... → InstallPrimary → Truncate → [OperationLog] → Done`.
//!
//! # Resumable stepping
//!
//! Every phase is split into an *issue* half (meter the messages, run the
//! destination-side work closures, note the completion deadline) and a
//! *finish* half (act on the results). [`CommitDriver::advance`] runs
//! finish-issue pairs until it either completes or must wait for a deadline,
//! which it **returns instead of blocking on** — that is what lets a
//! [`CommitPipeline`](crate::CommitPipeline) keep several transactions in
//! their critical paths at once on one thread, multiplexing their verb
//! completions. The plain [`CommitDriver::run`] used by
//! [`Transaction::commit`](crate::Transaction::commit) is just
//! `advance`-then-wait in a loop.
//!
//! Phase order (serializable):
//! `Lock → AcquireWriteTs → Validate → ReplicateBackups → ...`. Under
//! pipelined dispatch the write-timestamp **uncertainty wait is deferred**:
//! `AcquireWriteTs` only takes the interval's upper bound, and the wait runs
//! while the COMMIT-BACKUP writes are in flight (Figure 4) — the commit pays
//! `max(uncertainty, replication)` instead of their sum.
//!
//! Phase order (snapshot isolation): validation is skipped and the
//! write-timestamp acquisition itself rides the replication flight window:
//! `Lock → ReplicateBackups (acquiring the write timestamp in-flight) → ...`.
//! (Serial dispatch keeps the PR-1 order `Lock → ReplicateBackups →
//! AcquireWriteTs → ...`.)
//!
//! Phase order (baseline): no timestamps; every read is validated:
//! `Lock → Validate → ReplicateBackups → InstallPrimary → Truncate → Done`.
//!
//! Every phase that talks to other machines sends **one metered message per
//! destination** (see [`super::plan::CommitPlan`]), and all of a phase's
//! messages are issued before any completion is awaited: under
//! [`DispatchMode::Concurrent`] (the default) the phase costs the *maximum*
//! destination latency, not the sum, and the destination-side work (lock
//! acquisition, old-version copies, installs) runs inside the verbs' work
//! closures. Any failure routes through the single
//! [`unwind`](super::unwind) step — the completion set always drains every
//! in-flight sibling first, so unwind sees the locks of *every* destination,
//! releases them in descending global address order, and rolls back
//! allocations.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use farm_clock::TsMode;
use farm_memory::{Addr, LockOutcome, ObjectSlot, OldAddr, OldVersion};
use farm_net::{Completion, CompletionSet, DispatchMode, NodeId, PhaseLabel, Verb};

use crate::active::ActiveToken;
use crate::engine::{NodeEngine, OpLogRecord};
use crate::error::{AbortReason, TxError};
use crate::opts::{EngineMode, IsolationLevel, MvPolicy, TxOptions};
use crate::stats::EngineStats;
use crate::tx::CommitInfo;

use super::backlog::{LogEntry, PendingInstall, RecordIntent};
use super::plan::{CommitPlan, IntentKind};
use super::unwind::unwind;

/// The phases of the commit state machine. Public so tests and tooling can
/// label per-phase observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhase {
    /// Batched LOCK messages to every destination primary; in multi-version
    /// mode the primaries copy current versions into old-version memory.
    Lock,
    /// COMMIT-BACKUP: one RDMA write per backup destination, NIC-acked. In
    /// pipelined dispatch the write-timestamp uncertainty wait (and, for SI,
    /// the acquisition itself) runs while these writes are in flight. With
    /// early-ack the commit **completes** at the end of this phase.
    ReplicateBackups,
    /// Acquire the write timestamp. Under pipelined serializable dispatch
    /// only the upper bound is taken here; the uncertainty wait is deferred
    /// into [`CommitPhase::ReplicateBackups`].
    AcquireWriteTs,
    /// Read validation (serializable FaRMv2: unwritten reads; baseline:
    /// every read).
    Validate,
    /// COMMIT-PRIMARY: one batched install message per destination primary.
    /// Skipped (moved to the background backlog) under early-ack.
    InstallPrimary,
    /// TRUNCATE: backups apply the new versions. Skipped (replaced by the
    /// piggybacked watermark) under early-ack.
    Truncate,
    /// Optional operation-log append (Section 5.6).
    OperationLog,
    /// Terminal state.
    Done,
}

fn phase_label(phase: CommitPhase) -> PhaseLabel {
    match phase {
        CommitPhase::Lock => PhaseLabel::Lock,
        CommitPhase::ReplicateBackups => PhaseLabel::ReplicateBackups,
        CommitPhase::AcquireWriteTs => PhaseLabel::AcquireWriteTs,
        CommitPhase::Validate => PhaseLabel::Validate,
        CommitPhase::InstallPrimary => PhaseLabel::InstallPrimary,
        CommitPhase::Truncate => PhaseLabel::Truncate,
        CommitPhase::OperationLog => PhaseLabel::OperationLog,
        CommitPhase::Done => unreachable!("Done is not timed"),
    }
}

/// One lock held by the driver, with the primary-side LOCK processing result
/// (old-version copy) attached.
pub(crate) struct HeldLock {
    /// Index of the owning group in the plan.
    pub group: usize,
    /// Index of the intent within the group.
    pub intent: usize,
    /// The locked slot (cached so install does not re-resolve).
    pub slot: Arc<ObjectSlot>,
    /// Old version allocated at the primary while processing the LOCK batch
    /// (multi-version mode).
    pub old_addr: Option<OldAddr>,
    /// Whether history was truncated for this object (MV-TRUNCATE under
    /// memory pressure).
    pub truncated: bool,
}

/// What one destination's LOCK verb produced: the locks it acquired (kept
/// even on failure, so the coordinator can unwind them) and the first
/// failure, if any.
struct DestLockOutcome {
    locks: Vec<HeldLock>,
    failure: Option<(Addr, AbortReason)>,
}

/// What `finish_phase` decides after acting on one phase's results.
enum Step {
    /// Move to the next phase.
    Next(CommitPhase),
    /// The commit is complete with this outcome (baseline read-only commits
    /// finish straight out of validation; early-ack commits finish out of
    /// replication).
    Finish(Option<u64>),
}

/// The stashed results of an issued-but-not-finished phase.
enum Pending {
    Lock(Vec<Completion<DestLockOutcome>>),
    AcquireWriteTs,
    Validate(Vec<Completion<Option<Addr>>>),
    Replicate,
    Install(Vec<Completion<u64>>),
    Truncate,
    OperationLog,
}

/// What [`CommitDriver::advance`] hands back to its scheduler.
pub(crate) enum DriverStep {
    /// The current phase's verbs are in flight until `deadline`; call
    /// `advance` again once it has passed (the driver never blocks itself).
    Wait(Instant),
    /// The commit reached a terminal state; all bookkeeping (active-table
    /// withdrawal, statistics, unwind on the error path) is done.
    Finished(Result<CommitInfo, TxError>),
}

/// The commit driver; built by [`Transaction::commit`](crate::Transaction),
/// consumed by [`CommitDriver::run`] or stepped by a
/// [`CommitPipeline`](crate::CommitPipeline).
pub struct CommitDriver {
    engine: Arc<NodeEngine>,
    opts: TxOptions,
    read_ts: u64,
    read_set: HashMap<Addr, u64>,
    alloc_set: Vec<Addr>,
    plan: CommitPlan,
    phase: CommitPhase,
    locked: Vec<HeldLock>,
    write_ts: u64,
    baseline: bool,
    si: bool,
    dispatch: DispatchMode,
    /// Whether this commit completes at the end of ReplicateBackups, leaving
    /// installs and truncation to the backlog (stages 2 and 3).
    early_ack: bool,
    /// Registration of this transaction in the engine's active table,
    /// withdrawn exactly once when the driver seals.
    active: ActiveToken,
    /// Whether the write timestamp has been acquired (pipelined SI folds the
    /// acquisition into the ReplicateBackups flight window).
    ts_acquired: bool,
    /// Deferred strict-write-timestamp wait target (pipelined serializable
    /// dispatch): the upper bound taken in `AcquireWriteTs`, waited out while
    /// COMMIT-BACKUP is in flight.
    deferred_wait_target: Option<u64>,
    /// Whether `write_ts` is reserved in the coordinator's truncation
    /// in-flight set (early-ack only; withdrawn on install completion or
    /// abort).
    trunc_registered: bool,
    /// Results of the phase currently in flight.
    pending: Option<Pending>,
    /// When the in-flight phase was issued (phase histogram).
    phase_started: Option<Instant>,
    /// Terminal bookkeeping has run; disarms the abandoned-driver `Drop`.
    completed: bool,
}

/// A parked driver may be stolen by another [`PipelinePool`] worker and
/// advanced there: the state machine has no thread affinity (every phase is
/// an issue/finish pair against engine-shared state), so moving the box
/// moves everything. This assertion is what makes work-stealing sound — if
/// a future field breaks `Send`, stealing must be removed, not worked
/// around.
///
/// [`PipelinePool`]: crate::PipelinePool
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CommitDriver>();
};

impl CommitDriver {
    /// Builds a driver over an already-built plan. The driver owns the
    /// transaction's active-table registration from here on.
    pub(crate) fn new(
        engine: Arc<NodeEngine>,
        opts: TxOptions,
        read_ts: u64,
        read_set: HashMap<Addr, u64>,
        alloc_set: Vec<Addr>,
        plan: CommitPlan,
        active: ActiveToken,
    ) -> CommitDriver {
        let config = engine.config();
        let baseline = config.mode.is_baseline();
        let dispatch = config.dispatch;
        let si = !baseline && opts.isolation == IsolationLevel::SnapshotIsolation;
        let early_ack = config.early_ack
            && !baseline
            && !config.operation_logging
            && dispatch != DispatchMode::Serial;
        CommitDriver {
            engine,
            opts,
            read_ts,
            read_set,
            alloc_set,
            plan,
            phase: CommitPhase::Lock,
            locked: Vec::new(),
            write_ts: 0,
            baseline,
            si,
            dispatch,
            early_ack,
            active,
            ts_acquired: false,
            deferred_wait_target: None,
            trunc_registered: false,
            pending: None,
            phase_started: None,
            completed: false,
        }
    }

    /// The phase the driver is currently in.
    pub fn phase(&self) -> CommitPhase {
        self.phase
    }

    /// Whether the driver fans its per-destination batches out through a
    /// completion set (anything but [`DispatchMode::Serial`]).
    fn pipelined(&self) -> bool {
        self.dispatch != DispatchMode::Serial
    }

    /// Drives the state machine to completion, blocking on each phase's
    /// completion deadline. Each phase's wall-clock is recorded in the
    /// node's [`farm_net::PhaseHistogram`], abort or not. On error every
    /// acquired lock has been released and every allocation rolled back.
    pub(crate) fn run(mut self) -> Result<CommitInfo, TxError> {
        let model = self.engine.meter.latency_model();
        loop {
            match self.advance() {
                DriverStep::Wait(deadline) => model.wait_until(deadline),
                DriverStep::Finished(result) => return result,
            }
        }
    }

    /// Makes all progress possible without blocking: finishes the phase
    /// whose deadline the caller waited out, then issues phases until one
    /// has a future completion deadline (returned as [`DriverStep::Wait`])
    /// or the commit reaches a terminal state.
    pub(crate) fn advance(&mut self) -> DriverStep {
        loop {
            if let Some(pending) = self.pending.take() {
                let phase = self.phase;
                let started = self.phase_started.take().expect("issued phases are timed");
                let result = self.finish_phase(pending);
                self.engine
                    .meter
                    .stats()
                    .phases()
                    .record(phase_label(phase), started.elapsed().as_nanos() as u64);
                match result {
                    Ok(Step::Next(next)) => self.phase = next,
                    Ok(Step::Finish(outcome)) => {
                        return DriverStep::Finished(self.seal(Ok(outcome)))
                    }
                    Err(e) => return DriverStep::Finished(self.seal(Err(e))),
                }
            }
            if self.phase == CommitPhase::Done {
                let write_ts = self.write_ts;
                return DriverStep::Finished(self.seal(Ok(Some(write_ts))));
            }
            // Coordinator died before this transaction reached durability
            // (the last COMMIT-BACKUP ack): survivors cannot learn its
            // outcome, so it unwinds — locks release, allocations roll back.
            // This models the survivor-side unwind of an *undecided* orphan;
            // post-durability phases (InstallPrimary onward) keep running,
            // because from the ack on the transaction is decided and must
            // roll forward.
            if matches!(
                self.phase,
                CommitPhase::Lock
                    | CommitPhase::AcquireWriteTs
                    | CommitPhase::Validate
                    | CommitPhase::ReplicateBackups
            ) && !self.engine.is_alive()
            {
                EngineStats::bump(&self.engine.stats.orphans_rolled_back);
                let err = self.abort(AbortReason::CoordinatorDead);
                return DriverStep::Finished(self.seal(Err(err)));
            }
            self.phase_started = Some(Instant::now());
            match self.issue_phase() {
                Ok(Some(deadline)) => return DriverStep::Wait(deadline),
                Ok(None) => continue, // completes immediately; finish above
                Err(e) => {
                    let phase = self.phase;
                    let started = self.phase_started.take().expect("just set");
                    self.engine
                        .meter
                        .stats()
                        .phases()
                        .record(phase_label(phase), started.elapsed().as_nanos() as u64);
                    return DriverStep::Finished(self.seal(Err(e)));
                }
            }
        }
    }

    /// Terminal bookkeeping, run exactly once: withdraw the active-table
    /// registration, tally the commit, and shape the caller-facing result.
    fn seal(&mut self, outcome: Result<Option<u64>, TxError>) -> Result<CommitInfo, TxError> {
        self.completed = true;
        self.engine.unregister_active(self.active);
        match outcome {
            Ok(Some(write_ts)) => {
                EngineStats::bump(&self.engine.stats.commits_rw);
                Ok(CommitInfo {
                    read_ts: if self.baseline { 0 } else { self.read_ts },
                    write_ts: Some(write_ts),
                })
            }
            Ok(None) => {
                // Baseline read-only commit: validated, nothing installed.
                EngineStats::bump(&self.engine.stats.commits_ro);
                Ok(CommitInfo {
                    read_ts: 0,
                    write_ts: None,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Issues one phase: meters its messages, runs the destination-side work
    /// closures, stashes the results in `self.pending`, and returns the
    /// completion deadline (None when every verb completes immediately).
    fn issue_phase(&mut self) -> Result<Option<Instant>, TxError> {
        Ok(match self.phase {
            CommitPhase::Lock => self.issue_lock(),
            CommitPhase::AcquireWriteTs => self.issue_acquire_write_ts(),
            CommitPhase::Validate => self.issue_validate()?,
            CommitPhase::ReplicateBackups => self.issue_replicate_backups(),
            CommitPhase::InstallPrimary => self.issue_install_primary(),
            CommitPhase::Truncate => self.issue_truncate(),
            CommitPhase::OperationLog => self.issue_operation_log(),
            CommitPhase::Done => unreachable!("advance() returns before issuing Done"),
        })
    }

    /// Acts on one issued phase's results and picks the next phase.
    fn finish_phase(&mut self, pending: Pending) -> Result<Step, TxError> {
        Ok(match pending {
            Pending::Lock(outcomes) => {
                self.finish_lock(outcomes)?;
                Step::Next(if self.baseline {
                    CommitPhase::Validate
                } else if self.si {
                    CommitPhase::ReplicateBackups
                } else {
                    CommitPhase::AcquireWriteTs
                })
            }
            Pending::AcquireWriteTs => Step::Next(if self.si {
                CommitPhase::InstallPrimary
            } else {
                CommitPhase::Validate
            }),
            Pending::Validate(completions) => {
                let failure = completions.into_iter().filter_map(|c| c.value).min();
                if let Some(addr) = failure {
                    return Err(self.abort(AbortReason::ValidationFailed(addr)));
                }
                if self.baseline && self.plan.is_empty() && self.plan.cancelled_allocs.is_empty() {
                    // Baseline read-only transactions stop after validating
                    // every read (FaRMv1 has no snapshots).
                    return Ok(Step::Finish(None));
                }
                Step::Next(CommitPhase::ReplicateBackups)
            }
            Pending::Replicate => {
                if let Some(target) = self.deferred_wait_target.take() {
                    // Residual deferred uncertainty wait — normally zero,
                    // the phase deadline already covered it (issue folded
                    // the estimate in). Completing it here, before the
                    // install (or install enqueue) below, is what keeps
                    // writes unexposed until the timestamp is in the past:
                    // strictness is preserved.
                    let clock = Arc::clone(self.engine.handle().clock());
                    let waited = clock.complete_deferred_wait(target);
                    self.record_write_wait(waited, true);
                }
                if self.early_ack {
                    // The transaction is durable: every COMMIT-BACKUP is
                    // acked. Post COMMIT-PRIMARY, hand the installs to the
                    // backlog, and report success — stages 2 and 3 run in
                    // the background.
                    self.early_ack_finish()
                } else {
                    Step::Next(if !self.baseline && self.si && !self.ts_acquired {
                        // Serial SI keeps the PR-1 order: acquire after the
                        // replication latency has been paid.
                        CommitPhase::AcquireWriteTs
                    } else {
                        CommitPhase::InstallPrimary
                    })
                }
            }
            Pending::Install(completions) => {
                if self.baseline {
                    // Baseline "timestamps" are per-object version counters;
                    // the commit reports the largest one it installed.
                    self.write_ts = completions.iter().map(|c| c.value).max().unwrap_or(0);
                }
                self.locked.clear();
                Step::Next(CommitPhase::Truncate)
            }
            Pending::Truncate => Step::Next(
                if !self.baseline && self.engine.config().operation_logging {
                    CommitPhase::OperationLog
                } else {
                    CommitPhase::Done
                },
            ),
            Pending::OperationLog => Step::Next(CommitPhase::Done),
        })
    }

    /// Piggybacks the coordinator's truncation watermark on an outgoing verb
    /// to `dest` (stage 3 of the lifecycle: zero standalone messages).
    fn piggyback(&self, dest: NodeId) {
        self.engine
            .backlog()
            .deliver_truncation(&self.engine, dest, false);
    }

    // ------------------------------------------------------------------
    // LOCK
    // ------------------------------------------------------------------

    /// Sends one LOCK batch per destination primary — **all destinations at
    /// once** under pipelined dispatch. Primary-side LOCK processing (batch
    /// lock acquisition, multi-version old-version copies) runs inside the
    /// per-destination verb closures.
    fn issue_lock(&mut self) -> Option<Instant> {
        let engine = Arc::clone(&self.engine);
        let stats = &engine.stats;
        // Message accounting: one two-sided LOCK message per destination.
        for dest in self.plan.lock_destinations() {
            engine
                .meter
                .rpc_batch_deferred(dest.lock_ops, dest.lock_bytes);
            EngineStats::bump(&stats.lock_batches);
            EngineStats::add(&stats.lock_batch_objects, dest.lock_ops);
        }
        let mode = engine.config().mode;
        let plan = &self.plan;
        let engine_ref: &NodeEngine = &engine;
        let mut set: CompletionSet<'_, DestLockOutcome> =
            CompletionSet::new(engine.meter.latency_model());
        for (primary, group_idxs) in plan.groups_by_primary() {
            let lockable: Vec<usize> = group_idxs
                .into_iter()
                .filter(|&gi| plan.groups[gi].intents.iter().any(|i| i.needs_lock()))
                .collect();
            if lockable.is_empty() {
                continue; // Alloc-only destination: no LOCK message.
            }
            self.piggyback(primary);
            let work = move || lock_at_destination(engine_ref, plan, &lockable, mode);
            if primary == engine.id() {
                // The LOCK message is still metered above (it is a protocol
                // message either way), but a co-located primary processes it
                // without crossing the wire: no injected latency, matching
                // the local bypass every other phase applies.
                set.issue_local(primary, work);
            } else {
                set.issue(primary, Verb::Rpc, work);
            }
        }
        let (outcomes, deadline) = set.complete_deferred(self.dispatch, Some(engine.meter.stats()));
        self.pending = Some(Pending::Lock(outcomes));
        deadline
    }

    /// Merges every destination's locks (failed destinations included:
    /// partially acquired batches must unwind too) and picks the failure
    /// with the smallest global address, so the abort reason is
    /// deterministic whatever order the destinations completed in.
    fn finish_lock(&mut self, outcomes: Vec<Completion<DestLockOutcome>>) -> Result<(), TxError> {
        let mut failure: Option<(Addr, AbortReason)> = None;
        for completion in outcomes {
            let outcome = completion.value;
            self.locked.extend(outcome.locks);
            if let Some((addr, reason)) = outcome.failure {
                if failure.as_ref().is_none_or(|&(prev, _)| addr < prev) {
                    failure = Some((addr, reason));
                }
            }
        }
        // Groups ascend by region and intents by address, so sorting by
        // (group, intent) restores the ascending global address order that
        // install relies on and unwind releases in reverse.
        self.locked.sort_by_key(|h| (h.group, h.intent));
        match failure {
            Some((_, reason)) => Err(self.abort(reason)),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Write timestamp
    // ------------------------------------------------------------------

    /// Acquires the write timestamp, waiting out the uncertainty as the mode
    /// requires. `overlapped` marks waits performed while COMMIT-BACKUP
    /// writes were in flight (for the overlap statistics). Serializable
    /// transactions (and strict SI transactions) wait; non-strict SI takes
    /// the upper bound without waiting. The `unsafe_skip_write_wait`
    /// ablation skips the wait entirely, which breaks serializability
    /// (Section 7.3).
    fn acquire_write_ts(&mut self, si: bool, overlapped: bool) {
        let clock = Arc::clone(self.engine.handle().clock());
        self.ts_acquired = true;
        if self.engine.config().unsafe_skip_write_wait {
            let (ts, _) = clock.get_ts(TsMode::NonStrictUpper);
            self.write_ts = ts.as_nanos();
            self.register_trunc();
            return;
        }
        let mode = if si && !self.opts.strict {
            TsMode::NonStrictUpper
        } else {
            TsMode::StrictWait
        };
        let (ts, waited) = clock.get_ts(mode);
        self.record_write_wait(waited, overlapped);
        self.write_ts = ts.as_nanos();
        self.register_trunc();
    }

    /// Pipelined serializable acquisition: take the interval's upper bound
    /// **without waiting** and remember it; the uncertainty wait happens in
    /// the ReplicateBackups phase, overlapping the COMMIT-BACKUP flight
    /// window (Figure 4). Writes are still only exposed (installed) after
    /// the wait completes, so strictness is preserved.
    fn defer_write_ts(&mut self) {
        let clock = Arc::clone(self.engine.handle().clock());
        self.ts_acquired = true;
        if self.engine.config().unsafe_skip_write_wait {
            let (ts, _) = clock.get_ts(TsMode::NonStrictUpper);
            self.write_ts = ts.as_nanos();
            self.register_trunc();
            return;
        }
        let ts = clock.get_ts_deferred();
        self.write_ts = ts.as_nanos();
        self.deferred_wait_target = Some(ts.as_nanos());
        self.register_trunc();
    }

    /// Reserves the freshly acquired write timestamp in the coordinator's
    /// truncation in-flight set (early-ack only). Doing it at acquisition —
    /// before any backup record can exist — guarantees the `truncate_below`
    /// watermark never overtakes a transaction whose record is still being
    /// deposited.
    fn register_trunc(&mut self) {
        if self.early_ack && !self.trunc_registered {
            self.trunc_registered = true;
            self.engine
                .backlog()
                .trunc_begin(self.engine.id(), self.write_ts);
        }
    }

    fn record_write_wait(&self, waited: u64, overlapped: bool) {
        if waited > 0 {
            EngineStats::bump(&self.engine.stats.write_waits);
            EngineStats::add(&self.engine.stats.write_wait_ns, waited);
            if overlapped {
                EngineStats::add(&self.engine.stats.write_wait_overlapped_ns, waited);
            }
        }
    }

    /// Local-only phase: acquire (or, pipelined serializable, defer) the
    /// write timestamp. Completes immediately.
    fn issue_acquire_write_ts(&mut self) -> Option<Instant> {
        if self.pipelined() && !self.si {
            // Serializable pipeline: take the upper bound now and wait out
            // the uncertainty while COMMIT-BACKUP flies.
            self.defer_write_ts();
        } else {
            self.acquire_write_ts(self.si, false);
        }
        self.pending = Some(Pending::AcquireWriteTs);
        None
    }

    // ------------------------------------------------------------------
    // VALIDATE
    // ------------------------------------------------------------------

    /// Read validation with one-sided header reads, batched **per destination
    /// primary** exactly like the LOCK path — and fanned out to all
    /// destinations at once under pipelined dispatch. FaRMv2 (serializable)
    /// validates reads that were not written; the baseline validates every
    /// read — including those of read-only transactions — against the exact
    /// version observed. The failure reported is the smallest failing
    /// address, whatever order the destinations completed in.
    fn issue_validate(&mut self) -> Result<Option<Instant>, TxError> {
        // Written reads need no validation. Small plans (the common
        // OLTP case) probe the plan directly instead of materializing a
        // hash set per commit.
        let small = self.plan.total_intents() <= 16;
        let written: std::collections::HashSet<Addr> = if small {
            std::collections::HashSet::new()
        } else {
            self.plan
                .groups
                .iter()
                .flat_map(|g| g.intents.iter().map(|i| i.addr))
                .collect()
        };
        let is_written = |addr: Addr| {
            if small {
                self.plan.touches(addr)
            } else {
                written.contains(&addr)
            }
        };
        // Group the unwritten reads by destination primary, ascending by
        // address within each group (deterministic first-failure reporting),
        // carrying each address's resolved region so the validation closure
        // does not re-resolve it.
        type Unvalidated = (Addr, u64, Arc<farm_memory::Region>);
        let mut by_primary: std::collections::BTreeMap<NodeId, Vec<Unvalidated>> =
            std::collections::BTreeMap::new();
        for (&addr, &observed) in &self.read_set {
            if is_written(addr) {
                continue;
            }
            let Ok((primary, region)) = self.engine.primary_region_of(addr) else {
                return Err(self.abort(AbortReason::ValidationFailed(addr)));
            };
            by_primary
                .entry(primary)
                .or_default()
                .push((addr, observed, region));
        }
        for entries in by_primary.values_mut() {
            entries.sort_by_key(|&(addr, ..)| addr);
        }
        let engine = Arc::clone(&self.engine);
        let stats = &engine.stats;
        let baseline = self.baseline;
        let read_ts = self.read_ts;
        let engine_ref: &NodeEngine = &engine;
        let mut set: CompletionSet<'_, Option<Addr>> =
            CompletionSet::new(engine.meter.latency_model());
        for (&primary, entries) in &by_primary {
            // One VALIDATE message per destination primary carrying all of
            // its header reads (16 bytes each); free when the coordinator is
            // that primary (local bypass).
            EngineStats::bump(&stats.validate_batches);
            EngineStats::add(&stats.validate_batch_objects, entries.len() as u64);
            self.piggyback(primary);
            let work = move || validate_at_destination(engine_ref, entries, baseline, read_ts);
            if primary == engine.id() {
                EngineStats::add(&stats.read_local_bypass, entries.len() as u64);
                set.issue_local(primary, work);
            } else {
                engine
                    .meter
                    .read_batch_deferred(entries.len() as u64, 16 * entries.len());
                set.issue(primary, Verb::RdmaRead, work);
            }
        }
        let (completions, deadline) =
            set.complete_deferred(self.dispatch, Some(engine.meter.stats()));
        self.pending = Some(Pending::Validate(completions));
        Ok(deadline)
    }

    // ------------------------------------------------------------------
    // COMMIT-BACKUP
    // ------------------------------------------------------------------

    /// One RDMA write per **backup destination** carrying the transaction's
    /// entire payload for that machine, acknowledged by the NIC only. Under
    /// pipelined dispatch this phase also performs the pending
    /// write-timestamp work *while the writes are in flight*: the deferred
    /// serializable uncertainty wait, or the whole SI acquisition — the
    /// Figure 4 overlap. The phase then costs
    /// `max(replication, uncertainty)` instead of their sum.
    fn issue_replicate_backups(&mut self) -> Option<Instant> {
        let engine = Arc::clone(&self.engine);
        let mut set: CompletionSet<'_, ()> = CompletionSet::new(engine.meter.latency_model());
        for (node, ops, bytes) in self.plan.backup_destinations() {
            engine.meter.write_batch_deferred(ops, bytes);
            engine.meter.ack();
            EngineStats::bump(&engine.stats.backup_batches);
            self.piggyback(node);
            if node == engine.id() {
                set.issue_local(node, || ());
            } else {
                set.issue(node, Verb::RdmaWrite, || ());
            }
        }
        let mut wait_deadline: Option<Instant> = None;
        if self.pipelined() && !self.baseline {
            let overlapped = !set.is_empty();
            if !self.ts_acquired {
                // Pipelined SI: the acquisition (and its wait, for strict
                // SI) rides the replication flight window.
                self.acquire_write_ts(self.si, overlapped);
            } else if let Some(&target) = self.deferred_wait_target.as_ref() {
                // Pipelined serializable: the deferred uncertainty wait is
                // **folded into the phase deadline** rather than spun out
                // inline — a pipeline thread stays free to advance its
                // other flights, and the phase still costs
                // `max(replication, uncertainty)`. The residual (normally
                // zero: the deadline covers it) is completed in
                // `finish_replicate` before any install can expose the
                // write, so strictness is preserved.
                let clock = engine.handle().clock();
                let remaining = clock
                    .time_unchecked()
                    .map(|i| target.saturating_sub(i.lower))
                    .unwrap_or(0);
                if remaining > 0 {
                    wait_deadline =
                        Some(Instant::now() + std::time::Duration::from_nanos(remaining));
                    self.record_write_wait(remaining, overlapped);
                }
            }
        }
        let (_, flight_deadline) = set.complete_deferred(self.dispatch, Some(engine.meter.stats()));
        self.pending = Some(Pending::Replicate);
        match (flight_deadline, wait_deadline) {
            (Some(flight), Some(wait)) => Some(flight.max(wait)),
            (deadline, None) | (None, deadline) => deadline,
        }
    }

    /// Completes an early-acked commit: materialize the COMMIT-BACKUP
    /// records in the backup redo logs (they are durable now — every ack
    /// drained), post the COMMIT-PRIMARY messages (metered, fire-and-forget),
    /// initialize this transaction's allocations eagerly (they carry no lock,
    /// so helpers could not finish them), and hand the held locks to the
    /// backlog as a [`PendingInstall`].
    fn early_ack_finish(&mut self) -> Step {
        let engine = Arc::clone(&self.engine);
        let write_ts = self.write_ts;
        let multi_version = engine.config().mode.is_multi_version();
        // Backup redo-log records: one entry per backup destination holding
        // that destination's intents, with the primary's slab size classes
        // resolved so the backup can mirror the layout.
        let slab_sizes: Vec<Option<Vec<usize>>> = self
            .plan
            .groups
            .iter()
            .map(|g| slab_sizes_of(&engine, g))
            .collect();
        let mut per_backup: Vec<(NodeId, Vec<RecordIntent>)> = Vec::new();
        for (group, sizes) in self.plan.groups.iter().zip(&slab_sizes) {
            let Some(sizes) = sizes else {
                // The primary's region is gone (e.g. dropped after a kill):
                // nothing to mirror.
                continue;
            };
            for &backup in &group.backups {
                let records = match per_backup.iter_mut().find(|(n, _)| *n == backup) {
                    Some((_, records)) => records,
                    None => {
                        per_backup.push((backup, Vec::with_capacity(group.intents.len())));
                        &mut per_backup.last_mut().expect("just pushed").1
                    }
                };
                for (intent, &slab_size) in group.intents.iter().zip(sizes) {
                    records.push(RecordIntent {
                        addr: intent.addr,
                        free: intent.kind == IntentKind::Free,
                        data: intent.data.clone(),
                        slab_size,
                    });
                }
            }
        }
        for (backup, intents) in per_backup {
            engine.backlog().deposit(
                backup,
                LogEntry {
                    coordinator: engine.id(),
                    write_ts,
                    intents,
                },
            );
        }
        // COMMIT-PRIMARY is posted now (the messages are on the wire, hence
        // metered) but never awaited: their destination-side processing is
        // the backlog's job.
        for (_node, ops, bytes) in self.plan.primary_destinations() {
            engine.meter.write_batch_deferred(ops, bytes);
            EngineStats::bump(&engine.stats.primary_batches);
        }
        // Allocations initialize eagerly: fresh slots are invisible (not
        // locked) until initialized, so a reader could not help them the way
        // it helps locked updates.
        for group in &self.plan.groups {
            for intent in group.intents.iter().filter(|i| i.kind == IntentKind::Alloc) {
                if let Ok(slot) = group.region_handle.slot(intent.addr) {
                    slot.initialize(write_ts, intent.data.clone());
                }
            }
        }
        for &addr in &self.plan.cancelled_allocs {
            if let Ok((_p, region)) = engine.primary_region_of(addr) {
                let _ = region.free(addr);
            }
        }
        // Hand the held locks to the backlog. The truncation reservation
        // transfers with them: it is withdrawn (raising the watermark) when
        // the last destination installs.
        let plan = std::mem::replace(
            &mut self.plan,
            CommitPlan {
                groups: Vec::new(),
                cancelled_allocs: Vec::new(),
            },
        );
        let locked = std::mem::take(&mut self.locked);
        self.trunc_registered = false;
        EngineStats::bump(&engine.stats.early_ack_commits);
        engine.enqueue_install(PendingInstall::new(
            engine.id(),
            write_ts,
            multi_version,
            plan,
            locked,
        ));
        Step::Finish(Some(write_ts))
    }

    // ------------------------------------------------------------------
    // COMMIT-PRIMARY (synchronous path only)
    // ------------------------------------------------------------------

    /// One batched install message per destination primary, all destinations
    /// in flight together under pipelined dispatch: updates install and
    /// unlock, frees tombstone (multi-version) or clear (single-version),
    /// allocs initialize. Within each destination the held locks apply in
    /// ascending address order (the acquisition order).
    fn issue_install_primary(&mut self) -> Option<Instant> {
        let engine = Arc::clone(&self.engine);
        // Message accounting: one RDMA write per destination primary.
        for (_node, ops, bytes) in self.plan.primary_destinations() {
            engine.meter.write_batch_deferred(ops, bytes);
            EngineStats::bump(&engine.stats.primary_batches);
        }

        let multi_version = engine.config().mode.is_multi_version();
        let baseline = self.baseline;
        let write_ts = self.write_ts;
        let plan = &self.plan;
        let locked = &self.locked;
        let engine_ref: &NodeEngine = &engine;

        // Group the work per destination primary: held-lock indices, groups
        // holding alloc intents, and cancelled allocations.
        let mut lock_idxs: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (li, held) in locked.iter().enumerate() {
            lock_idxs
                .entry(plan.groups[held.group].primary)
                .or_default()
                .push(li);
        }
        let mut cancelled: HashMap<NodeId, Vec<Addr>> = HashMap::new();
        for &addr in &plan.cancelled_allocs {
            if let Ok((primary, _region)) = engine.primary_region_of(addr) {
                cancelled.entry(primary).or_default().push(addr);
            }
        }
        let mut set: CompletionSet<'_, u64> = CompletionSet::new(engine.meter.latency_model());
        for (primary, group_idxs) in plan.groups_by_primary() {
            let idxs = lock_idxs.remove(&primary).unwrap_or_default();
            let cancels = cancelled.remove(&primary).unwrap_or_default();
            let work = move || {
                install_at_destination(
                    engine_ref,
                    plan,
                    locked,
                    &idxs,
                    &group_idxs,
                    &cancels,
                    write_ts,
                    baseline,
                    multi_version,
                )
            };
            if primary == engine.id() {
                set.issue_local(primary, work);
            } else {
                set.issue(primary, Verb::RdmaWrite, work);
            }
        }
        let (completions, deadline) =
            set.complete_deferred(self.dispatch, Some(engine.meter.stats()));
        // A transaction that only alloc+freed objects in some region has
        // cancelled allocations at a primary with *no* plan group (cancelled
        // intents carry no message): return those slots here, as the serial
        // driver always did.
        for addrs in cancelled.into_values() {
            for addr in addrs {
                if let Ok((_p, region)) = engine.primary_region_of(addr) {
                    let _ = region.free(addr);
                }
            }
        }
        self.pending = Some(Pending::Install(completions));
        deadline
    }

    // ------------------------------------------------------------------
    // TRUNCATE (synchronous path only)
    // ------------------------------------------------------------------

    /// Backups apply the new versions to their replicas — one truncation
    /// message per backup destination, all in flight together under
    /// pipelined dispatch. (In operation-logging mode data is not
    /// replicated, so this is a no-op; under early-ack this phase never
    /// runs — truncation piggybacks as a watermark instead.)
    fn issue_truncate(&mut self) -> Option<Instant> {
        self.pending = Some(Pending::Truncate);
        if self.engine.config().operation_logging {
            return None;
        }
        let engine = Arc::clone(&self.engine);
        let plan = &self.plan;
        let write_ts = self.write_ts;
        // Slab size classes per group, resolved at the coordinator (which
        // mirrors the primary's layout when creating backup slabs).
        let slab_sizes: Vec<Option<Vec<usize>>> = plan
            .groups
            .iter()
            .map(|g| slab_sizes_of(&engine, g))
            .collect();
        let mut destinations: Vec<NodeId> = Vec::new();
        for (group, sizes) in plan.groups.iter().zip(&slab_sizes) {
            if sizes.is_none() {
                // The primary's region is gone (e.g. dropped after a kill):
                // nothing to mirror, no message to meter.
                continue;
            }
            for &backup in &group.backups {
                if !destinations.contains(&backup) {
                    destinations.push(backup);
                }
            }
        }
        let engine_ref: &NodeEngine = &engine;
        let slab_sizes_ref = &slab_sizes;
        let mut set: CompletionSet<'_, ()> = CompletionSet::new(engine.meter.latency_model());
        for backup in destinations {
            // Synchronous truncations are standalone two-sided messages, one
            // per destination.
            engine.meter.rpc_batch_deferred(1, 16);
            EngineStats::bump(&engine.stats.truncate_batches);
            let work =
                move || truncate_at_backup(engine_ref, plan, slab_sizes_ref, backup, write_ts);
            if backup == engine.id() {
                set.issue_local(backup, work);
            } else {
                set.issue(backup, Verb::Rpc, work);
            }
        }
        let (_, deadline) = set.complete_deferred(self.dispatch, Some(engine.meter.stats()));
        deadline
    }

    // ------------------------------------------------------------------
    // Operation log
    // ------------------------------------------------------------------

    /// Operation-logging mode: append the transaction description to
    /// `replication` in-memory logs spread over the cluster (Section 5.6),
    /// all replicas in flight together under pipelined dispatch.
    fn issue_operation_log(&mut self) -> Option<Instant> {
        let engine = Arc::clone(&self.engine);
        let writes: Vec<Addr> = self
            .plan
            .groups
            .iter()
            .flat_map(|g| {
                g.intents
                    .iter()
                    .filter(|i| i.kind != IntentKind::Free)
                    .map(|i| i.addr)
            })
            .collect();
        let record = OpLogRecord {
            coordinator: engine.id(),
            write_ts: self.write_ts,
            writes,
        };
        let members = engine.cluster().current_config().members;
        let replication = engine.cluster().config().replication.min(members.len());
        // Load-balance the log replicas by coordinator id + write ts.
        let start = (engine.id().index() + self.write_ts as usize) % members.len();
        let engine_ref: &NodeEngine = &engine;
        let record_ref = &record;
        let mut set: CompletionSet<'_, ()> = CompletionSet::new(engine.meter.latency_model());
        for k in 0..replication {
            let target = members[(start + k) % members.len()];
            engine
                .meter
                .write_batch_deferred(1, 64 + record.writes.len() * 8);
            engine.meter.ack();
            if target == engine.id() {
                // Store the record at this node's engine; remote replicas
                // are metered only — going through the cluster keeps the
                // accounting symmetric even though only the local engine
                // handle is reachable from here.
                set.issue_local(target, || engine_ref.append_op_log(record_ref.clone()));
            } else {
                set.issue(target, Verb::RdmaWrite, || ());
            }
        }
        let (_, deadline) = set.complete_deferred(self.dispatch, Some(engine.meter.stats()));
        self.pending = Some(Pending::OperationLog);
        deadline
    }

    // ------------------------------------------------------------------
    // Abort
    // ------------------------------------------------------------------

    /// Routes a phase failure through the central unwind step. By the time
    /// this runs, every in-flight sibling verb of the failing phase has
    /// already been drained (the completion set never short-circuits), so
    /// `self.locked` holds the locks of *all* destinations, in ascending
    /// global address order. A write timestamp reserved for truncation is
    /// withdrawn — which can only *unblock* earlier transactions'
    /// watermarks, never lose them.
    fn abort(&mut self, reason: AbortReason) -> TxError {
        if self.trunc_registered {
            self.trunc_registered = false;
            self.engine
                .backlog()
                .trunc_complete(self.engine.id(), self.write_ts);
        }
        unwind(
            &self.engine,
            &mut self.locked,
            &self.alloc_set,
            self.phase,
            reason,
        )
    }
}

impl Drop for CommitDriver {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        self.completed = true;
        // Abandoned mid-flight (e.g. a panic unwinding through a pipeline's
        // pump): the stashed phase results decide what is safe to undo.
        match self.pending.take() {
            Some(Pending::Lock(outcomes)) => {
                // The destination-side lock closures already ran at issue
                // time; their locks live in the completions, not in
                // `self.locked` yet — merge them so the unwind releases
                // every one.
                for completion in outcomes {
                    self.locked.extend(completion.value.locks);
                }
                self.locked.sort_by_key(|h| (h.group, h.intent));
            }
            Some(Pending::Install(_)) | Some(Pending::Truncate) | Some(Pending::OperationLog) => {
                // The writes are already installed and unlocked (install
                // work runs at issue time): unwinding now would free
                // allocations that are durable committed state. Withdraw
                // the registrations and stop.
                if self.trunc_registered {
                    self.trunc_registered = false;
                    self.engine
                        .backlog()
                        .trunc_complete(self.engine.id(), self.write_ts);
                }
                self.engine.unregister_active(self.active);
                return;
            }
            _ => {}
        }
        // Pre-install states: release the locks, roll the allocations back,
        // withdraw every registration. `abort` handles the truncation
        // reservation and `unwind` clears `locked`.
        let _ = self.abort(AbortReason::UserRequested);
        self.engine.unregister_active(self.active);
    }
}

// ----------------------------------------------------------------------
// Destination-side verb work (runs inside completion-set closures, on the
// coordinator thread or on worker threads standing in for the destination
// machines' cores)
// ----------------------------------------------------------------------

/// Primary-side LOCK processing for one destination: acquire every group's
/// batch atomically-in-order, then (multi-version mode) copy the current
/// version of each locked object into old-version memory while holding the
/// lock. Locks acquired before a failure are *returned, not released* — the
/// coordinator's unwind releases them together with every other
/// destination's, preserving the single central abort path.
///
/// A conflict against a lock held by an **already-durable** transaction
/// (early-acked, install still pending) is not a real conflict: the locker
/// helps complete that install and retries the batch, exactly as a real
/// primary would process the straggler COMMIT-PRIMARY first.
fn lock_at_destination(
    engine: &NodeEngine,
    plan: &CommitPlan,
    group_idxs: &[usize],
    mode: EngineMode,
) -> DestLockOutcome {
    let mut out = DestLockOutcome {
        locks: Vec::new(),
        failure: None,
    };
    for &gi in group_idxs {
        let group = &plan.groups[gi];
        let entries = group.lock_entries();
        if entries.is_empty() {
            continue;
        }
        // The destination may have died while the verb was in flight
        // (fault injection): fail the batch rather than touch dead memory.
        if !engine.cluster().node(group.primary).is_alive() {
            let addr = entries[0].0;
            out.failure = Some((addr, AbortReason::NodeUnavailable(addr)));
            return out;
        }
        let mut help_attempts = 0u32;
        let slots = loop {
            match group.region_handle.try_lock_batch(&entries) {
                Ok(slots) => break slots,
                Err(failure) => {
                    if failure.outcome == LockOutcome::Conflict
                        && help_attempts < 8
                        && engine.help_install(failure.addr)
                    {
                        help_attempts += 1;
                        continue;
                    }
                    let reason = match failure.outcome {
                        LockOutcome::NotAllocated => AbortReason::BadAddress(failure.addr),
                        _ => AbortReason::LockConflict(failure.addr),
                    };
                    out.failure = Some((failure.addr, reason));
                    return out;
                }
            }
        };
        let lockable = slots.len();
        let mut slot_iter = slots.into_iter();
        for (ii, intent) in group.intents.iter().enumerate() {
            if !intent.needs_lock() {
                continue;
            }
            let slot = slot_iter.next().expect("one slot per lockable intent");
            out.locks.push(HeldLock {
                group: gi,
                intent: ii,
                slot,
                old_addr: None,
                truncated: false,
            });
        }
        // Primary-side LOCK processing: in multi-version mode, copy the
        // current version of every locked object (updates and frees alike —
        // a free preserves history identically) into old-version memory
        // while holding the lock.
        if let EngineMode::FarmV2 {
            multi_version: true,
            mv_policy,
        } = mode
        {
            let start = out.locks.len() - lockable;
            for li in start..out.locks.len() {
                let snapshot = out.locks[li].slot.header_snapshot();
                let old = OldVersion {
                    ts: snapshot.ts,
                    ovp: snapshot.ovp,
                    data: out.locks[li].slot.raw_data(),
                };
                match allocate_old_version(engine, group.primary, old, mv_policy) {
                    Ok(addr) => {
                        out.locks[li].old_addr = Some(addr);
                        EngineStats::bump(&engine.stats.old_versions_allocated);
                    }
                    Err(AbortReason::OldVersionMemoryExhausted)
                        if mv_policy == MvPolicy::Truncate =>
                    {
                        EngineStats::bump(&engine.stats.oldver_truncations);
                        out.locks[li].truncated = true;
                    }
                    Err(reason) => {
                        let held = &out.locks[li];
                        let addr = plan.groups[held.group].intents[held.intent].addr;
                        out.failure = Some((addr, reason));
                        return out;
                    }
                }
            }
        }
    }
    out
}

/// Allocates an old version at `primary`, applying the configured policy
/// when old-version memory is exhausted. The executing thread performs the
/// allocation directly on the primary's store through the store's per-thread
/// cursor shard, standing in for the primary thread that processes the LOCK
/// batch — so concurrent LOCK batches (to different primaries, or from
/// different threads to the same primary) never contend on any
/// coordinator-global lock.
fn allocate_old_version(
    engine: &NodeEngine,
    primary: NodeId,
    old: OldVersion,
    policy: MvPolicy,
) -> Result<OldAddr, AbortReason> {
    const MAX_BLOCK_RETRIES: u32 = 1_000;
    let store = Arc::clone(engine.cluster().node(primary).old_versions());
    let mut attempt = 0;
    loop {
        let allocated = store.allocate_local(old.clone()).or_else(|_| {
            // Memory pressure: idle per-thread cursors pin partially
            // filled blocks as uncollectable, so seal them all, reclaim
            // below the safe point, and retry once before invoking the
            // policy (a store with many quiet threads would otherwise
            // report exhaustion while holding mostly-empty blocks).
            store.detach_cursors();
            store.collect(engine.cluster().node(primary).gc_safe_point());
            store.allocate_local(old.clone())
        });
        match allocated {
            Ok(addr) => return Ok(addr),
            Err(_) => match policy {
                MvPolicy::Abort => {
                    EngineStats::bump(&engine.stats.aborts_oldver_memory);
                    return Err(AbortReason::OldVersionMemoryExhausted);
                }
                MvPolicy::Truncate => return Err(AbortReason::OldVersionMemoryExhausted),
                MvPolicy::Block => {
                    attempt += 1;
                    EngineStats::bump(&engine.stats.oldver_blocks);
                    if attempt > MAX_BLOCK_RETRIES {
                        return Err(AbortReason::OldVersionMemoryExhausted);
                    }
                    // Back off and loop: the safe point advances while
                    // we wait, so the pre-retry reclamation above frees
                    // more each time around.
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            },
        }
    }
}

/// Validates one destination's batch of header reads. Returns the first
/// (smallest, entries are sorted) failing address, or `None` when the whole
/// batch validates. A locked header belonging to an already-durable
/// transaction is resolved by helping its install — the re-read header then
/// decides honestly (a newer installed version still fails validation).
fn validate_at_destination(
    engine: &NodeEngine,
    entries: &[(Addr, u64, Arc<farm_memory::Region>)],
    baseline: bool,
    read_ts: u64,
) -> Option<Addr> {
    for (addr, observed, region) in entries {
        let ok = match region.slot(*addr) {
            Ok(slot) => {
                let mut h = slot.header_snapshot();
                if h.locked && engine.help_install(*addr) {
                    h = slot.header_snapshot();
                }
                if baseline {
                    !h.locked && !h.tombstone && h.ts == *observed
                } else {
                    // The snapshot is still current iff no version (or
                    // tombstone) newer than the read timestamp was
                    // installed (Algorithm 2, line 19).
                    !h.locked && !h.tombstone && h.ts <= read_ts
                }
            }
            Err(_) => false,
        };
        if !ok {
            return Some(*addr);
        }
    }
    None
}

/// Applies one held lock at its primary: install-and-unlock for updates,
/// tombstone (multi-version) or clear (single-version) for frees, linking
/// the old-version chain and arming its GC time. Shared by the synchronous
/// install phase and the background [`PendingInstall`] drain/help paths.
pub(crate) fn install_held_lock(
    engine: &NodeEngine,
    plan: &CommitPlan,
    held: &HeldLock,
    new_ts: u64,
    multi_version: bool,
) {
    let group = &plan.groups[held.group];
    let intent = &group.intents[held.intent];
    let ovp = if multi_version && !held.truncated {
        if let Some(old_addr) = held.old_addr {
            // The old version becomes reclaimable once the GC safe
            // point passes this transaction's write timestamp.
            engine
                .cluster()
                .node(group.primary)
                .old_versions()
                .set_gc_time(old_addr, new_ts);
            Some(old_addr)
        } else {
            None
        }
    } else {
        None
    };
    match intent.kind {
        IntentKind::Update => {
            held.slot
                .install_and_unlock(new_ts, intent.data.clone(), ovp);
        }
        IntentKind::Free if multi_version => {
            // A multi-version free preserves history exactly as an
            // update does: the slot becomes a tombstone anchoring the
            // old-version chain, and is reclaimed by the GC sweep once
            // the safe point passes `new_ts`.
            held.slot.install_tombstone_and_unlock(new_ts, ovp);
            group.region_handle.note_tombstone(intent.addr, new_ts);
        }
        IntentKind::Free => {
            held.slot.clear();
            let _ = group.region_handle.free(intent.addr);
        }
        IntentKind::Alloc => unreachable!("allocs take no lock"),
    }
}

/// COMMIT-PRIMARY processing for one destination: apply the held locks in
/// ascending address order, initialize this destination's allocs, and return
/// the slots of cancelled allocations. Returns the largest baseline version
/// installed (0 in timestamp modes).
#[allow(clippy::too_many_arguments)]
fn install_at_destination(
    engine: &NodeEngine,
    plan: &CommitPlan,
    locked: &[HeldLock],
    lock_idxs: &[usize],
    group_idxs: &[usize],
    cancelled: &[Addr],
    write_ts: u64,
    baseline: bool,
    multi_version: bool,
) -> u64 {
    let mut max_version = 0u64;
    for &li in lock_idxs {
        let held = &locked[li];
        let group = &plan.groups[held.group];
        let intent = &group.intents[held.intent];
        let new_ts = if baseline {
            // Baseline "timestamps" are per-object version counters.
            let v = intent.expected_ts + 1;
            max_version = max_version.max(v);
            v
        } else {
            write_ts
        };
        install_held_lock(engine, plan, held, new_ts, multi_version);
    }
    // Initialize objects newly allocated at this destination.
    for &gi in group_idxs {
        let group = &plan.groups[gi];
        for intent in group.intents.iter().filter(|i| i.kind == IntentKind::Alloc) {
            if let Ok(slot) = group.region_handle.slot(intent.addr) {
                let ts = if baseline { 1 } else { write_ts };
                slot.initialize(ts, intent.data.clone());
            }
        }
    }
    // Return slots of objects allocated and freed by the same transaction
    // (they were never visible).
    for &addr in cancelled {
        if let Ok((_p, region)) = engine.primary_region_of(addr) {
            let _ = region.free(addr);
        }
    }
    max_version
}

/// TRUNCATE processing for one backup destination: mirror every group's
/// installed intents into the backup's replica (the synchronous path; the
/// early-ack path applies backup redo-log entries instead — see
/// [`super::backlog`]).
fn truncate_at_backup(
    engine: &NodeEngine,
    plan: &CommitPlan,
    slab_sizes: &[Option<Vec<usize>>],
    backup: NodeId,
    write_ts: u64,
) {
    for (group, sizes) in plan.groups.iter().zip(slab_sizes) {
        let Some(sizes) = sizes else {
            continue;
        };
        if !group.backups.contains(&backup) {
            continue;
        }
        let replica = engine.cluster().node(backup).regions().ensure(group.region);
        for (intent, &slab_size) in group.intents.iter().zip(sizes) {
            replica.apply_replicated(
                intent.addr,
                slab_size,
                write_ts,
                &intent.data,
                intent.kind == IntentKind::Free,
            );
        }
    }
}

/// Object sizes (slab size classes) of a group's intents at the primary,
/// used to mirror the slab layout at backups. 0 marks unresolvable slots.
fn slab_sizes_of(engine: &NodeEngine, group: &super::plan::RegionGroup) -> Option<Vec<usize>> {
    let region = engine
        .cluster()
        .node(group.primary)
        .regions()
        .get(group.region)?;
    Some(
        group
            .intents
            .iter()
            .map(|i| {
                region
                    .slab(i.addr.slab)
                    .map(|s| s.object_size())
                    .unwrap_or(0)
            })
            .collect(),
    )
}
