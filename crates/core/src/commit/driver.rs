//! The commit driver: an explicit phase state machine executing the FaRMv2
//! commit protocol (Figure 3) — or the FaRMv1-style baseline — with every
//! phase batched per destination machine.
//!
//! Phase order (serializable):
//! `Lock → AcquireWriteTs → Validate → ReplicateBackups → InstallPrimary →
//! Truncate → OperationLog → Done`.
//!
//! Phase order (snapshot isolation): replication overlaps the write-timestamp
//! wait and validation is skipped:
//! `Lock → ReplicateBackups → AcquireWriteTs → InstallPrimary → Truncate →
//! OperationLog → Done`.
//!
//! Phase order (baseline): no timestamps; every read is validated:
//! `Lock → Validate → ReplicateBackups → InstallPrimary → Truncate → Done`.
//!
//! Every phase that talks to other machines sends **one metered message per
//! destination** (see [`super::plan::CommitPlan`]); a K-object write set on
//! one primary costs one LOCK message, not K. Any failure routes through the
//! single [`unwind`](super::unwind) step, which releases every lock acquired
//! so far — across all destinations — and rolls back allocations.

use std::collections::HashMap;
use std::sync::Arc;

use farm_clock::TsMode;
use farm_memory::{Addr, LockOutcome, ObjectSlot, OldAddr, OldVersion};
use farm_net::NodeId;

use crate::engine::{NodeEngine, OpLogRecord};
use crate::error::{AbortReason, TxError};
use crate::opts::{EngineMode, IsolationLevel, MvPolicy, TxOptions};
use crate::stats::EngineStats;

use super::plan::{CommitPlan, IntentKind};
use super::unwind::unwind;

/// The phases of the commit state machine. Public so tests and tooling can
/// label per-phase observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhase {
    /// Batched LOCK messages to every destination primary; in multi-version
    /// mode the primaries copy current versions into old-version memory.
    Lock,
    /// COMMIT-BACKUP: one RDMA write per backup destination, NIC-acked.
    ReplicateBackups,
    /// Acquire the write timestamp (with uncertainty wait as configured).
    AcquireWriteTs,
    /// Read validation (serializable FaRMv2: unwritten reads; baseline:
    /// every read).
    Validate,
    /// COMMIT-PRIMARY: one batched install message per destination primary.
    InstallPrimary,
    /// TRUNCATE: backups apply the new versions.
    Truncate,
    /// Optional operation-log append (Section 5.6).
    OperationLog,
    /// Terminal state.
    Done,
}

/// One lock held by the driver, with the primary-side LOCK processing result
/// (old-version copy) attached.
pub(crate) struct HeldLock {
    /// Index of the owning group in the plan.
    pub group: usize,
    /// Index of the intent within the group.
    pub intent: usize,
    /// The locked slot (cached so install does not re-resolve).
    pub slot: Arc<ObjectSlot>,
    /// Old version allocated at the primary while processing the LOCK batch
    /// (multi-version mode).
    pub old_addr: Option<OldAddr>,
    /// Whether history was truncated for this object (MV-TRUNCATE under
    /// memory pressure).
    pub truncated: bool,
}

/// The commit driver; built by [`Transaction::commit`](crate::Transaction),
/// consumed by [`CommitDriver::run`].
pub struct CommitDriver {
    engine: Arc<NodeEngine>,
    opts: TxOptions,
    read_ts: u64,
    read_set: HashMap<Addr, u64>,
    alloc_set: Vec<Addr>,
    plan: CommitPlan,
    phase: CommitPhase,
    locked: Vec<HeldLock>,
    write_ts: u64,
    baseline: bool,
}

impl CommitDriver {
    /// Builds a driver over an already-built plan.
    pub(crate) fn new(
        engine: Arc<NodeEngine>,
        opts: TxOptions,
        read_ts: u64,
        read_set: HashMap<Addr, u64>,
        alloc_set: Vec<Addr>,
        plan: CommitPlan,
    ) -> CommitDriver {
        let baseline = engine.config().mode.is_baseline();
        CommitDriver {
            engine,
            opts,
            read_ts,
            read_set,
            alloc_set,
            plan,
            phase: CommitPhase::Lock,
            locked: Vec::new(),
            write_ts: 0,
            baseline,
        }
    }

    /// The phase the driver is currently in.
    pub fn phase(&self) -> CommitPhase {
        self.phase
    }

    /// Drives the state machine to completion. Returns the write timestamp,
    /// or `None` for a baseline read-only commit (which only validates). On
    /// error every acquired lock has been released and every allocation
    /// rolled back.
    pub(crate) fn run(mut self) -> Result<Option<u64>, TxError> {
        let si = !self.baseline && self.opts.isolation == IsolationLevel::SnapshotIsolation;
        loop {
            self.phase = match self.phase {
                CommitPhase::Lock => {
                    self.phase_lock()?;
                    if self.baseline {
                        CommitPhase::Validate
                    } else if si {
                        CommitPhase::ReplicateBackups
                    } else {
                        CommitPhase::AcquireWriteTs
                    }
                }
                CommitPhase::AcquireWriteTs => {
                    self.phase_acquire_write_ts(si);
                    if si {
                        CommitPhase::InstallPrimary
                    } else {
                        CommitPhase::Validate
                    }
                }
                CommitPhase::Validate => {
                    self.phase_validate()?;
                    if self.baseline
                        && self.plan.is_empty()
                        && self.plan.cancelled_allocs.is_empty()
                    {
                        // Baseline read-only transactions stop after
                        // validating every read (FaRMv1 has no snapshots).
                        return Ok(None);
                    }
                    CommitPhase::ReplicateBackups
                }
                CommitPhase::ReplicateBackups => {
                    self.phase_replicate_backups();
                    if self.baseline {
                        CommitPhase::InstallPrimary
                    } else if si {
                        CommitPhase::AcquireWriteTs
                    } else {
                        CommitPhase::InstallPrimary
                    }
                }
                CommitPhase::InstallPrimary => {
                    self.phase_install_primary();
                    CommitPhase::Truncate
                }
                CommitPhase::Truncate => {
                    self.phase_truncate();
                    if !self.baseline && self.engine.config().operation_logging {
                        CommitPhase::OperationLog
                    } else {
                        CommitPhase::Done
                    }
                }
                CommitPhase::OperationLog => {
                    self.phase_operation_log();
                    CommitPhase::Done
                }
                CommitPhase::Done => return Ok(Some(self.write_ts)),
            };
        }
    }

    // ------------------------------------------------------------------
    // LOCK
    // ------------------------------------------------------------------

    /// Sends one LOCK batch per destination primary and acquires the locks
    /// in ascending global address order (groups ascend by region, intents
    /// by address). The whole transaction unwinds on the first conflict.
    fn phase_lock(&mut self) -> Result<(), TxError> {
        let stats = &self.engine.stats;
        // Message accounting: one two-sided LOCK message per destination.
        for dest in self.plan.lock_destinations() {
            self.engine.meter.rpc_batch(dest.lock_ops, dest.lock_bytes);
            EngineStats::bump(&stats.lock_batches);
            EngineStats::add(&stats.lock_batch_objects, dest.lock_ops);
        }
        // Lock acquisition, region group by region group. Each group's batch
        // is processed atomically-in-order at its primary; a failure releases
        // the failing batch (inside `try_lock_batch`) and then every batch
        // acquired earlier (inside `unwind`).
        for gi in 0..self.plan.groups.len() {
            let entries = self.plan.groups[gi].lock_entries();
            let lockable = entries.len();
            if entries.is_empty() {
                continue;
            }
            let slots = match self.plan.groups[gi].region_handle.try_lock_batch(&entries) {
                Ok(slots) => slots,
                Err(failure) => {
                    let reason = match failure.outcome {
                        LockOutcome::NotAllocated => AbortReason::BadAddress(failure.addr),
                        _ => AbortReason::LockConflict(failure.addr),
                    };
                    return Err(self.abort(reason));
                }
            };
            // Register the held locks before primary-side LOCK processing so
            // a mid-batch failure unwinds them too.
            let mut slot_iter = slots.into_iter();
            for (ii, intent) in self.plan.groups[gi].intents.iter().enumerate() {
                if !intent.needs_lock() {
                    continue;
                }
                let slot = slot_iter.next().expect("one slot per lockable intent");
                self.locked.push(HeldLock {
                    group: gi,
                    intent: ii,
                    slot,
                    old_addr: None,
                    truncated: false,
                });
            }
            // Primary-side LOCK processing: in multi-version mode, copy the
            // current version of every locked object (updates and frees
            // alike — a free preserves history identically) into old-version
            // memory while holding the lock.
            if let EngineMode::FarmV2 {
                multi_version: true,
                mv_policy,
            } = self.engine.config().mode
            {
                let primary = self.plan.groups[gi].primary;
                let start = self.locked.len() - lockable;
                for li in start..self.locked.len() {
                    let snapshot = self.locked[li].slot.header_snapshot();
                    let old = OldVersion {
                        ts: snapshot.ts,
                        ovp: snapshot.ovp,
                        data: self.locked[li].slot.raw_data(),
                    };
                    match self.allocate_old_version(primary, old, mv_policy) {
                        Ok(addr) => {
                            self.locked[li].old_addr = Some(addr);
                            EngineStats::bump(&self.engine.stats.old_versions_allocated);
                        }
                        Err(AbortReason::OldVersionMemoryExhausted)
                            if mv_policy == MvPolicy::Truncate =>
                        {
                            EngineStats::bump(&self.engine.stats.oldver_truncations);
                            self.locked[li].truncated = true;
                        }
                        Err(reason) => return Err(self.abort(reason)),
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocates an old version at `primary`, applying the configured policy
    /// when old-version memory is exhausted. The coordinator thread performs
    /// the allocation directly on the primary's store through the store's
    /// per-thread cursor shard, standing in for the primary thread that
    /// processes the LOCK batch — so concurrent LOCK batches (to different
    /// primaries, or from different threads to the same primary) never
    /// contend on any coordinator-global lock.
    fn allocate_old_version(
        &self,
        primary: NodeId,
        old: OldVersion,
        policy: MvPolicy,
    ) -> Result<OldAddr, AbortReason> {
        const MAX_BLOCK_RETRIES: u32 = 1_000;
        let store = Arc::clone(self.engine.cluster().node(primary).old_versions());
        let mut attempt = 0;
        loop {
            let allocated = store.allocate_local(old.clone()).or_else(|_| {
                // Memory pressure: idle per-thread cursors pin partially
                // filled blocks as uncollectable, so seal them all, reclaim
                // below the safe point, and retry once before invoking the
                // policy (a store with many quiet threads would otherwise
                // report exhaustion while holding mostly-empty blocks).
                store.detach_cursors();
                store.collect(self.engine.cluster().node(primary).gc_safe_point());
                store.allocate_local(old.clone())
            });
            match allocated {
                Ok(addr) => return Ok(addr),
                Err(_) => match policy {
                    MvPolicy::Abort => {
                        EngineStats::bump(&self.engine.stats.aborts_oldver_memory);
                        return Err(AbortReason::OldVersionMemoryExhausted);
                    }
                    MvPolicy::Truncate => return Err(AbortReason::OldVersionMemoryExhausted),
                    MvPolicy::Block => {
                        attempt += 1;
                        EngineStats::bump(&self.engine.stats.oldver_blocks);
                        if attempt > MAX_BLOCK_RETRIES {
                            return Err(AbortReason::OldVersionMemoryExhausted);
                        }
                        // Back off and loop: the safe point advances while
                        // we wait, so the pre-retry reclamation above frees
                        // more each time around.
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                },
            }
        }
    }

    // ------------------------------------------------------------------
    // Write timestamp
    // ------------------------------------------------------------------

    /// Acquires the write timestamp. Serializable transactions (and strict SI
    /// transactions) wait out the uncertainty; non-strict SI takes the upper
    /// bound without waiting. The `unsafe_skip_write_wait` ablation skips the
    /// wait entirely, which breaks serializability (Section 7.3).
    fn phase_acquire_write_ts(&mut self, si: bool) {
        let clock = Arc::clone(self.engine.handle().clock());
        if self.engine.config().unsafe_skip_write_wait {
            let (ts, _) = clock.get_ts(TsMode::NonStrictUpper);
            self.write_ts = ts.as_nanos();
            return;
        }
        let mode = if si && !self.opts.strict {
            TsMode::NonStrictUpper
        } else {
            TsMode::StrictWait
        };
        let (ts, waited) = clock.get_ts(mode);
        if waited > 0 {
            EngineStats::bump(&self.engine.stats.write_waits);
            EngineStats::add(&self.engine.stats.write_wait_ns, waited);
        }
        self.write_ts = ts.as_nanos();
    }

    // ------------------------------------------------------------------
    // VALIDATE
    // ------------------------------------------------------------------

    /// Read validation with one-sided header reads, batched **per destination
    /// primary** exactly like the LOCK path: the headers of every unwritten
    /// read-set object at one primary are fetched by a single doorbell-batched
    /// read message, not one message per object. FaRMv2 (serializable)
    /// validates reads that were not written; the baseline validates every
    /// read — including those of read-only transactions — against the exact
    /// version observed.
    fn phase_validate(&mut self) -> Result<(), TxError> {
        let written: std::collections::HashSet<Addr> = self
            .plan
            .groups
            .iter()
            .flat_map(|g| g.intents.iter().map(|i| i.addr))
            .collect();
        // Group the unwritten reads by destination primary, ascending by
        // address within each group (deterministic first-failure reporting),
        // carrying each address's resolved region so the validation loop
        // does not re-resolve it.
        type Pending = (Addr, u64, Arc<farm_memory::Region>);
        let mut by_primary: std::collections::BTreeMap<NodeId, Vec<Pending>> =
            std::collections::BTreeMap::new();
        for (&addr, &observed) in &self.read_set {
            if written.contains(&addr) {
                continue;
            }
            let Ok((primary, region)) = self.engine.primary_region_of(addr) else {
                return Err(self.abort(AbortReason::ValidationFailed(addr)));
            };
            by_primary
                .entry(primary)
                .or_default()
                .push((addr, observed, region));
        }
        let stats = &self.engine.stats;
        for (primary, mut entries) in by_primary {
            entries.sort_by_key(|&(addr, ..)| addr);
            // One VALIDATE message per destination primary carrying all of
            // its header reads (16 bytes each); free when the coordinator is
            // that primary (local bypass).
            EngineStats::bump(&stats.validate_batches);
            EngineStats::add(&stats.validate_batch_objects, entries.len() as u64);
            if primary == self.engine.id() {
                EngineStats::add(&stats.read_local_bypass, entries.len() as u64);
            } else {
                self.engine
                    .meter
                    .read_batch(entries.len() as u64, 16 * entries.len());
            }
            for (addr, observed, region) in entries {
                let ok = match region.slot(addr) {
                    Ok(slot) => {
                        let h = slot.header_snapshot();
                        if self.baseline {
                            !h.locked && !h.tombstone && h.ts == observed
                        } else {
                            // The snapshot is still current iff no version
                            // (or tombstone) newer than the read timestamp
                            // was installed (Algorithm 2, line 19).
                            !h.locked && !h.tombstone && h.ts <= self.read_ts
                        }
                    }
                    Err(_) => false,
                };
                if !ok {
                    return Err(self.abort(AbortReason::ValidationFailed(addr)));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // COMMIT-BACKUP
    // ------------------------------------------------------------------

    /// One RDMA write per **backup destination** carrying the transaction's
    /// entire payload for that machine, acknowledged by the NIC only.
    fn phase_replicate_backups(&mut self) {
        for (_node, ops, bytes) in self.plan.backup_destinations() {
            self.engine.meter.write_batch(ops, bytes);
            self.engine.meter.ack();
            EngineStats::bump(&self.engine.stats.backup_batches);
        }
    }

    // ------------------------------------------------------------------
    // COMMIT-PRIMARY
    // ------------------------------------------------------------------

    /// One batched install message per destination primary: updates install
    /// and unlock, frees tombstone (multi-version) or clear (single-version),
    /// allocs initialize.
    fn phase_install_primary(&mut self) {
        // Message accounting: one RDMA write per destination primary.
        for (_node, ops, bytes) in self.plan.primary_destinations() {
            self.engine.meter.write_batch(ops, bytes);
            EngineStats::bump(&self.engine.stats.primary_batches);
        }

        let multi_version = self.engine.config().mode.is_multi_version();
        let mut max_version = 0u64;

        // Apply the held locks (updates and frees) in acquisition order.
        for held in &self.locked {
            let group = &self.plan.groups[held.group];
            let intent = &group.intents[held.intent];
            let new_ts = if self.baseline {
                // Baseline "timestamps" are per-object version counters.
                let v = intent.expected_ts + 1;
                max_version = max_version.max(v);
                v
            } else {
                self.write_ts
            };
            let ovp = if multi_version && !held.truncated {
                if let Some(old_addr) = held.old_addr {
                    // The old version becomes reclaimable once the GC safe
                    // point passes this transaction's write timestamp.
                    self.engine
                        .cluster()
                        .node(group.primary)
                        .old_versions()
                        .set_gc_time(old_addr, new_ts);
                    Some(old_addr)
                } else {
                    None
                }
            } else {
                None
            };
            match intent.kind {
                IntentKind::Update => {
                    held.slot
                        .install_and_unlock(new_ts, intent.data.clone(), ovp);
                }
                IntentKind::Free if multi_version => {
                    // A multi-version free preserves history exactly as an
                    // update does: the slot becomes a tombstone anchoring the
                    // old-version chain, and is reclaimed by the GC sweep
                    // once the safe point passes `new_ts`.
                    held.slot.install_tombstone_and_unlock(new_ts, ovp);
                    group.region_handle.note_tombstone(intent.addr, new_ts);
                }
                IntentKind::Free => {
                    held.slot.clear();
                    let _ = group.region_handle.free(intent.addr);
                }
                IntentKind::Alloc => unreachable!("allocs take no lock"),
            }
        }
        // Initialize newly allocated objects at their primaries.
        for group in &self.plan.groups {
            for intent in group.intents.iter().filter(|i| i.kind == IntentKind::Alloc) {
                if let Ok(slot) = group.region_handle.slot(intent.addr) {
                    let ts = if self.baseline { 1 } else { self.write_ts };
                    slot.initialize(ts, intent.data.clone());
                }
            }
        }
        // Return slots of objects allocated and freed by the same
        // transaction (they were never visible).
        for &addr in &self.plan.cancelled_allocs {
            if let Ok((_p, region)) = self.engine.primary_region_of(addr) {
                let _ = region.free(addr);
            }
        }
        if self.baseline {
            self.write_ts = max_version;
        }
        self.locked.clear();
    }

    // ------------------------------------------------------------------
    // TRUNCATE
    // ------------------------------------------------------------------

    /// Backups apply the new versions to their replicas — one truncation
    /// message per backup destination. (In operation-logging mode data is
    /// not replicated, so this is a no-op.)
    fn phase_truncate(&mut self) {
        if self.engine.config().operation_logging {
            return;
        }
        let mut destinations: Vec<NodeId> = Vec::new();
        for group in &self.plan.groups {
            let Some(slab_sizes) = self.slab_sizes_of(group) else {
                continue;
            };
            for &backup in &group.backups {
                if !destinations.contains(&backup) {
                    destinations.push(backup);
                }
                let replica = self
                    .engine
                    .cluster()
                    .node(backup)
                    .regions()
                    .ensure(group.region);
                for (intent, &slab_size) in group.intents.iter().zip(&slab_sizes) {
                    if slab_size == 0 {
                        continue;
                    }
                    let slab = replica.ensure_slab(intent.addr.slab, slab_size);
                    let Ok(slot) = slab.slot(intent.addr.slot) else {
                        continue;
                    };
                    match intent.kind {
                        IntentKind::Free => slot.clear(),
                        _ => slot.initialize(self.write_ts, intent.data.clone()),
                    }
                }
            }
        }
        for _ in &destinations {
            // Truncations are piggybacked two-sided messages, one per
            // destination.
            self.engine.meter.rpc(16);
            EngineStats::bump(&self.engine.stats.truncate_batches);
        }
    }

    /// Object sizes (slab size classes) of a group's intents at the primary,
    /// used to mirror the slab layout at backups. 0 marks unresolvable slots.
    fn slab_sizes_of(&self, group: &super::plan::RegionGroup) -> Option<Vec<usize>> {
        let region = self
            .engine
            .cluster()
            .node(group.primary)
            .regions()
            .get(group.region)?;
        Some(
            group
                .intents
                .iter()
                .map(|i| {
                    region
                        .slab(i.addr.slab)
                        .map(|s| s.object_size())
                        .unwrap_or(0)
                })
                .collect(),
        )
    }

    // ------------------------------------------------------------------
    // Operation log
    // ------------------------------------------------------------------

    /// Operation-logging mode: append the transaction description to
    /// `replication` in-memory logs spread over the cluster (Section 5.6).
    fn phase_operation_log(&mut self) {
        let writes: Vec<Addr> = self
            .plan
            .groups
            .iter()
            .flat_map(|g| {
                g.intents
                    .iter()
                    .filter(|i| i.kind != IntentKind::Free)
                    .map(|i| i.addr)
            })
            .collect();
        let record = OpLogRecord {
            coordinator: self.engine.id(),
            write_ts: self.write_ts,
            writes,
        };
        let members = self.engine.cluster().current_config().members;
        let replication = self
            .engine
            .cluster()
            .config()
            .replication
            .min(members.len());
        // Load-balance the log replicas by coordinator id + write ts.
        let start = (self.engine.id().index() + self.write_ts as usize) % members.len();
        for k in 0..replication {
            let target = members[(start + k) % members.len()];
            self.engine.meter.write(64 + record.writes.len() * 8);
            self.engine.meter.ack();
            // Store the record at the target node's engine; going through the
            // cluster keeps this symmetric even though only the local engine
            // handle is reachable from here.
            if target == self.engine.id() {
                self.engine.append_op_log(record.clone());
            }
        }
    }

    // ------------------------------------------------------------------
    // Abort
    // ------------------------------------------------------------------

    /// Routes a phase failure through the central unwind step.
    fn abort(&mut self, reason: AbortReason) -> TxError {
        unwind(
            &self.engine,
            &mut self.locked,
            &self.alloc_set,
            self.phase,
            reason,
        )
    }
}
