//! The commit-completion backlog: everything a transaction leaves behind
//! when its **critical path** ends at the last COMMIT-BACKUP ack.
//!
//! FaRMv2 considers a transaction committed — and tells the application so —
//! as soon as every backup has acknowledged its COMMIT-BACKUP record;
//! installing at the primaries and truncating the logs are background work.
//! This module holds that background state for the whole cluster:
//!
//! * **Pending installs** ([`PendingInstall`]): the held locks and plan of an
//!   early-acked transaction, split per destination primary. Each
//!   destination is *claimable* exactly once (an atomic flag), so the
//!   committing engine's opportunistic drain and any number of helping
//!   readers race safely: whoever claims a destination applies its installs
//!   in ascending address order and unlocks. An address-level index lets a
//!   reader (or locker, or validator) that hits a locked slot of a durable
//!   transaction find the pending install and **help complete it** instead
//!   of backing off or aborting.
//! * **Backup redo logs**: the COMMIT-BACKUP record of each backup
//!   destination is materialized here when the replication phase completes —
//!   exactly the log a real backup holds between COMMIT-BACKUP and
//!   truncation. Truncation *applies* a log entry to the backup's replica
//!   (timestamp-guarded, so replays and out-of-order deliveries never
//!   regress a version) and discards it. When a primary fails, the promoted
//!   backup replays its untruncated entries before serving — committed
//!   transactions whose COMMIT-PRIMARY never landed are therefore still
//!   recovered from the log, never lost and never observed torn.
//! * **Truncation watermarks** ([`Backlog::deliver_truncation`]): TRUNCATE is
//!   no longer a standalone message. Each coordinator tracks the highest
//!   write timestamp below which *all* of its transactions have completed
//!   their installs (a contiguity floor, so a slow transaction holds the
//!   watermark back), and piggybacks that `truncate_below` value on its next
//!   outgoing LOCK / VALIDATE / COMMIT-BACKUP verb to each destination. A
//!   timed flusher covers idle connections. Watermarks are raised with
//!   `fetch_max` and can never regress; an abort after timestamp acquisition
//!   withdraws only its own reservation, so earlier transactions' truncates
//!   are never lost.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use farm_kernel::NodeHandle;
use farm_memory::{Addr, RegionId};
use farm_net::{NodeId, PhaseLabel};
use parking_lot::Mutex;

use crate::engine::NodeEngine;
use crate::stats::EngineStats;

use super::driver::{install_held_lock, HeldLock};
use super::plan::CommitPlan;

/// One object's worth of a replicated COMMIT-BACKUP record.
pub(crate) struct RecordIntent {
    /// The object's global address.
    pub addr: Addr,
    /// Whether the transaction freed (rather than wrote) the object.
    pub free: bool,
    /// Payload to install (empty for frees).
    pub data: Bytes,
    /// The primary's slab size class, mirrored when the backup materializes
    /// the slab; 0 marks an unresolvable slab (skipped on apply).
    pub slab_size: usize,
}

/// One backup destination's redo-log entry for one committed transaction.
pub(crate) struct LogEntry {
    /// The committing coordinator (truncation watermarks are per
    /// coordinator).
    pub coordinator: NodeId,
    /// The transaction's write timestamp.
    pub write_ts: u64,
    /// The intents this destination backs up.
    pub intents: Vec<RecordIntent>,
}

/// The per-destination share of a pending install, claimable exactly once.
struct DestInstall {
    /// The destination primary.
    primary: NodeId,
    /// Indices into the owning [`PendingInstall`]'s `locked` vector, in
    /// ascending global address order (the acquisition order).
    lock_idxs: Vec<usize>,
    /// Set by the first thread that processes this destination.
    claimed: AtomicBool,
}

/// A durably committed transaction whose COMMIT-PRIMARY installs have not
/// all landed yet (stage 2 of the commit lifecycle). Holds the plan and the
/// locks; dropped once every destination has been claimed and processed.
pub(crate) struct PendingInstall {
    coordinator: NodeId,
    write_ts: u64,
    multi_version: bool,
    plan: CommitPlan,
    locked: Vec<HeldLock>,
    dests: Vec<DestInstall>,
    remaining: AtomicUsize,
}

impl PendingInstall {
    /// Packages an early-acked commit's leftover state. `locked` must be in
    /// ascending global address order (as the LOCK phase leaves it).
    pub(crate) fn new(
        coordinator: NodeId,
        write_ts: u64,
        multi_version: bool,
        plan: CommitPlan,
        locked: Vec<HeldLock>,
    ) -> PendingInstall {
        // Linear per-destination grouping: destination counts are bounded by
        // the cluster size and this runs on every early-acked commit.
        let mut dests: Vec<DestInstall> = Vec::new();
        for (li, held) in locked.iter().enumerate() {
            let primary = plan.groups[held.group].primary;
            match dests.iter_mut().find(|d| d.primary == primary) {
                Some(dest) => dest.lock_idxs.push(li),
                None => dests.push(DestInstall {
                    primary,
                    lock_idxs: vec![li],
                    claimed: AtomicBool::new(false),
                }),
            }
        }
        let remaining = AtomicUsize::new(dests.len());
        PendingInstall {
            coordinator,
            write_ts,
            multi_version,
            plan,
            locked,
            dests,
            remaining,
        }
    }

    /// The coordinator that committed this transaction.
    pub(crate) fn coordinator(&self) -> NodeId {
        self.coordinator
    }

    /// The transaction's write timestamp.
    pub(crate) fn write_ts(&self) -> u64 {
        self.write_ts
    }

    /// Number of destination primaries still referenced by this install.
    pub(crate) fn dest_count(&self) -> usize {
        self.dests.len()
    }

    fn addr_of(&self, li: usize) -> Addr {
        let held = &self.locked[li];
        self.plan.groups[held.group].intents[held.intent].addr
    }

    /// Claims and processes destination `di`: applies its installs in
    /// ascending address order (skipping a destination whose node has died —
    /// the data survives in the backup logs), withdraws the address-index
    /// entries, and, when this was the last destination, raises the
    /// coordinator's truncation watermark. Returns whether *this* call did
    /// the work (false when another thread already claimed it).
    pub(crate) fn install_dest(&self, engine: &NodeEngine, backlog: &Backlog, di: usize) -> bool {
        let dest = &self.dests[di];
        if dest.claimed.swap(true, Ordering::AcqRel) {
            return false;
        }
        let started = Instant::now();
        let alive = engine.cluster().node(dest.primary).is_alive();
        for &li in &dest.lock_idxs {
            if alive {
                install_held_lock(
                    engine,
                    &self.plan,
                    &self.locked[li],
                    self.write_ts,
                    self.multi_version,
                );
            }
            backlog.index_remove(self.addr_of(li));
        }
        EngineStats::bump(&engine.stats.installs_background);
        engine.meter.stats().phases().record(
            PhaseLabel::InstallPrimary,
            started.elapsed().as_nanos() as u64,
        );
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            backlog.trunc_complete(self.coordinator, self.write_ts);
        }
        true
    }
}

/// Per-coordinator truncation state: which of its write timestamps are still
/// pending installation, the resulting `truncate_below` watermark, and how
/// far each destination has been brought up to it.
struct TruncState {
    /// Write timestamps reserved (at acquisition) but not yet fully
    /// installed, with multiplicity (timestamps are nanoseconds and *can*
    /// collide under a zero-latency run).
    inflight: Mutex<BTreeMap<u64, u32>>,
    /// Largest write timestamp ever reserved by this coordinator.
    ceiling: AtomicU64,
    /// `truncate_below`: every transaction of this coordinator with a write
    /// timestamp at or below this value has completed its installs (or
    /// aborted). Monotone.
    watermark: AtomicU64,
    /// Per-destination watermark already delivered (piggybacked or flushed).
    delivered: Vec<AtomicU64>,
    /// When the watermark last advanced; drives the idle flusher.
    last_advance: Mutex<Option<Instant>>,
}

/// One address-index entry: the pending install covering the address and
/// the index of the destination that owns it.
type IndexedInstall = (Arc<PendingInstall>, usize);

/// Cluster-shared commit-completion state; one per [`crate::Engine`], shared
/// by every [`NodeEngine`]. See the module docs.
pub(crate) struct Backlog {
    /// Handles of every machine, for applying log entries to replicas.
    nodes: Vec<Arc<NodeHandle>>,
    /// Locked-address → (pending install, destination index), sharded so
    /// commit enqueue/withdraw and reader lookups don't contend on one lock.
    index: Vec<Mutex<HashMap<Addr, IndexedInstall>>>,
    /// Per-node backup redo logs.
    logs: Vec<Mutex<VecDeque<LogEntry>>>,
    /// Per-coordinator truncation state.
    trunc: Vec<TruncState>,
}

const INDEX_SHARDS: usize = 64;

impl Backlog {
    /// Builds the backlog for a cluster of `nodes`.
    pub(crate) fn new(nodes: Vec<Arc<NodeHandle>>) -> Backlog {
        let n = nodes.len();
        Backlog {
            nodes,
            index: (0..INDEX_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            logs: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            trunc: (0..n)
                .map(|_| TruncState {
                    inflight: Mutex::new(BTreeMap::new()),
                    ceiling: AtomicU64::new(0),
                    watermark: AtomicU64::new(0),
                    delivered: (0..n).map(|_| AtomicU64::new(0)).collect(),
                    last_advance: Mutex::new(None),
                })
                .collect(),
        }
    }

    fn shard_of(addr: Addr) -> usize {
        // Cheap mix of the address components; slots dominate spread.
        let h = (addr.region.0 as usize)
            .wrapping_mul(31)
            .wrapping_add(addr.slab as usize)
            .wrapping_mul(31)
            .wrapping_add(addr.slot as usize);
        h % INDEX_SHARDS
    }

    /// Publishes the address index of a pending install (called before the
    /// early ack is reported, so any reader that observes the still-held
    /// locks can already find the entry).
    pub(crate) fn index_insert(&self, pi: &Arc<PendingInstall>) {
        for (di, dest) in pi.dests.iter().enumerate() {
            for &li in &dest.lock_idxs {
                let addr = pi.addr_of(li);
                self.index[Self::shard_of(addr)]
                    .lock()
                    .insert(addr, (Arc::clone(pi), di));
            }
        }
    }

    fn index_remove(&self, addr: Addr) {
        self.index[Self::shard_of(addr)].lock().remove(&addr);
    }

    /// A reader / locker / validator hit a locked slot: if the lock belongs
    /// to an already-durable transaction, claim (or observe another thread
    /// claiming) its destination's install. Returns whether a pending
    /// install existed — the caller should re-read rather than back off.
    pub(crate) fn help_install(&self, engine: &NodeEngine, addr: Addr) -> bool {
        let entry = self.index[Self::shard_of(addr)].lock().get(&addr).cloned();
        let Some((pi, di)) = entry else {
            return false;
        };
        EngineStats::bump(&engine.stats.install_helps);
        pi.install_dest(engine, self, di);
        true
    }

    // ------------------------------------------------------------------
    // Backup redo logs
    // ------------------------------------------------------------------

    /// Materializes one COMMIT-BACKUP record at destination `dest` (called
    /// when the replication phase completes — the point at which a real
    /// backup has the record in its log).
    pub(crate) fn deposit(&self, dest: NodeId, entry: LogEntry) {
        self.logs[dest.index()].lock().push_back(entry);
    }

    /// Number of untruncated log entries held at `dest` (tests/reporting).
    pub(crate) fn log_len(&self, dest: NodeId) -> usize {
        self.logs[dest.index()].lock().len()
    }

    /// Applies-and-discards every entry of `coordinator` at `dest` with a
    /// write timestamp at or below `below`. Returns how many entries were
    /// truncated. Entries of a dead destination are discarded unapplied (its
    /// replicas are gone; promotion already replayed what it needed).
    fn truncate_log(&self, coordinator: NodeId, dest: NodeId, below: u64) -> usize {
        let node = &self.nodes[dest.index()];
        let alive = node.is_alive();
        let mut log = self.logs[dest.index()].lock();
        let before = log.len();
        log.retain(|e| {
            if e.coordinator != coordinator || e.write_ts > below {
                return true;
            }
            if alive {
                for intent in &e.intents {
                    let replica = node.regions().ensure(intent.addr.region);
                    replica.apply_replicated(
                        intent.addr,
                        intent.slab_size,
                        e.write_ts,
                        &intent.data,
                        intent.free,
                    );
                }
            }
            false
        });
        before - log.len()
    }

    /// Replays the untruncated log entries a just-promoted primary holds for
    /// `region`, making every durably committed (early-acked) transaction
    /// visible at the new primary even if its COMMIT-PRIMARY never landed at
    /// the old one. Applied intents are removed from their entries; the
    /// timestamp guard makes double-application (a later watermark delivery
    /// covering the same record) harmless.
    pub(crate) fn recover_region(&self, region: RegionId, new_primary: NodeId) {
        let node = &self.nodes[new_primary.index()];
        let replica = node.regions().ensure(region);
        let mut log = self.logs[new_primary.index()].lock();
        log.retain_mut(|e| {
            e.intents.retain(|intent| {
                if intent.addr.region != region {
                    return true;
                }
                replica.apply_replicated(
                    intent.addr,
                    intent.slab_size,
                    e.write_ts,
                    &intent.data,
                    intent.free,
                );
                false
            });
            !e.intents.is_empty()
        });
        drop(log);
        // The replays may have materialized slots the promotion-time bitmap
        // rebuild did not see.
        replica.rebuild_allocation_state();
    }

    /// Catches a freshly re-replicated backup up from the redo logs: every
    /// untruncated intent for `region` held at any *other* live node is
    /// applied to the new backup's replica. Entries stay in their owners'
    /// logs (truncation still has to apply them at those destinations); the
    /// timestamp guard in `apply_replicated` makes the extra application —
    /// and any overlap with the state copy — idempotent. Returns how many
    /// intents were replayed.
    pub(crate) fn catch_up_region(&self, region: RegionId, new_backup: NodeId) -> usize {
        let replica = self.nodes[new_backup.index()].regions().ensure(region);
        let mut applied = 0usize;
        for (i, log) in self.logs.iter().enumerate() {
            if i == new_backup.index() || !self.nodes[i].is_alive() {
                continue;
            }
            let log = log.lock();
            for entry in log.iter() {
                for intent in entry.intents.iter().filter(|it| it.addr.region == region) {
                    replica.apply_replicated(
                        intent.addr,
                        intent.slab_size,
                        entry.write_ts,
                        &intent.data,
                        intent.free,
                    );
                    applied += 1;
                }
            }
        }
        if applied > 0 {
            replica.rebuild_allocation_state();
        }
        applied
    }

    // ------------------------------------------------------------------
    // Truncation watermarks
    // ------------------------------------------------------------------

    /// Reserves `write_ts` in the coordinator's in-flight set (called at
    /// write-timestamp acquisition, before any backup record can exist, so
    /// the watermark can never overtake an undeposited record).
    pub(crate) fn trunc_begin(&self, coordinator: NodeId, write_ts: u64) {
        let st = &self.trunc[coordinator.index()];
        *st.inflight.lock().entry(write_ts).or_insert(0) += 1;
        st.ceiling.fetch_max(write_ts, Ordering::AcqRel);
    }

    /// Withdraws a reservation — either because the transaction's installs
    /// all completed or because it aborted after acquiring its timestamp —
    /// and raises the coordinator's `truncate_below` watermark to the new
    /// contiguity floor. The watermark is raised with `fetch_max`: it can
    /// never regress, and an abort can only *unblock* earlier transactions'
    /// truncates, never lose them.
    pub(crate) fn trunc_complete(&self, coordinator: NodeId, write_ts: u64) {
        let st = &self.trunc[coordinator.index()];
        let mut inflight = st.inflight.lock();
        if let Some(count) = inflight.get_mut(&write_ts) {
            *count -= 1;
            if *count == 0 {
                inflight.remove(&write_ts);
            }
        }
        let wm = inflight
            .keys()
            .next()
            .map(|&m| m.saturating_sub(1))
            .unwrap_or_else(|| st.ceiling.load(Ordering::Acquire));
        drop(inflight);
        let prev = st.watermark.fetch_max(wm, Ordering::AcqRel);
        if wm > prev {
            *st.last_advance.lock() = Some(Instant::now());
        }
    }

    /// The coordinator's current `truncate_below` watermark.
    pub(crate) fn watermark(&self, coordinator: NodeId) -> u64 {
        self.trunc[coordinator.index()]
            .watermark
            .load(Ordering::Acquire)
    }

    /// The watermark already delivered from `coordinator` to `dest`.
    pub(crate) fn delivered(&self, coordinator: NodeId, dest: NodeId) -> u64 {
        self.trunc[coordinator.index()].delivered[dest.index()].load(Ordering::Acquire)
    }

    /// Delivers the coordinator's current watermark to `dest`, applying (and
    /// discarding) the covered backup-log entries. `standalone` marks an
    /// idle flush, which costs one real (metered) message; a piggybacked
    /// delivery rides a verb the commit protocol was sending anyway and
    /// costs none.
    pub(crate) fn deliver_truncation(&self, engine: &NodeEngine, dest: NodeId, standalone: bool) {
        let coordinator = engine.id();
        let st = &self.trunc[coordinator.index()];
        let w = st.watermark.load(Ordering::Acquire);
        let prev = st.delivered[dest.index()].fetch_max(w, Ordering::AcqRel);
        if prev >= w {
            return;
        }
        self.truncate_log(coordinator, dest, w);
        if standalone {
            // A real TRUNCATE message: the idle-connection fallback.
            engine.meter.rpc_batch_deferred(1, 16);
            EngineStats::bump(&engine.stats.truncate_flushes);
            EngineStats::bump(&engine.stats.truncate_batches);
        } else {
            EngineStats::bump(&engine.stats.truncations_piggybacked);
        }
    }

    /// Sends standalone flushes for every destination still behind a
    /// watermark that has sat idle for at least `idle`. Run by the engine's
    /// background thread; under steady traffic the piggybacked deliveries
    /// win this race and no standalone message is ever sent.
    pub(crate) fn flush_idle(&self, engine: &NodeEngine, idle: std::time::Duration) {
        let coordinator = engine.id();
        let st = &self.trunc[coordinator.index()];
        let stale = match *st.last_advance.lock() {
            Some(at) => at.elapsed() >= idle,
            None => return,
        };
        if !stale {
            return;
        }
        let w = st.watermark.load(Ordering::Acquire);
        for dest in 0..st.delivered.len() {
            if st.delivered[dest].load(Ordering::Acquire) < w {
                self.deliver_truncation(engine, NodeId(dest as u32), true);
            }
        }
    }
}
