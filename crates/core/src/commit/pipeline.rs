//! Per-thread commit pipelining: one worker thread keeps up to `depth`
//! transactions in their commit **critical paths** at once.
//!
//! A synchronous coordinator thread alternates between issuing a phase's
//! verbs and sleeping until their completion deadline, so under injected
//! network latency its throughput is bounded by `1 / commit-latency`. But
//! the sleeps are pure flight time — the thread has nothing to do, and a
//! real FaRM worker would be multiplexing many transactions over its
//! completion queues. [`CommitPipeline`] reproduces that: each submitted
//! transaction's [`CommitDriver`](super::CommitDriver) is stepped with
//! [`advance`](super::CommitDriver::advance), which *returns* its phase
//! deadlines instead of blocking on them, and the pipeline sleeps only
//! until the **earliest** deadline across all in-flight commits — so
//! per-thread throughput scales toward `depth / max-phase-latency` instead
//! of `1 / total-latency`. Dead time (every in-flight commit waiting on the
//! wire) is spent draining the engine's pending-install backlog, exactly
//! where a real worker would process its completion-queue backlog.
//!
//! In-flight transactions of one pipeline are truly concurrent commits:
//! they must write **disjoint** objects, or the later one aborts on a lock
//! conflict like any concurrent committer would.

use std::time::Instant;

use crate::engine::NodeEngine;
use crate::error::TxError;
use crate::tx::{CommitInfo, PreparedCommit, Transaction};
use std::sync::Arc;

use super::driver::{CommitDriver, DriverStep};

/// One in-flight commit and the deadline it is waiting out (`None` = ready
/// to advance immediately).
struct Flight {
    driver: Box<CommitDriver>,
    wake: Option<Instant>,
}

/// A per-thread commit pipeline; see the module docs. Built by
/// [`NodeEngine::pipeline`]; not `Send` across submissions in spirit — it is
/// one worker thread's multiplexer, like one FaRM thread's completion
/// queues.
pub struct CommitPipeline {
    engine: Arc<NodeEngine>,
    depth: usize,
    inflight: Vec<Flight>,
    results: Vec<Result<CommitInfo, TxError>>,
}

impl NodeEngine {
    /// Creates a commit pipeline that keeps up to `depth` of this thread's
    /// transactions in their commit critical paths concurrently (clamped to
    /// at least 1; depth 1 behaves like synchronous `commit`).
    pub fn pipeline(self: &Arc<Self>, depth: usize) -> CommitPipeline {
        CommitPipeline {
            engine: Arc::clone(self),
            depth: depth.max(1),
            inflight: Vec::new(),
            results: Vec::new(),
        }
    }
}

impl CommitPipeline {
    /// The configured pipeline depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of commits currently in their critical paths.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Submits a transaction for commit. If the pipeline is at depth, this
    /// first pumps until a slot frees (paying whatever flight time the
    /// oldest commits still owe); the new commit's first phase is issued
    /// before returning. Results (in completion order, which may differ
    /// from submission order) accumulate until [`CommitPipeline::take`] or
    /// [`CommitPipeline::drain`].
    pub fn submit(&mut self, tx: Transaction) {
        match tx.prepare_commit() {
            PreparedCommit::Done(result) => self.results.push(result),
            PreparedCommit::InFlight(driver) => {
                self.pump_until(self.depth - 1);
                self.inflight.push(Flight { driver, wake: None });
                self.step_ready();
            }
        }
    }

    /// Advances any in-flight commit whose deadline has passed, without
    /// blocking. Call this opportunistically between submissions to keep
    /// completions flowing.
    pub fn poll(&mut self) {
        self.step_ready();
    }

    /// Takes the results accumulated so far (completion order).
    pub fn take(&mut self) -> Vec<Result<CommitInfo, TxError>> {
        std::mem::take(&mut self.results)
    }

    /// Completes every in-flight commit and returns all accumulated results.
    pub fn drain(&mut self) -> Vec<Result<CommitInfo, TxError>> {
        self.pump_until(0);
        self.take()
    }

    /// One non-blocking sweep: advance every flight whose wake deadline has
    /// passed (or that has not issued anything yet). Returns whether any
    /// flight made progress.
    fn step_ready(&mut self) -> bool {
        let mut progressed = false;
        let mut i = 0;
        while i < self.inflight.len() {
            let ready = match self.inflight[i].wake {
                None => true,
                Some(wake) => wake <= Instant::now(),
            };
            if !ready {
                i += 1;
                continue;
            }
            progressed = true;
            match self.inflight[i].driver.advance() {
                DriverStep::Wait(deadline) => {
                    self.inflight[i].wake = Some(deadline);
                    i += 1;
                }
                DriverStep::Finished(result) => {
                    self.inflight.remove(i);
                    self.results.push(result);
                }
            }
        }
        progressed
    }

    /// Pumps until at most `target` commits remain in flight: sweep the
    /// ready flights, spend dead time on the engine's pending-install
    /// backlog, and sleep only until the earliest deadline across all
    /// in-flight commits.
    fn pump_until(&mut self, target: usize) {
        while self.inflight.len() > target {
            if self.step_ready() {
                continue;
            }
            // Everything in flight: background work first, then sleep to
            // the earliest completion.
            self.engine.drain_pending_installs();
            if self.step_ready() {
                continue;
            }
            if let Some(wake) = self.inflight.iter().filter_map(|f| f.wake).min() {
                self.engine.meter.latency_model().wait_until(wake);
            }
        }
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        // Never abandon in-flight commits: their drivers hold locks at the
        // primaries. Draining completes them (they are past the point of
        // caller control anyway; the results are simply discarded).
        self.pump_until(0);
    }
}

impl std::fmt::Debug for CommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitPipeline")
            .field("depth", &self.depth)
            .field("in_flight", &self.inflight.len())
            .field("pending_results", &self.results.len())
            .finish()
    }
}
