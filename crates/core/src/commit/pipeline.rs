//! Per-thread commit pipelining: one worker thread keeps up to `depth`
//! transactions in their commit **critical paths** at once.
//!
//! A synchronous coordinator thread alternates between issuing a phase's
//! verbs and sleeping until their completion deadline, so under injected
//! network latency its throughput is bounded by `1 / commit-latency`. But
//! the sleeps are pure flight time — the thread has nothing to do, and a
//! real FaRM worker would be multiplexing many transactions over its
//! completion queues. [`CommitPipeline`] reproduces that: each submitted
//! transaction's [`CommitDriver`](super::CommitDriver) is stepped with
//! [`advance`](super::CommitDriver::advance), which *returns* its phase
//! deadlines instead of blocking on them, so per-thread throughput scales
//! toward `depth / max-phase-latency` instead of `1 / total-latency`.
//!
//! The scheduler is a **deadline-heap reactor**: waiting flights sit in a
//! binary min-heap ordered by wake deadline, so a sweep pops only the
//! expired prefix — O(ready · log n), not O(depth) — and reads the clock
//! once per sweep instead of once per flight. When every flight is on the
//! wire the reactor sleeps once for the whole *batch* of deadlines that
//! fall within a configurable wake quantum
//! ([`EngineConfig::pipeline_wake_quantum`](crate::EngineConfig)): it
//! targets the latest deadline inside the window, so one wakeup advances
//! every flight in the batch. No verb ever completes early — the sleep
//! target is itself a deadline, and all batched deadlines are at or before
//! it. Dead time (every in-flight commit waiting on the wire) is spent
//! draining the engine's pending-install backlog, exactly where a real
//! worker would process its completion-queue backlog.
//!
//! The reactor keeps per-flight cycle accounting ([`PipelineTimings`]):
//! wall-clock splits into *issue* (advancing drivers — the serial CPU),
//! *wait* (deadline sleeps), and *drain* (backlog installs), which is what
//! the Amdahl analysis in `bench_commit_pipeline` uses to measure the
//! serial fraction and predict multi-core speedup. For the multi-worker
//! version with work-stealing, see [`PipelinePool`](super::PipelinePool).
//!
//! In-flight transactions of one pipeline are truly concurrent commits:
//! they must write **disjoint** objects, or the later one aborts on a lock
//! conflict like any concurrent committer would.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::NodeEngine;
use crate::error::TxError;
use crate::tx::{CommitInfo, PreparedCommit, Transaction};

use super::driver::{CommitDriver, DriverStep};

/// One waiting flight in the deadline heap: the driver plus the deadline it
/// is waiting out. Ordered so the **earliest** deadline is at the top of a
/// `BinaryHeap` (which is a max-heap), with ties broken toward the older
/// submission so completion order stays deterministic under equal deadlines.
pub(crate) struct Waiting {
    pub(crate) wake: Instant,
    pub(crate) seq: u64,
    pub(crate) driver: Box<CommitDriver>,
}

impl PartialEq for Waiting {
    fn eq(&self, other: &Self) -> bool {
        self.wake == other.wake && self.seq == other.seq
    }
}

impl Eq for Waiting {}

impl PartialOrd for Waiting {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Waiting {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed on both keys: BinaryHeap pops the maximum, we want the
        // minimum deadline (then the lowest sequence number) on top.
        other
            .wake
            .cmp(&self.wake)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-flight cycle accounting for one reactor (or one pool worker).
///
/// Wall-clock decomposes as `issue + wait + drain + steal` plus untracked
/// scheduler epsilon. `issue` is the serial protocol CPU (building records,
/// lock tables, indexes); `wait` is deadline flight time; `drain` is backlog
/// install work done in dead time; `steal` is time spent advancing flights
/// stolen from another worker's deck (always zero for a single pipeline).
#[derive(Debug, Default, Clone, Copy)]
pub struct PipelineTimings {
    /// Nanoseconds spent advancing drivers (issue/finish halves of phases).
    pub issue_ns: u64,
    /// Nanoseconds spent sleeping/spinning to completion deadlines.
    pub wait_ns: u64,
    /// Nanoseconds spent draining the pending-install backlog in dead time.
    pub drain_ns: u64,
    /// Nanoseconds spent advancing flights stolen from other workers.
    pub steal_ns: u64,
    /// Sweeps that advanced at least one flight.
    pub sweeps: u64,
    /// Deadline sleeps taken (each may complete a whole batch of verbs).
    pub wakeups: u64,
    /// Flights advanced by a wakeup that targeted another flight's deadline
    /// batch — i.e. heap pops beyond the first on a single sweep.
    pub coalesced: u64,
    /// Commits completed through the reactor.
    pub completed: u64,
}

impl PipelineTimings {
    /// CPU-busy nanoseconds: everything but deadline waits.
    pub fn busy_ns(&self) -> u64 {
        self.issue_ns + self.drain_ns + self.steal_ns
    }

    /// Fraction of tracked wall-clock spent CPU-busy — the serial fraction
    /// `s` of Amdahl's law for this workload: predicted speedup on `N`
    /// cores is `1 / (s + (1 - s) / N)`.
    pub fn serial_fraction(&self) -> f64 {
        let busy = self.busy_ns() as f64;
        let wall = busy + self.wait_ns as f64;
        if wall == 0.0 {
            0.0
        } else {
            busy / wall
        }
    }

    /// Field-wise accumulation (used to merge per-worker timings).
    pub fn merge(&mut self, other: &PipelineTimings) {
        self.issue_ns += other.issue_ns;
        self.wait_ns += other.wait_ns;
        self.drain_ns += other.drain_ns;
        self.steal_ns += other.steal_ns;
        self.sweeps += other.sweeps;
        self.wakeups += other.wakeups;
        self.coalesced += other.coalesced;
        self.completed += other.completed;
    }
}

/// A per-thread commit pipeline; see the module docs. Built by
/// [`NodeEngine::pipeline`]; not `Send` across submissions in spirit — it is
/// one worker thread's multiplexer, like one FaRM thread's completion
/// queues.
pub struct CommitPipeline {
    engine: Arc<NodeEngine>,
    depth: usize,
    wake_quantum: Duration,
    seq: u64,
    /// Flights ready to advance now (never issued, or handed over ready).
    /// Boxed on purpose: drivers shuttle between here, [`Waiting`] heap
    /// entries, and cross-thread steals without moving the large struct.
    #[allow(clippy::vec_box)]
    ready: Vec<Box<CommitDriver>>,
    /// Flights waiting out a deadline, earliest on top.
    waiting: BinaryHeap<Waiting>,
    results: Vec<Result<CommitInfo, TxError>>,
    timings: PipelineTimings,
}

impl NodeEngine {
    /// Creates a commit pipeline that keeps up to `depth` of this thread's
    /// transactions in their commit critical paths concurrently (clamped to
    /// at least 1; depth 1 behaves like synchronous `commit`).
    pub fn pipeline(self: &Arc<Self>, depth: usize) -> CommitPipeline {
        let wake_quantum = self.config().pipeline_wake_quantum;
        CommitPipeline {
            engine: Arc::clone(self),
            depth: depth.max(1),
            wake_quantum,
            seq: 0,
            ready: Vec::new(),
            waiting: BinaryHeap::new(),
            results: Vec::new(),
            timings: PipelineTimings::default(),
        }
    }
}

impl CommitPipeline {
    /// The configured pipeline depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of commits currently in their critical paths.
    pub fn in_flight(&self) -> usize {
        self.ready.len() + self.waiting.len()
    }

    /// Cycle accounting accumulated since construction.
    pub fn timings(&self) -> PipelineTimings {
        self.timings
    }

    /// Submits a transaction for commit. If the pipeline is at depth, this
    /// first pumps until a slot frees (paying whatever flight time the
    /// oldest commits still owe); the new commit's first phase is issued
    /// before returning. Results (in completion order, which may differ
    /// from submission order) accumulate until [`CommitPipeline::take`] or
    /// [`CommitPipeline::drain`].
    pub fn submit(&mut self, tx: Transaction) {
        match tx.prepare_commit() {
            PreparedCommit::Done(result) => self.results.push(result),
            PreparedCommit::InFlight(driver) => {
                self.pump_until(self.depth - 1);
                self.ready.push(driver);
                self.step_ready(Instant::now());
            }
        }
    }

    /// Advances any in-flight commit whose deadline has passed, without
    /// blocking. Call this opportunistically between submissions to keep
    /// completions flowing.
    pub fn poll(&mut self) {
        self.step_ready(Instant::now());
    }

    /// Takes the results accumulated so far (completion order).
    pub fn take(&mut self) -> Vec<Result<CommitInfo, TxError>> {
        std::mem::take(&mut self.results)
    }

    /// Completes every in-flight commit and returns all accumulated results.
    pub fn drain(&mut self) -> Vec<Result<CommitInfo, TxError>> {
        self.pump_until(0);
        self.take()
    }

    /// One non-blocking sweep against a single clock read: advance every
    /// ready flight plus the expired prefix of the deadline heap. Returns
    /// whether any flight made progress. Completed flights simply drop out
    /// of the batch (no `Vec::remove` shifting — results are completion
    /// order, as documented on [`CommitPipeline::submit`]).
    fn step_ready(&mut self, now: Instant) -> bool {
        let mut batch = std::mem::take(&mut self.ready);
        let fresh = batch.len();
        while self.waiting.peek().is_some_and(|w| w.wake <= now) {
            batch.push(self.waiting.pop().expect("peeked").driver);
        }
        if batch.is_empty() {
            return false;
        }
        self.timings.sweeps += 1;
        let popped = batch.len() - fresh;
        self.timings.coalesced += popped.saturating_sub(1) as u64;
        for mut driver in batch {
            match driver.advance() {
                DriverStep::Wait(wake) => {
                    self.seq += 1;
                    self.waiting.push(Waiting {
                        wake,
                        seq: self.seq,
                        driver,
                    });
                }
                DriverStep::Finished(result) => {
                    self.timings.completed += 1;
                    self.results.push(result);
                }
            }
        }
        self.timings.issue_ns += now.elapsed().as_nanos() as u64;
        true
    }

    /// Pumps until at most `target` commits remain in flight: sweep the
    /// ready flights, spend dead time on the engine's pending-install
    /// backlog, and sleep once for the whole batch of deadlines within the
    /// wake quantum of the earliest one.
    fn pump_until(&mut self, target: usize) {
        while self.in_flight() > target {
            let now = Instant::now();
            if self.step_ready(now) {
                continue;
            }
            // Every flight is on the wire: background work first.
            if self.engine.drain_pending_installs() > 0 {
                self.timings.drain_ns += now.elapsed().as_nanos() as u64;
                continue;
            }
            // Coalesced sleep: target the latest deadline within the wake
            // quantum of the earliest, so one wakeup advances the batch.
            // Everything batched is at or before the sleep target, so no
            // verb completes early.
            let Some(earliest) = self.waiting.peek().map(|w| w.wake) else {
                continue;
            };
            let horizon = earliest + self.wake_quantum;
            let mut batch_end = earliest;
            for w in self.waiting.iter() {
                if w.wake <= horizon && w.wake > batch_end {
                    batch_end = w.wake;
                }
            }
            self.timings.wakeups += 1;
            self.engine.meter.latency_model().wait_until(batch_end);
            self.timings.wait_ns += now.elapsed().as_nanos() as u64;
        }
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        // Never abandon in-flight commits: their drivers hold locks at the
        // primaries. Draining completes them (they are past the point of
        // caller control anyway; the results are simply discarded).
        self.pump_until(0);
    }
}

impl std::fmt::Debug for CommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitPipeline")
            .field("depth", &self.depth)
            .field("in_flight", &self.in_flight())
            .field("pending_results", &self.results.len())
            .finish()
    }
}
