//! Commit planning: grouping a transaction's write, free and alloc sets by
//! destination so every protocol phase sends **one batched message per
//! machine** instead of one per object.
//!
//! The plan is organized as [`RegionGroup`]s sorted by region id. Since a
//! global [`Addr`] orders by `(region, slab, slot)` and each region has
//! exactly one primary, iterating the groups in order and each group's
//! intents in order visits every address in **ascending global address
//! order** — the deterministic lock-acquisition order shared by all
//! coordinators (no two committers ever acquire overlapping lock sets in
//! opposite orders, so batched locking cannot deadlock).

use std::collections::HashMap;

use bytes::Bytes;
use farm_memory::{Addr, Region, RegionId};
use farm_net::NodeId;

use crate::engine::NodeEngine;
use crate::error::AbortReason;

use std::sync::Arc;

/// What a committing transaction intends to do to one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentKind {
    /// Install a new version of an existing object.
    Update,
    /// Free an existing object (a write of "nothing"; in multi-version mode
    /// the old-version copy is made exactly as for an update, so history is
    /// preserved identically).
    Free,
    /// Initialize an object allocated by this transaction.
    Alloc,
}

/// One object-level intent within a commit.
#[derive(Debug, Clone)]
pub struct WriteIntent {
    /// The object's global address.
    pub addr: Addr,
    /// The version the transaction read (and must lock at); 0 for allocs.
    pub expected_ts: u64,
    /// The payload to install (empty for frees).
    pub data: Bytes,
    /// What kind of intent this is.
    pub kind: IntentKind,
}

impl WriteIntent {
    /// Whether this intent needs a lock in the LOCK phase (allocs do not:
    /// their slots are invisible until initialized at install time).
    pub fn needs_lock(&self) -> bool {
        !matches!(self.kind, IntentKind::Alloc)
    }

    /// Wire size of this intent inside a batched message (64-byte record
    /// header plus payload, matching the per-object costs the unbatched
    /// protocol metered).
    pub fn wire_bytes(&self) -> usize {
        64 + self.data.len()
    }
}

/// All intents of one transaction that land in one region — and therefore at
/// one primary and one set of backups. Intents are sorted by ascending
/// address.
pub struct RegionGroup {
    /// The region every intent in this group belongs to.
    pub region: RegionId,
    /// The region's primary machine.
    pub primary: NodeId,
    /// The region's backup machines (may be empty).
    pub backups: Vec<NodeId>,
    /// The primary's replica of the region.
    pub region_handle: Arc<Region>,
    /// Object intents, ascending by address.
    pub intents: Vec<WriteIntent>,
}

impl RegionGroup {
    /// `(addr, expected_ts)` pairs for the intents that take part in the
    /// LOCK phase, in ascending address order.
    pub fn lock_entries(&self) -> Vec<(Addr, u64)> {
        self.intents
            .iter()
            .filter(|i| i.needs_lock())
            .map(|i| (i.addr, i.expected_ts))
            .collect()
    }
}

/// Aggregate view of one destination primary: how many objects and bytes its
/// single LOCK message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestinationBatch {
    /// The destination machine.
    pub primary: NodeId,
    /// Lockable objects carried by the LOCK message.
    pub lock_ops: u64,
    /// Total wire bytes of the LOCK message payload.
    pub lock_bytes: usize,
}

/// The full commit plan of one transaction.
pub struct CommitPlan {
    /// Per-region intent groups, ascending by region id (== ascending global
    /// address order).
    pub groups: Vec<RegionGroup>,
    /// Objects both allocated and freed by the same transaction: they never
    /// become visible, so they carry no intents — their pre-allocated slots
    /// are simply returned at install (or by the abort unwind).
    pub cancelled_allocs: Vec<Addr>,
}

impl CommitPlan {
    /// Groups the transaction's sets by destination. `write_set` holds
    /// buffered payloads (including for allocs), `free_set` the objects to
    /// free, `alloc_set` the objects allocated by this transaction and
    /// `read_set` the versions observed by reads (which the LOCK phase locks
    /// against).
    pub fn build(
        engine: &NodeEngine,
        write_set: &HashMap<Addr, Bytes>,
        free_set: &[Addr],
        alloc_set: &[Addr],
        read_set: &HashMap<Addr, u64>,
    ) -> Result<CommitPlan, AbortReason> {
        let mut intents: Vec<WriteIntent> = Vec::with_capacity(write_set.len() + free_set.len());
        let mut frees: Vec<Addr> = free_set.to_vec();
        frees.sort();
        frees.dedup();
        let is_freed = |addr: Addr| frees.binary_search(&addr).is_ok();
        let mut cancelled_allocs = Vec::new();

        for &addr in alloc_set {
            if is_freed(addr) {
                // Allocated and freed by the same transaction: net no-op.
                cancelled_allocs.push(addr);
                continue;
            }
            let data = write_set.get(&addr).cloned().unwrap_or_default();
            intents.push(WriteIntent {
                addr,
                expected_ts: 0,
                data,
                kind: IntentKind::Alloc,
            });
        }
        for (&addr, data) in write_set {
            if alloc_set.contains(&addr) || is_freed(addr) {
                continue; // Covered by the alloc or free intent.
            }
            // A write without a prior read is a **blind write**: there is no
            // observed version to lock against, so the LOCK phase acquires
            // at whatever version is installed (`LOCK_ANY_VERSION`) — no
            // read dependency, no validation entry.
            let expected_ts = read_set
                .get(&addr)
                .copied()
                .unwrap_or(farm_memory::LOCK_ANY_VERSION);
            intents.push(WriteIntent {
                addr,
                expected_ts,
                data: data.clone(),
                kind: IntentKind::Update,
            });
        }
        for &addr in &frees {
            if alloc_set.contains(&addr) {
                continue; // Cancelled above.
            }
            let expected_ts = *read_set.get(&addr).expect("free implies read");
            intents.push(WriteIntent {
                addr,
                expected_ts,
                data: Bytes::new(),
                kind: IntentKind::Free,
            });
        }

        // Group by region, then sort groups by region id and intents by
        // address: the resulting iteration order is the ascending global
        // address order.
        let mut by_region: HashMap<RegionId, Vec<WriteIntent>> = HashMap::new();
        for intent in intents {
            by_region
                .entry(intent.addr.region)
                .or_default()
                .push(intent);
        }
        let mut groups: Vec<RegionGroup> = Vec::with_capacity(by_region.len());
        for (region, mut group_intents) in by_region {
            group_intents.sort_by_key(|i| i.addr);
            let probe = group_intents[0].addr;
            let (primary, region_handle) = engine
                .primary_region_of(probe)
                .map_err(|_| AbortReason::RegionUnavailable(probe))?;
            let backups = engine.backups_of(probe);
            groups.push(RegionGroup {
                region,
                primary,
                backups,
                region_handle,
                intents: group_intents,
            });
        }
        groups.sort_by_key(|g| g.region);
        cancelled_allocs.sort();
        Ok(CommitPlan {
            groups,
            cancelled_allocs,
        })
    }

    /// Whether the plan carries no intents at all.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total number of object intents across all groups.
    pub fn total_intents(&self) -> usize {
        self.groups.iter().map(|g| g.intents.len()).sum()
    }

    /// The global lock-acquisition order: every lockable address, ascending.
    /// Identical for every coordinator regardless of the order in which the
    /// application issued its writes and frees.
    pub fn lock_order(&self) -> Vec<Addr> {
        self.groups
            .iter()
            .flat_map(|g| g.intents.iter().filter(|i| i.needs_lock()).map(|i| i.addr))
            .collect()
    }

    /// The plan's region groups keyed by destination primary, ascending by
    /// node id, each destination's group indices ascending (== ascending
    /// address order within the destination). This is the fan-out unit of
    /// the pipelined commit phases: one completion-set verb per entry.
    ///
    /// Destination counts are tiny (bounded by the cluster size), so this
    /// accumulates into a sorted `Vec` with linear probing — no per-commit
    /// tree allocation on the hot path.
    pub fn groups_by_primary(&self) -> Vec<(NodeId, Vec<usize>)> {
        let mut by_primary: Vec<(NodeId, Vec<usize>)> = Vec::with_capacity(self.groups.len());
        for (gi, g) in self.groups.iter().enumerate() {
            match by_primary.iter_mut().find(|(n, _)| *n == g.primary) {
                Some((_, idxs)) => idxs.push(gi),
                None => by_primary.push((g.primary, vec![gi])),
            }
        }
        by_primary.sort_by_key(|(n, _)| *n);
        by_primary
    }

    /// Message-level view of the LOCK phase: one batch per destination
    /// primary, ascending by node id. A destination whose intents are all
    /// allocs sends no LOCK message and is omitted.
    pub fn lock_destinations(&self) -> Vec<DestinationBatch> {
        self.destinations(|g| std::slice::from_ref(&g.primary), |i| i.needs_lock())
            .into_iter()
            .map(|(primary, lock_ops, lock_bytes)| DestinationBatch {
                primary,
                lock_ops,
                lock_bytes,
            })
            .collect()
    }

    /// COMMIT-PRIMARY message accounting: every intent (installs and alloc
    /// initializations), one batch per destination primary.
    pub fn primary_destinations(&self) -> Vec<(NodeId, u64, usize)> {
        self.destinations(|g| std::slice::from_ref(&g.primary), |_| true)
    }

    /// COMMIT-BACKUP / TRUNCATE message accounting: every intent, one batch
    /// per backup destination.
    pub fn backup_destinations(&self) -> Vec<(NodeId, u64, usize)> {
        self.destinations(|g| g.backups.as_slice(), |_| true)
    }

    /// Aggregates `(ops, wire bytes)` of the intents selected by `keep` for
    /// each destination named by `nodes_of`, ascending by node id. All
    /// batched phases derive their per-message accounting from this one
    /// aggregation so the metrics cannot drift apart. Linear accumulation —
    /// destination counts are bounded by the cluster size, and this runs
    /// several times per commit.
    fn destinations(
        &self,
        nodes_of: impl Fn(&RegionGroup) -> &[NodeId],
        keep: impl Fn(&WriteIntent) -> bool,
    ) -> Vec<(NodeId, u64, usize)> {
        let mut out: Vec<(NodeId, u64, usize)> = Vec::new();
        for g in &self.groups {
            let (ops, bytes) = g
                .intents
                .iter()
                .filter(|i| keep(i))
                .fold((0u64, 0usize), |(o, b), i| (o + 1, b + i.wire_bytes()));
            if ops == 0 {
                continue;
            }
            for &node in nodes_of(g) {
                match out.iter_mut().find(|(n, ..)| *n == node) {
                    Some((_, o, b)) => {
                        *o += ops;
                        *b += bytes;
                    }
                    None => out.push((node, ops, bytes)),
                }
            }
        }
        out.sort_by_key(|(n, ..)| *n);
        out
    }

    /// Addresses written or freed by this plan (used to exclude them from
    /// read validation).
    pub fn touches(&self, addr: Addr) -> bool {
        self.groups
            .iter()
            .any(|g| g.region == addr.region && g.intents.iter().any(|i| i.addr == addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::opts::EngineConfig;
    use farm_kernel::ClusterConfig;
    use proptest::prelude::*;

    fn plan_for(
        engine: &NodeEngine,
        writes: &[(Addr, &[u8])],
        frees: &[Addr],
        read_ts: u64,
    ) -> CommitPlan {
        let mut write_set = HashMap::new();
        for (a, d) in writes {
            write_set.insert(*a, Bytes::from(d.to_vec()));
        }
        let mut read_set = HashMap::new();
        for (a, _) in writes {
            read_set.insert(*a, read_ts);
        }
        for a in frees {
            read_set.insert(*a, read_ts);
        }
        CommitPlan::build(engine, &write_set, frees, &[], &read_set).unwrap()
    }

    fn setup() -> (std::sync::Arc<Engine>, Vec<Addr>) {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        // Spread allocations over every region in the cluster.
        let regions = engine.cluster().regions();
        let mut addrs = Vec::new();
        for r in regions {
            for _ in 0..3 {
                addrs.push(tx.alloc_in(r, vec![0u8; 16]).unwrap());
            }
        }
        tx.commit().unwrap();
        (engine, addrs)
    }

    #[test]
    fn groups_are_per_region_and_sorted() {
        let (engine, addrs) = setup();
        let node = engine.node(NodeId(0));
        let writes: Vec<(Addr, &[u8])> = addrs.iter().map(|&a| (a, &b"x"[..])).collect();
        let plan = plan_for(&node, &writes, &[], 0);
        // One group per distinct region.
        let mut regions: Vec<RegionId> = addrs.iter().map(|a| a.region).collect();
        regions.sort();
        regions.dedup();
        assert_eq!(plan.groups.len(), regions.len());
        let group_regions: Vec<RegionId> = plan.groups.iter().map(|g| g.region).collect();
        assert_eq!(group_regions, regions);
        // Lock order is globally ascending.
        let order = plan.lock_order();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "order not ascending: {order:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn lock_destinations_aggregate_per_primary() {
        let (engine, addrs) = setup();
        let node = engine.node(NodeId(0));
        let writes: Vec<(Addr, &[u8])> = addrs.iter().map(|&a| (a, &b"abcd"[..])).collect();
        let plan = plan_for(&node, &writes, &[], 0);
        let dests = plan.lock_destinations();
        let total_ops: u64 = dests.iter().map(|d| d.lock_ops).sum();
        assert_eq!(total_ops as usize, addrs.len());
        // Each destination appears exactly once.
        let nodes: std::collections::HashSet<NodeId> = dests.iter().map(|d| d.primary).collect();
        assert_eq!(nodes.len(), dests.len());
        for d in &dests {
            assert_eq!(d.lock_bytes, d.lock_ops as usize * (64 + 4));
        }
        engine.shutdown();
    }

    #[test]
    fn alloc_plus_free_cancels_out() {
        let (engine, _) = setup();
        let node = engine.node(NodeId(0));
        let region = engine.cluster().regions()[0];
        let mut write_set = HashMap::new();
        let read_set = HashMap::new();
        // Simulate an alloc followed by a free of the same address.
        let primary = engine.cluster().primary_of(region).unwrap();
        let replica = engine.cluster().node(primary).regions().ensure(region);
        let addr = replica.allocate(8).unwrap();
        write_set.insert(addr, Bytes::from_static(b"tmp"));
        let plan = CommitPlan::build(&node, &write_set, &[addr], &[addr], &read_set).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.cancelled_allocs, vec![addr]);
        engine.shutdown();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The lock order is the ascending global address order, whatever
        /// subset of objects is written and in whatever order the writes were
        /// issued — the determinism that makes cross-primary batched locking
        /// deadlock-free.
        #[test]
        fn lock_order_is_deterministic_global_address_order(
            picks in prop::collection::vec((0usize..64, 0u8..2), 1..24)
        ) {
            let (engine, addrs) = setup();
            let node = engine.node(NodeId(0));
            // Select a subset (with duplicates dropped), in arbitrary order;
            // mark some as frees.
            let mut write_set = HashMap::new();
            let mut read_set = HashMap::new();
            let mut frees = Vec::new();
            let mut chosen = Vec::new();
            for (i, kind) in picks {
                let addr = addrs[i % addrs.len()];
                if write_set.contains_key(&addr) || frees.contains(&addr) {
                    continue;
                }
                read_set.insert(addr, 0u64);
                if kind == 0 {
                    write_set.insert(addr, Bytes::from_static(b"w"));
                } else {
                    frees.push(addr);
                }
                chosen.push(addr);
            }
            let plan = CommitPlan::build(&node, &write_set, &frees, &[], &read_set).unwrap();
            let order = plan.lock_order();
            let mut expected = chosen.clone();
            expected.sort();
            prop_assert_eq!(order, expected);
            engine.shutdown();
        }
    }
}
