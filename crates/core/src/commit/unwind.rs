//! The single abort/unwind step of the commit driver.
//!
//! The unbatched protocol had four near-identical copies of the abort path
//! (write-set lock loop, free-set lock loop, validation, and the baseline's
//! versions of each). The driver routes **every** phase failure through this
//! one function: release every lock acquired so far — across all destination
//! primaries, in descending global address order — roll the transaction's
//! allocations back, and tally the abort against the phase that failed.
//!
//! # Fan-out invariant
//!
//! Under pipelined dispatch a LOCK phase has verbs in flight to several
//! destinations at once when one of them fails. The driver **drains every
//! in-flight sibling before unwinding** (a [`farm_net::CompletionSet`]
//! never short-circuits), merges all destinations' acquired locks, and
//! sorts them into ascending global address order — so by the time this
//! function runs, `locked` is exactly the set of locks the whole fan-out
//! acquired, and releasing it in reverse releases in descending global
//! address order, whatever order the destinations completed in. Old
//! versions copied for locks that are being unwound were never linked into
//! a version chain (their GC time is still 0), so they are reclaimed with
//! their block and can never appear as tombstoned history.

use std::sync::Arc;

use farm_memory::Addr;

use crate::engine::NodeEngine;
use crate::error::{AbortReason, TxError};
use crate::stats::EngineStats;

use super::driver::{CommitPhase, HeldLock};

/// Unwinds a failed commit: releases all held locks (reverse order), returns
/// pre-allocated slots to their slabs, and records per-phase abort
/// statistics. Returns the error for the caller to propagate.
pub(crate) fn unwind(
    engine: &Arc<NodeEngine>,
    locked: &mut Vec<HeldLock>,
    alloc_set: &[Addr],
    phase: CommitPhase,
    reason: AbortReason,
) -> TxError {
    // Locks acquired in ascending global address order are released in
    // descending order. Old versions allocated for them are left with GC
    // time 0 — they were never linked, so they are reclaimed with their
    // block.
    for held in locked.iter().rev() {
        held.slot.unlock();
    }
    locked.clear();
    // Return pre-allocated slots (including alloc+free cancellations) to
    // their slabs.
    for &addr in alloc_set {
        if let Ok((_primary, region)) = engine.primary_region_of(addr) {
            let _ = region.free(addr);
        }
    }
    EngineStats::bump(&engine.stats.unwinds);
    match phase {
        CommitPhase::Lock => EngineStats::bump(&engine.stats.aborts_lock),
        CommitPhase::Validate => EngineStats::bump(&engine.stats.aborts_validation),
        // Later phases cannot fail in this reproduction (installs are local
        // stores), but the tally stays total if that ever changes.
        _ => EngineStats::bump(&engine.stats.aborts_lock),
    }
    TxError::Aborted(reason)
}
