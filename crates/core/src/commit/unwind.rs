//! The single abort/unwind step of the commit driver.
//!
//! The unbatched protocol had four near-identical copies of the abort path
//! (write-set lock loop, free-set lock loop, validation, and the baseline's
//! versions of each). The driver routes **every** phase failure through this
//! one function: release every lock acquired so far — across all destination
//! primaries, in reverse acquisition order — roll the transaction's
//! allocations back, and tally the abort against the phase that failed.

use std::sync::Arc;

use farm_memory::Addr;

use crate::engine::NodeEngine;
use crate::error::{AbortReason, TxError};
use crate::stats::EngineStats;

use super::driver::{CommitPhase, HeldLock};

/// Unwinds a failed commit: releases all held locks (reverse order), returns
/// pre-allocated slots to their slabs, and records per-phase abort
/// statistics. Returns the error for the caller to propagate.
pub(crate) fn unwind(
    engine: &Arc<NodeEngine>,
    locked: &mut Vec<HeldLock>,
    alloc_set: &[Addr],
    phase: CommitPhase,
    reason: AbortReason,
) -> TxError {
    // Locks acquired in ascending global address order are released in
    // descending order. Old versions allocated for them are left with GC
    // time 0 — they were never linked, so they are reclaimed with their
    // block.
    for held in locked.iter().rev() {
        held.slot.unlock();
    }
    locked.clear();
    // Return pre-allocated slots (including alloc+free cancellations) to
    // their slabs.
    for &addr in alloc_set {
        if let Ok((_primary, region)) = engine.primary_region_of(addr) {
            let _ = region.free(addr);
        }
    }
    EngineStats::bump(&engine.stats.unwinds);
    match phase {
        CommitPhase::Lock => EngineStats::bump(&engine.stats.aborts_lock),
        CommitPhase::Validate => EngineStats::bump(&engine.stats.aborts_validation),
        // Later phases cannot fail in this reproduction (installs are local
        // stores), but the tally stays total if that ever changes.
        _ => EngineStats::bump(&engine.stats.aborts_lock),
    }
    TxError::Aborted(reason)
}
