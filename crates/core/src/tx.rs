//! Transactions: snapshot reads, buffered writes, and the commit protocol.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use farm_clock::TsMode;
use farm_memory::{Addr, ConsistentRead, LockOutcome, OldVersion, RegionId};
use farm_net::Verb;

use crate::engine::{NodeEngine, OpLogRecord};
use crate::error::{AbortReason, TxError};
use crate::opts::{EngineMode, IsolationLevel, MvPolicy, TxOptions};

/// Information about a successful commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// The transaction's read timestamp (snapshot it executed against).
    pub read_ts: u64,
    /// The write timestamp, for read-write transactions.
    pub write_ts: Option<u64>,
}

/// Internal record of one locked write-set entry.
struct LockedWrite {
    addr: Addr,
    /// Version the object had when read (and locked at).
    expected_ts: u64,
    /// New payload to install.
    data: Bytes,
    /// Old version allocated at the primary during LOCK (multi-version mode).
    old_addr: Option<farm_memory::OldAddr>,
    /// Whether history was truncated for this object (MV-TRUNCATE under
    /// memory pressure).
    truncated: bool,
}

/// A FaRMv2 (or baseline) transaction. Created by
/// [`NodeEngine::begin`](crate::NodeEngine::begin); the creating thread acts
/// as the distributed-commit coordinator when [`Transaction::commit`] is
/// called.
pub struct Transaction {
    engine: Arc<NodeEngine>,
    serial: u64,
    opts: TxOptions,
    /// The snapshot this transaction reads at (FaRMv2 modes). Irrelevant in
    /// baseline mode, which has no read snapshots.
    read_ts: u64,
    /// Stale snapshot reads (slave side of parallel distributed queries) are
    /// read-only by construction.
    stale_readonly: bool,
    /// Versions observed by reads: addr → observed timestamp.
    read_set: HashMap<Addr, u64>,
    /// Buffered writes: addr → new payload.
    write_set: HashMap<Addr, Bytes>,
    /// Deterministic write ordering for the LOCK phase.
    write_order: Vec<Addr>,
    /// Objects allocated by this transaction (payload installed at commit).
    alloc_set: Vec<Addr>,
    /// Objects freed by this transaction.
    free_set: Vec<Addr>,
    finished: bool,
}

impl Transaction {
    pub(crate) fn start(engine: Arc<NodeEngine>, opts: TxOptions) -> Transaction {
        let baseline = engine.config().mode.is_baseline();
        let serial = engine.next_serial();
        // Acquire the read timestamp. Strict transactions use GET_TS (upper
        // bound + uncertainty wait); non-strict ones take the lower bound
        // with no wait. The baseline has no read timestamps at all.
        let read_ts = if baseline {
            0
        } else {
            let mode = if opts.strict { TsMode::StrictWait } else { TsMode::NonStrictRead };
            let (ts, _waited) = engine.handle().clock().get_ts(mode);
            ts.as_nanos()
        };
        engine.register_active(serial, if baseline { u64::MAX } else { read_ts });
        Transaction {
            engine,
            serial,
            opts,
            read_ts,
            stale_readonly: false,
            read_set: HashMap::new(),
            write_set: HashMap::new(),
            write_order: Vec::new(),
            alloc_set: Vec::new(),
            free_set: Vec::new(),
            finished: false,
        }
    }

    pub(crate) fn start_stale(engine: Arc<NodeEngine>, read_ts: u64) -> Transaction {
        let serial = engine.next_serial();
        engine.register_active(serial, read_ts);
        Transaction {
            engine,
            serial,
            opts: TxOptions::serializable(),
            read_ts,
            stale_readonly: true,
            read_set: HashMap::new(),
            write_set: HashMap::new(),
            write_order: Vec::new(),
            alloc_set: Vec::new(),
            free_set: Vec::new(),
            finished: false,
        }
    }

    /// The transaction's read timestamp (snapshot point).
    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    /// Whether the transaction has performed no writes, allocations or frees.
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_empty() && self.alloc_set.is_empty() && self.free_set.is_empty()
    }

    /// Number of objects read so far.
    pub fn reads(&self) -> usize {
        self.read_set.len()
    }

    // ------------------------------------------------------------------
    // Execution phase
    // ------------------------------------------------------------------

    /// Reads the object at `addr` from the snapshot defined by the read
    /// timestamp. Writes buffered by this transaction are visible to its own
    /// reads.
    pub fn read(&mut self, addr: Addr) -> Result<Bytes, TxError> {
        if let Some(buffered) = self.write_set.get(&addr) {
            return Ok(buffered.clone());
        }
        let multi_version = self.engine.config().mode.is_multi_version();
        let baseline = self.engine.config().mode.is_baseline();
        let (primary, region) = self.engine.primary_region_of(addr)?;
        let slot = region
            .slot(addr)
            .map_err(|_| self.execution_abort(AbortReason::BadAddress(addr)))?;
        let mut retries = self.engine.config().read_lock_retries;
        loop {
            // One-sided RDMA read of the head version from the primary.
            self.engine.meter.read(64 + slot.raw_data().len());
            match slot.read_consistent() {
                ConsistentRead::NotAllocated => {
                    return Err(self.execution_abort(AbortReason::BadAddress(addr)));
                }
                ConsistentRead::Locked => {
                    if retries == 0 {
                        return Err(self.execution_abort(AbortReason::ReadLockedObject(addr)));
                    }
                    retries -= 1;
                    std::hint::spin_loop();
                    continue;
                }
                ConsistentRead::Value { ts, ovp, data } => {
                    if baseline {
                        // FaRMv1: no snapshot — the latest committed version
                        // is returned whatever its timestamp, and consistency
                        // is only checked at commit time (no opacity).
                        self.read_set.insert(addr, ts);
                        return Ok(data);
                    }
                    if ts <= self.read_ts {
                        self.read_set.insert(addr, ts);
                        return Ok(data);
                    }
                    // The head version is newer than our snapshot.
                    if !multi_version {
                        return Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)));
                    }
                    // Eager validation (Section 4.7): a serializable
                    // transaction that has written (or hints it will write)
                    // would fail validation anyway, so abort now.
                    if self.opts.isolation == IsolationLevel::Serializable
                        && (self.opts.write_hint || !self.write_set.is_empty())
                    {
                        return Err(self.execution_abort(AbortReason::EagerValidation(addr)));
                    }
                    // Walk the old-version chain at the primary.
                    self.engine.stats.old_version_reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let store = self.engine.cluster().node(primary).old_versions();
                    let mut cursor = ovp;
                    while let Some(old_addr) = cursor {
                        self.engine.meter.read(64);
                        match store.resolve(old_addr) {
                            None => {
                                return Err(self
                                    .execution_abort(AbortReason::OldVersionUnavailable(addr)));
                            }
                            Some(OldVersion { ts: old_ts, ovp: next, data: old_data }) => {
                                if old_ts <= self.read_ts {
                                    self.read_set.insert(addr, old_ts);
                                    return Ok(old_data);
                                }
                                cursor = next;
                            }
                        }
                    }
                    return Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)));
                }
            }
        }
    }

    /// Buffers a write of `data` to the object at `addr`. The object is read
    /// first (if it has not been read yet) so the commit protocol knows which
    /// version to lock against.
    pub fn write(&mut self, addr: Addr, data: impl Into<Bytes>) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation("stale snapshot transactions are read-only"));
        }
        if !self.read_set.contains_key(&addr) && !self.alloc_set.contains(&addr) {
            self.read(addr)?;
        }
        if !self.write_set.contains_key(&addr) && !self.alloc_set.contains(&addr) {
            self.write_order.push(addr);
        }
        self.write_set.insert(addr, data.into());
        Ok(())
    }

    /// Allocates a new object initialized with `data` in a region whose
    /// primary is the coordinator's machine (exploiting locality), or in any
    /// region if the coordinator holds no primaries.
    pub fn alloc(&mut self, data: impl Into<Bytes>) -> Result<Addr, TxError> {
        let region = self
            .engine
            .home_region()
            .or_else(|| self.engine.cluster().regions().into_iter().next())
            .ok_or(TxError::AllocationFailed)?;
        self.alloc_in(region, data)
    }

    /// Allocates a new object initialized with `data` in the given region.
    pub fn alloc_in(&mut self, region: RegionId, data: impl Into<Bytes>) -> Result<Addr, TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation("stale snapshot transactions are read-only"));
        }
        let data: Bytes = data.into();
        let primary = self
            .engine
            .cluster()
            .primary_of(region)
            .ok_or(TxError::AllocationFailed)?;
        let replica = self.engine.cluster().node(primary).regions().ensure(region);
        let addr = replica.allocate(data.len()).map_err(|_| TxError::AllocationFailed)?;
        self.alloc_set.push(addr);
        self.write_set.insert(addr, data);
        Ok(addr)
    }

    /// Marks the object at `addr` to be freed at commit.
    pub fn free(&mut self, addr: Addr) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation("stale snapshot transactions are read-only"));
        }
        if !self.read_set.contains_key(&addr) {
            self.read(addr)?;
        }
        self.free_set.push(addr);
        Ok(())
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) -> TxError {
        self.finish();
        // Return pre-allocated slots to their slabs.
        self.rollback_allocations();
        TxError::Aborted(AbortReason::UserRequested)
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commits the transaction, driving the FaRMv2 commit protocol of
    /// Figure 3 (or the baseline protocol when the engine is in baseline
    /// mode). Consumes the transaction either way; on error the transaction
    /// has aborted and all its locks have been released.
    pub fn commit(mut self) -> Result<CommitInfo, TxError> {
        if self.engine.config().mode.is_baseline() {
            return self.commit_baseline();
        }
        let read_only = self.is_read_only();
        if read_only {
            // FaRMv2 read-only transactions skip validation entirely:
            // committing is a no-op (Section 4.2).
            self.finish();
            self.engine.stats.commits_ro.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(CommitInfo { read_ts: self.read_ts, write_ts: None });
        }

        // ---------------- LOCK phase ----------------
        let mut order = self.write_order.clone();
        order.sort();
        let mut locked: Vec<LockedWrite> = Vec::with_capacity(order.len());
        for addr in &order {
            let data = self.write_set.get(addr).cloned().expect("write set entry");
            let expected_ts = *self.read_set.get(addr).expect("write implies read");
            match self.lock_one(*addr, expected_ts, data) {
                Ok(lw) => locked.push(lw),
                Err(reason) => {
                    self.release_locks(&locked);
                    self.rollback_allocations();
                    self.finish();
                    self.engine.stats.aborts_lock.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return Err(TxError::Aborted(reason));
                }
            }
        }
        // Lock freed objects too (a free is a write of "nothing").
        let free_set = self.free_set.clone();
        for addr in &free_set {
            let expected_ts = *self.read_set.get(addr).expect("free implies read");
            match self.lock_one(*addr, expected_ts, Bytes::new()) {
                Ok(lw) => locked.push(lw),
                Err(reason) => {
                    self.release_locks(&locked);
                    self.rollback_allocations();
                    self.finish();
                    self.engine.stats.aborts_lock.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return Err(TxError::Aborted(reason));
                }
            }
        }

        let si = self.opts.isolation == IsolationLevel::SnapshotIsolation;

        // ---------------- COMMIT-BACKUP (SI overlaps the write-ts wait with
        // replication; serializable transactions send it after validation,
        // but issuing the RDMA writes earlier is also correct — what matters
        // for correctness is that locks stay held until after the write
        // timestamp is in the past and primaries install only after that). --
        if si {
            self.replicate_to_backups();
        }

        // ---------------- Write timestamp ----------------
        let write_ts = self.acquire_write_ts(si);

        // ---------------- VALIDATE (serializable only) ----------------
        if !si {
            if let Err(addr) = self.validate_reads() {
                self.release_locks(&locked);
                self.rollback_allocations();
                self.finish();
                self.engine.stats.aborts_validation.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Err(TxError::Aborted(AbortReason::ValidationFailed(addr)));
            }
            self.replicate_to_backups();
        }

        // ---------------- COMMIT-PRIMARY ----------------
        self.install_at_primaries(&locked, write_ts);

        // ---------------- TRUNCATE (apply at backups) ----------------
        self.apply_at_backups(write_ts);

        if self.engine.config().operation_logging {
            self.append_operation_log(write_ts);
        }

        self.finish();
        self.engine.stats.commits_rw.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(CommitInfo { read_ts: self.read_ts, write_ts: Some(write_ts) })
    }

    // ------------------------------------------------------------------
    // Commit-protocol helpers
    // ------------------------------------------------------------------

    /// Sends one LOCK to the primary of `addr` and, in multi-version mode,
    /// allocates the old version there.
    fn lock_one(&self, addr: Addr, expected_ts: u64, data: Bytes) -> Result<LockedWrite, AbortReason> {
        let (primary, region) = match self.engine.primary_region_of(addr) {
            Ok(x) => x,
            Err(_) => return Err(AbortReason::RegionUnavailable(addr)),
        };
        let slot = region.slot(addr).map_err(|_| AbortReason::BadAddress(addr))?;
        // LOCK is a two-sided message processed by the primary's CPU.
        self.engine.handle().stats().record(Verb::Rpc, 64 + data.len());
        match slot.try_lock_at(expected_ts) {
            LockOutcome::Acquired => {}
            LockOutcome::Conflict => return Err(AbortReason::LockConflict(addr)),
            LockOutcome::VersionChanged { .. } => return Err(AbortReason::LockConflict(addr)),
            LockOutcome::NotAllocated => return Err(AbortReason::BadAddress(addr)),
        }
        // In multi-version mode the primary copies the current version into
        // old-version memory while holding the lock, so the head version's
        // location never changes (Section 4.4).
        let mode = self.engine.config().mode;
        let (old_addr, truncated) = if let EngineMode::FarmV2 { multi_version: true, mv_policy } = mode {
            let snapshot = slot.header_snapshot();
            let old = OldVersion { ts: snapshot.ts, ovp: snapshot.ovp, data: slot.raw_data() };
            match self.allocate_old_version(primary, old, mv_policy) {
                Ok(a) => (Some(a), false),
                Err(AbortReason::OldVersionMemoryExhausted) if mv_policy == MvPolicy::Truncate => {
                    self.engine
                        .stats
                        .oldver_truncations
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    (None, true)
                }
                Err(reason) => {
                    slot.unlock();
                    return Err(reason);
                }
            }
        } else {
            (None, false)
        };
        if old_addr.is_some() {
            self.engine
                .stats
                .old_versions_allocated
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(LockedWrite { addr, expected_ts, data, old_addr, truncated })
    }

    /// Allocates an old version at `primary`, applying the configured policy
    /// when old-version memory is exhausted.
    fn allocate_old_version(
        &self,
        primary: farm_net::NodeId,
        old: OldVersion,
        policy: MvPolicy,
    ) -> Result<farm_memory::OldAddr, AbortReason> {
        // The primary-side allocation: in this reproduction the coordinator
        // thread performs it directly on the primary's old-version store,
        // standing in for the primary thread that processes the LOCK message.
        // One allocator (and therefore one active block) is kept per primary.
        let store = Arc::clone(self.engine.cluster().node(primary).old_versions());
        let gc_point = self.engine.cluster().node(primary).gc_safe_point();
        let mut allocators = self.engine.old_alloc.lock();
        let allocator = allocators
            .entry(primary)
            .or_insert_with(|| farm_memory::ThreadOldAllocator::new(Arc::clone(&store)));
        Self::allocate_with_policy(allocator, &store, gc_point, old, policy, &self.engine)
    }

    fn allocate_with_policy(
        allocator: &mut farm_memory::ThreadOldAllocator,
        store: &Arc<farm_memory::OldVersionStore>,
        gc_point: u64,
        old: OldVersion,
        policy: MvPolicy,
        engine: &Arc<NodeEngine>,
    ) -> Result<farm_memory::OldAddr, AbortReason> {
        const MAX_BLOCK_RETRIES: u32 = 1_000;
        let mut attempt = 0;
        loop {
            match allocator.allocate(old.clone()) {
                Ok(addr) => return Ok(addr),
                Err(_) => match policy {
                    MvPolicy::Abort => {
                        engine
                            .stats
                            .aborts_oldver_memory
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Err(AbortReason::OldVersionMemoryExhausted);
                    }
                    MvPolicy::Truncate => return Err(AbortReason::OldVersionMemoryExhausted),
                    MvPolicy::Block => {
                        attempt += 1;
                        engine.stats.oldver_blocks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if attempt > MAX_BLOCK_RETRIES {
                            return Err(AbortReason::OldVersionMemoryExhausted);
                        }
                        // Try to make progress: reclaim anything below the GC
                        // safe point, then wait briefly for it to advance.
                        store.collect(gc_point);
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                },
            }
        }
    }

    /// Acquires the write timestamp. Serializable transactions (and strict SI
    /// transactions) wait out the uncertainty; non-strict SI takes the upper
    /// bound without waiting. The `unsafe_skip_write_wait` ablation skips the
    /// wait entirely, which breaks serializability (Section 7.3).
    fn acquire_write_ts(&self, si: bool) -> u64 {
        let clock = Arc::clone(self.engine.handle().clock());
        if self.engine.config().unsafe_skip_write_wait {
            let (ts, _) = clock.get_ts(TsMode::NonStrictUpper);
            return ts.as_nanos();
        }
        let mode = if si && !self.opts.strict { TsMode::NonStrictUpper } else { TsMode::StrictWait };
        let (ts, waited) = clock.get_ts(mode);
        if waited > 0 {
            self.engine.stats.write_waits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.engine
                .stats
                .write_wait_ns
                .fetch_add(waited, std::sync::atomic::Ordering::Relaxed);
        }
        ts.as_nanos()
    }

    /// Read validation: every object read but not written must still be
    /// unlocked and unchanged since the read (its timestamp must not exceed
    /// the read timestamp).
    fn validate_reads(&self) -> Result<(), Addr> {
        for (&addr, &observed) in &self.read_set {
            if self.write_set.contains_key(&addr) || self.free_set.contains(&addr) {
                continue;
            }
            let Ok((_primary, region)) = self.engine.primary_region_of(addr) else {
                return Err(addr);
            };
            let Ok(slot) = region.slot(addr) else { return Err(addr) };
            // Validation is a one-sided RDMA read of the header.
            self.engine.meter.read(16);
            let header = slot.header_snapshot();
            if header.locked {
                return Err(addr);
            }
            // The snapshot is still current iff no version newer than the
            // read timestamp has been installed (Algorithm 2, line 19).
            if header.ts > self.read_ts {
                return Err(addr);
            }
            let _ = observed;
        }
        Ok(())
    }

    /// COMMIT-BACKUP: one RDMA write per backup of every written region,
    /// acknowledged by the NIC only.
    fn replicate_to_backups(&self) {
        for (addr, data) in &self.write_set {
            for _backup in self.engine.backups_of(*addr) {
                self.engine.meter.write(64 + data.len());
                self.engine.meter.ack();
            }
        }
        for addr in &self.free_set {
            for _backup in self.engine.backups_of(*addr) {
                self.engine.meter.write(64);
                self.engine.meter.ack();
            }
        }
    }

    /// COMMIT-PRIMARY: install new versions at the primaries and unlock.
    fn install_at_primaries(&self, locked: &[LockedWrite], write_ts: u64) {
        for lw in locked {
            let Ok((primary, region)) = self.engine.primary_region_of(lw.addr) else { continue };
            let Ok(slot) = region.slot(lw.addr) else { continue };
            // COMMIT-PRIMARY is an RDMA write processed by the primary's CPU.
            self.engine.meter.write(64 + lw.data.len());
            if self.free_set.contains(&lw.addr) {
                slot.clear();
                let _ = region.free(lw.addr);
                continue;
            }
            let ovp = if self.engine.config().mode.is_multi_version() && !lw.truncated {
                if let Some(old_addr) = lw.old_addr {
                    // The old version becomes reclaimable once the GC safe
                    // point passes this transaction's write timestamp.
                    self.engine.cluster().node(primary).old_versions().set_gc_time(old_addr, write_ts);
                    Some(old_addr)
                } else {
                    None
                }
            } else {
                None
            };
            slot.install_and_unlock(write_ts, lw.data.clone(), ovp);
            let _ = lw.expected_ts;
        }
        // Newly allocated objects are initialized at their primaries.
        for addr in &self.alloc_set {
            let Ok((_primary, region)) = self.engine.primary_region_of(*addr) else { continue };
            let Ok(slot) = region.slot(*addr) else { continue };
            let data = self.write_set.get(addr).cloned().unwrap_or_default();
            self.engine.meter.write(64 + data.len());
            slot.initialize(write_ts, data);
        }
    }

    /// TRUNCATE: backups apply the new versions to their replicas. (In
    /// operation-logging mode data is not replicated, so this is a no-op.)
    fn apply_at_backups(&self, write_ts: u64) {
        if self.engine.config().operation_logging {
            return;
        }
        for (addr, data) in &self.write_set {
            let Ok((primary, _)) = self.engine.primary_region_of(*addr) else { continue };
            let Some(slab_size) = self.object_size_at(primary, *addr) else { continue };
            for backup in self.engine.backups_of(*addr) {
                let replica = self.engine.cluster().node(backup).regions().ensure(addr.region);
                let slab = replica.ensure_slab(addr.slab, slab_size);
                if let Ok(slot) = slab.slot(addr.slot) {
                    if self.free_set.contains(addr) {
                        slot.clear();
                    } else {
                        slot.initialize(write_ts, data.clone());
                    }
                }
            }
        }
        for addr in &self.free_set {
            if self.write_set.contains_key(addr) {
                continue;
            }
            let Ok((primary, _)) = self.engine.primary_region_of(*addr) else { continue };
            let Some(slab_size) = self.object_size_at(primary, *addr) else { continue };
            for backup in self.engine.backups_of(*addr) {
                let replica = self.engine.cluster().node(backup).regions().ensure(addr.region);
                let slab = replica.ensure_slab(addr.slab, slab_size);
                if let Ok(slot) = slab.slot(addr.slot) {
                    slot.clear();
                }
            }
        }
    }

    fn object_size_at(&self, primary: farm_net::NodeId, addr: Addr) -> Option<usize> {
        let region = self.engine.cluster().node(primary).regions().get(addr.region)?;
        region.slab(addr.slab).map(|s| s.object_size())
    }

    /// Operation-logging mode: append the transaction description to
    /// `replication` in-memory logs spread over the cluster (Section 5.6).
    fn append_operation_log(&self, write_ts: u64) {
        let record = OpLogRecord {
            coordinator: self.engine.id(),
            write_ts,
            writes: self.write_set.keys().copied().collect(),
        };
        let members = self.engine.cluster().current_config().members;
        let replication = self.engine.cluster().config().replication.min(members.len());
        // Load-balance the log replicas by coordinator id + write ts.
        let start = (self.engine.id().index() + write_ts as usize) % members.len();
        for k in 0..replication {
            let target = members[(start + k) % members.len()];
            self.engine.meter.write(64 + record.writes.len() * 8);
            self.engine.meter.ack();
            // Store the record at the target node's engine; going through the
            // cluster keeps this symmetric even though only the local engine
            // handle is reachable from here.
            if target == self.engine.id() {
                self.engine.op_log.lock().push(record.clone());
            }
        }
    }

    /// Baseline (FaRMv1-style) commit: per-object version OCC with validation
    /// of every read (read-only transactions included) and no timestamps.
    fn commit_baseline(mut self) -> Result<CommitInfo, TxError> {
        // LOCK phase for the write set.
        let mut order = self.write_order.clone();
        order.sort();
        order.extend(self.free_set.iter().copied());
        let mut locked: Vec<LockedWrite> = Vec::new();
        for addr in order.iter() {
            let data = self.write_set.get(addr).cloned().unwrap_or_default();
            let expected_ts = *self.read_set.get(addr).expect("write implies read");
            match self.lock_one(*addr, expected_ts, data) {
                Ok(lw) => locked.push(lw),
                Err(reason) => {
                    self.release_locks(&locked);
                    self.rollback_allocations();
                    self.finish();
                    self.engine.stats.aborts_lock.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return Err(TxError::Aborted(reason));
                }
            }
        }
        // Validation of every read (FaRMv1 must validate read-only
        // transactions too, because it has no read snapshots).
        for (&addr, &observed) in &self.read_set {
            if self.write_set.contains_key(&addr) || self.free_set.contains(&addr) {
                continue;
            }
            let ok = match self.engine.primary_region_of(addr) {
                Ok((_p, region)) => match region.slot(addr) {
                    Ok(slot) => {
                        self.engine.meter.read(16);
                        let h = slot.header_snapshot();
                        !h.locked && h.ts == observed
                    }
                    Err(_) => false,
                },
                Err(_) => false,
            };
            if !ok {
                self.release_locks(&locked);
                self.rollback_allocations();
                self.finish();
                self.engine.stats.aborts_validation.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Err(TxError::Aborted(AbortReason::ValidationFailed(addr)));
            }
        }
        if self.is_read_only() {
            self.finish();
            self.engine.stats.commits_ro.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(CommitInfo { read_ts: 0, write_ts: None });
        }
        // Install: the "version" of each object is a per-object counter, so
        // the new version is observed + 1.
        self.replicate_to_backups();
        let mut max_version = 0;
        for lw in &locked {
            let Ok((_p, region)) = self.engine.primary_region_of(lw.addr) else { continue };
            let Ok(slot) = region.slot(lw.addr) else { continue };
            self.engine.meter.write(64 + lw.data.len());
            let new_version = lw.expected_ts + 1;
            max_version = max_version.max(new_version);
            if self.free_set.contains(&lw.addr) {
                slot.clear();
                let _ = region.free(lw.addr);
            } else {
                slot.install_and_unlock(new_version, lw.data.clone(), None);
            }
        }
        for addr in &self.alloc_set {
            let Ok((_p, region)) = self.engine.primary_region_of(*addr) else { continue };
            let Ok(slot) = region.slot(*addr) else { continue };
            let data = self.write_set.get(addr).cloned().unwrap_or_default();
            slot.initialize(1, data);
        }
        self.apply_at_backups(max_version);
        self.finish();
        self.engine.stats.commits_rw.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(CommitInfo { read_ts: 0, write_ts: Some(max_version) })
    }

    // ------------------------------------------------------------------
    // Abort / cleanup helpers
    // ------------------------------------------------------------------

    fn release_locks(&self, locked: &[LockedWrite]) {
        for lw in locked {
            if let Ok((_p, region)) = self.engine.primary_region_of(lw.addr) {
                if let Ok(slot) = region.slot(lw.addr) {
                    slot.unlock();
                }
            }
        }
    }

    fn rollback_allocations(&self) {
        for addr in &self.alloc_set {
            if let Ok((_p, region)) = self.engine.primary_region_of(*addr) {
                let _ = region.free(*addr);
            }
        }
    }

    fn execution_abort(&mut self, reason: AbortReason) -> TxError {
        self.engine.stats.aborts_execution.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.finish();
        self.rollback_allocations();
        TxError::Aborted(reason)
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.engine.unregister_active(self.serial);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.engine.unregister_active(self.serial);
            self.rollback_allocations();
            self.finished = true;
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("serial", &self.serial)
            .field("read_ts", &self.read_ts)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .finish()
    }
}
