//! Transactions: the execution-phase API — snapshot reads, buffered writes,
//! allocation and freeing.
//!
//! The commit protocol itself lives in [`crate::commit`]: `commit` builds a
//! [`CommitPlan`](crate::commit::CommitPlan) grouping the transaction's
//! sets by destination machine and hands it to the
//! [`CommitDriver`](crate::commit::CommitDriver) phase state machine.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use farm_clock::TsMode;
use farm_memory::{Addr, ConsistentRead, OldAddr, OldVersion, RegionId};

use crate::commit::{CommitDriver, CommitPlan};
use crate::engine::NodeEngine;
use crate::error::{AbortReason, TxError};
use crate::opts::{IsolationLevel, TxOptions};
use crate::stats::EngineStats;

/// Bounded exponential backoff for reads that observe a locked head version.
///
/// The holder of a commit lock releases it within a few microseconds (install
/// or unwind), so the ladder starts with cheap spins and escalates to yields
/// and short sleeps; once the budget is exhausted the read aborts (and the
/// engine counts it under `read_lock_retries_exhausted`).
struct LockBackoff {
    budget: u32,
    attempt: u32,
}

impl LockBackoff {
    fn new(budget: u32) -> LockBackoff {
        LockBackoff { budget, attempt: 0 }
    }

    /// Waits out one backoff step. Returns `false` once the retry budget is
    /// exhausted (the caller must abort instead of retrying again).
    fn wait(&mut self) -> bool {
        if self.attempt >= self.budget {
            return false;
        }
        let step = self.attempt.min(10);
        if step < 4 {
            // 1, 2, 4, 8 spins.
            for _ in 0..(1u32 << step) {
                std::hint::spin_loop();
            }
        } else if step < 7 {
            std::thread::yield_now();
        } else {
            // 1, 2, 4, 8 µs, capped.
            std::thread::sleep(std::time::Duration::from_micros(1 << (step - 7)));
        }
        self.attempt += 1;
        true
    }
}

/// What [`Transaction::prepare_commit`] produced: either an already-decided
/// outcome (read-only fast path, plan-build failure) or a commit driver
/// ready to be run synchronously or stepped by a
/// [`CommitPipeline`](crate::CommitPipeline).
pub(crate) enum PreparedCommit {
    /// The commit was decided without touching the network.
    Done(Result<CommitInfo, TxError>),
    /// The commit protocol must run; the driver owns all bookkeeping
    /// (active-table withdrawal, statistics) from here on. Boxed: the
    /// driver carries the whole plan, and a pipeline shuffles these around.
    InFlight(Box<CommitDriver>),
}

/// Information about a successful commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// The transaction's read timestamp (snapshot it executed against).
    pub read_ts: u64,
    /// The write timestamp, for read-write transactions.
    pub write_ts: Option<u64>,
}

/// A FaRMv2 (or baseline) transaction. Created by
/// [`NodeEngine::begin`](crate::NodeEngine::begin); the creating thread acts
/// as the distributed-commit coordinator when [`Transaction::commit`] is
/// called.
pub struct Transaction {
    engine: Arc<NodeEngine>,
    serial: u64,
    /// Registration in the engine's active-transaction slot table; withdrawn
    /// (one atomic store) exactly once, in `finish`.
    active: crate::active::ActiveToken,
    opts: TxOptions,
    /// The snapshot this transaction reads at (FaRMv2 modes). Irrelevant in
    /// baseline mode, which has no read snapshots.
    read_ts: u64,
    /// Stale snapshot reads (slave side of parallel distributed queries) are
    /// read-only by construction.
    stale_readonly: bool,
    /// Versions observed by reads: addr → observed timestamp.
    read_set: HashMap<Addr, u64>,
    /// Buffered writes: addr → new payload.
    write_set: HashMap<Addr, Bytes>,
    /// Objects allocated by this transaction (payload installed at commit).
    alloc_set: Vec<Addr>,
    /// Objects freed by this transaction.
    free_set: Vec<Addr>,
    finished: bool,
}

impl Transaction {
    pub(crate) fn start(engine: Arc<NodeEngine>, opts: TxOptions) -> Transaction {
        let baseline = engine.config().mode.is_baseline();
        let serial = engine.next_serial();
        // Acquire the read timestamp. Strict transactions use GET_TS (upper
        // bound + uncertainty wait); non-strict ones take the lower bound
        // with no wait. The baseline has no read timestamps at all.
        //
        // Registration happens in two wait-free steps: publish a
        // conservative placeholder (the clock's current lower bound, which
        // can only be ≤ the timestamp GET_TS returns) *before* acquiring the
        // timestamp, then raise the slot to the actual value. A concurrent
        // OAT scan interleaving with `begin` therefore sees at worst a
        // too-small timestamp — it can never advance the GC watermarks past
        // a snapshot that is about to become live.
        let (read_ts, active) = if baseline {
            (0, engine.register_active(serial, u64::MAX))
        } else {
            let placeholder = engine
                .handle()
                .clock()
                .time_unchecked()
                .map(|i| i.lower)
                .unwrap_or(0);
            let active = engine.register_active(serial, placeholder);
            let mode = if opts.strict {
                TsMode::StrictWait
            } else {
                TsMode::NonStrictRead
            };
            let (ts, _waited) = engine.handle().clock().get_ts(mode);
            let read_ts = ts.as_nanos();
            engine.update_active(active, read_ts);
            (read_ts, active)
        };
        Transaction {
            engine,
            serial,
            active,
            opts,
            read_ts,
            stale_readonly: false,
            read_set: HashMap::new(),
            write_set: HashMap::new(),
            alloc_set: Vec::new(),
            free_set: Vec::new(),
            finished: false,
        }
    }

    pub(crate) fn start_stale(engine: Arc<NodeEngine>, read_ts: u64) -> Transaction {
        let serial = engine.next_serial();
        let active = engine.register_active(serial, read_ts);
        Transaction {
            engine,
            serial,
            active,
            opts: TxOptions::serializable(),
            read_ts,
            stale_readonly: true,
            read_set: HashMap::new(),
            write_set: HashMap::new(),
            alloc_set: Vec::new(),
            free_set: Vec::new(),
            finished: false,
        }
    }

    /// The transaction's read timestamp (snapshot point).
    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    /// Whether the transaction has performed no writes, allocations or frees.
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_empty() && self.alloc_set.is_empty() && self.free_set.is_empty()
    }

    /// Number of objects read so far.
    pub fn reads(&self) -> usize {
        self.read_set.len()
    }

    // ------------------------------------------------------------------
    // Execution phase
    // ------------------------------------------------------------------

    /// Reads the object at `addr` from the snapshot defined by the read
    /// timestamp. Writes buffered by this transaction are visible to its own
    /// reads.
    ///
    /// When the coordinator itself is the primary of the target region the
    /// read is a plain local memory access and no network message is metered
    /// (the local-bypass fast path, counted under `read_local_bypass`).
    pub fn read(&mut self, addr: Addr) -> Result<Bytes, TxError> {
        if let Some(buffered) = self.write_set.get(&addr) {
            return Ok(buffered.clone());
        }
        let (primary, region) = self.engine.primary_region_of(addr)?;
        let slot = region
            .slot(addr)
            .map_err(|_| self.execution_abort(AbortReason::BadAddress(addr)))?;
        let local = primary == self.engine.id();
        let mut backoff = LockBackoff::new(self.engine.config().read_lock_retries);
        loop {
            // One-sided RDMA read of the head version from the primary
            // (free when the primary is this machine).
            self.meter_read(local, 64 + slot.raw_data().len());
            match slot.read_consistent() {
                ConsistentRead::Locked => {
                    // A lock held by an already-durable (early-acked)
                    // transaction is not contention: help complete its
                    // install and re-read immediately.
                    if self.engine.help_install(addr) {
                        continue;
                    }
                    if !backoff.wait() {
                        EngineStats::bump(&self.engine.stats.read_lock_retries_exhausted);
                        return Err(self.execution_abort(AbortReason::ReadLockedObject(addr)));
                    }
                }
                other => return self.admit_read(primary, addr, other),
            }
        }
    }

    /// Reads many objects in one call, batching the traffic **per destination
    /// primary**: the addresses are grouped by region (the same grouping the
    /// commit plan uses — every region has exactly one primary), each group is
    /// snapshotted by one
    /// [`Region::read_consistent_batch`](farm_memory::Region::read_consistent_batch)
    /// traversal, and one
    /// doorbell-batched read message is metered per distinct primary, however
    /// many objects it carries. Results are returned in input order.
    ///
    /// The per-primary read messages ride a [`farm_net::CompletionSet`]:
    /// under pipelined dispatch (the default) every destination's message is
    /// in flight simultaneously and the call pays the *maximum* destination
    /// latency, not the sum — a multi-primary multiget costs `max` like the
    /// fan-out of a real coordinator, with the per-destination traversals
    /// running inside the verbs' work closures.
    ///
    /// Per-slot fallbacks match [`Transaction::read`]: buffered writes are
    /// served locally, locked slots are retried with bounded backoff
    /// (individually — the rest of the batch is unaffected), and too-new or
    /// tombstoned head versions fall back to the old-version chain. Batches
    /// whose primary is the coordinator's own machine skip network metering
    /// entirely (local bypass).
    pub fn read_many(&mut self, addrs: &[Addr]) -> Result<Vec<Bytes>, TxError> {
        let started = std::time::Instant::now();
        let mut out: Vec<Option<Bytes>> = vec![None; addrs.len()];
        // Group the cache misses by region, ascending (deterministic order,
        // shared with the commit plan).
        let mut by_region: BTreeMap<RegionId, Vec<usize>> = BTreeMap::new();
        for (i, &addr) in addrs.iter().enumerate() {
            if let Some(buffered) = self.write_set.get(&addr) {
                out[i] = Some(buffered.clone());
            } else {
                by_region.entry(addr.region).or_default().push(i);
            }
        }
        // Resolve routing at the coordinator: several regions with the same
        // primary share one doorbell-batched read message (one verb).
        type RegionBatch = (Arc<farm_memory::Region>, Vec<usize>);
        let mut by_primary: BTreeMap<farm_net::NodeId, Vec<RegionBatch>> = BTreeMap::new();
        for (_region_id, idxs) in by_region {
            let probe = addrs[idxs[0]];
            let (primary, region) = self.engine.primary_region_of(probe)?;
            by_primary.entry(primary).or_default().push((region, idxs));
        }
        // One verb per destination primary; its work closure performs the
        // destination's region traversals (in that destination's fixed
        // region/index order, so completions can be re-associated positionally
        // below), so under threaded dispatch they genuinely overlap.
        let engine = Arc::clone(&self.engine);
        let mut set: farm_net::CompletionSet<'_, (Vec<ConsistentRead>, usize)> =
            farm_net::CompletionSet::new(engine.meter.latency_model());
        for (&primary, groups) in &by_primary {
            let work = move || {
                let mut results = Vec::new();
                let mut bytes = 0usize;
                for (region, idxs) in groups {
                    let batch: Vec<Addr> = idxs.iter().map(|&i| addrs[i]).collect();
                    for result in region.read_consistent_batch(&batch) {
                        bytes += 64
                            + match &result {
                                ConsistentRead::Value { data, .. } => data.len(),
                                _ => 0,
                            };
                        results.push(result);
                    }
                }
                (results, bytes)
            };
            if primary == engine.id() {
                set.issue_local(primary, work);
            } else {
                set.issue(primary, farm_net::Verb::RdmaRead, work);
            }
        }
        let completions = set.complete(engine.config().dispatch, Some(engine.meter.stats()));
        // One metered message per remote primary; local batches bypass the
        // network. Both count toward the engine-level batching statistics.
        // Completions return in issue order — the `by_primary` iteration
        // order — so each one zips positionally with its destination's
        // (region, indices) batches; no per-address routing map is needed.
        type Pending = (
            usize,
            farm_net::NodeId,
            Arc<farm_memory::Region>,
            ConsistentRead,
        );
        let mut pending: Vec<Pending> = Vec::with_capacity(addrs.len());
        for (completion, (&primary, groups)) in completions.into_iter().zip(&by_primary) {
            debug_assert_eq!(completion.dest, primary, "completions follow issue order");
            let (results, bytes) = completion.value;
            let ops = results.len() as u64;
            EngineStats::bump(&engine.stats.read_batches);
            EngineStats::add(&engine.stats.read_batch_objects, ops);
            if primary == engine.id() {
                EngineStats::add(&engine.stats.read_local_bypass, ops);
            } else {
                engine.meter.read_batch_deferred(ops, bytes);
            }
            let mut results = results.into_iter();
            for (region, idxs) in groups {
                for &i in idxs {
                    let result = results.next().expect("one result per batched address");
                    pending.push((i, primary, Arc::clone(region), result));
                }
            }
        }
        engine.meter.stats().phases().record(
            farm_net::PhaseLabel::ReadMany,
            started.elapsed().as_nanos() as u64,
        );
        // Admit each slot's snapshot, applying the per-slot fallbacks.
        for (i, primary, region, result) in pending {
            let addr = addrs[i];
            let value = match result {
                ConsistentRead::Locked => self.reread_locked(primary, &region, addr)?,
                other => self.admit_read(primary, addr, other)?,
            };
            out[i] = Some(value);
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("every slot filled"))
            .collect())
    }

    /// Re-reads a single slot that was locked inside a batch, with bounded
    /// exponential backoff. Retry reads are metered individually (the batch
    /// message has already completed by the time the fallback runs).
    fn reread_locked(
        &mut self,
        primary: farm_net::NodeId,
        region: &Arc<farm_memory::Region>,
        addr: Addr,
    ) -> Result<Bytes, TxError> {
        let slot = region
            .slot(addr)
            .map_err(|_| self.execution_abort(AbortReason::BadAddress(addr)))?;
        let local = primary == self.engine.id();
        let mut backoff = LockBackoff::new(self.engine.config().read_lock_retries);
        loop {
            // Durable-but-uninstalled writers are helped, not waited out.
            if !self.engine.help_install(addr) && !backoff.wait() {
                EngineStats::bump(&self.engine.stats.read_lock_retries_exhausted);
                return Err(self.execution_abort(AbortReason::ReadLockedObject(addr)));
            }
            self.meter_read(local, 64 + slot.raw_data().len());
            match slot.read_consistent() {
                ConsistentRead::Locked => continue,
                other => return self.admit_read(primary, addr, other),
            }
        }
    }

    /// Admits one non-`Locked` consistent-read outcome into the read set,
    /// resolving tombstones and too-new head versions through the old-version
    /// chain. Shared by the single-object and batched read paths.
    fn admit_read(
        &mut self,
        primary: farm_net::NodeId,
        addr: Addr,
        result: ConsistentRead,
    ) -> Result<Bytes, TxError> {
        let baseline = self.engine.config().mode.is_baseline();
        match result {
            ConsistentRead::Locked => unreachable!("caller handles Locked"),
            ConsistentRead::NotAllocated => {
                Err(self.execution_abort(AbortReason::BadAddress(addr)))
            }
            ConsistentRead::Tombstone { ts, ovp } => {
                if baseline || ts <= self.read_ts {
                    // The object was already freed at our snapshot.
                    return Err(self.execution_abort(AbortReason::BadAddress(addr)));
                }
                // Freed after our snapshot: the pre-free history hangs off
                // the tombstone exactly as off a too-new head version.
                self.read_old_chain(primary, addr, ovp)
            }
            ConsistentRead::Value { ts, ovp, data } => {
                if baseline {
                    // FaRMv1: no snapshot — the latest committed version is
                    // returned whatever its timestamp, and consistency is
                    // only checked at commit time (no opacity).
                    self.read_set.insert(addr, ts);
                    return Ok(data);
                }
                if ts <= self.read_ts {
                    self.read_set.insert(addr, ts);
                    return Ok(data);
                }
                // The head version is newer than our snapshot.
                self.read_old_chain(primary, addr, ovp)
            }
        }
    }

    /// Meters one one-sided read of `bytes`, unless the target primary is
    /// this machine (local bypass: a plain memory access, no network).
    fn meter_read(&self, local: bool, bytes: usize) {
        if local {
            EngineStats::bump(&self.engine.stats.read_local_bypass);
        } else {
            self.engine.meter.read(bytes);
        }
    }

    /// Follows the old-version chain at the primary to find the version
    /// visible at this transaction's snapshot. Entered when the head version
    /// (or a tombstone) is newer than the read timestamp.
    fn read_old_chain(
        &mut self,
        primary: farm_net::NodeId,
        addr: Addr,
        ovp: Option<OldAddr>,
    ) -> Result<Bytes, TxError> {
        if !self.engine.config().mode.is_multi_version() {
            return Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)));
        }
        // Eager validation (Section 4.7): a serializable transaction that has
        // written (or hints it will write) would fail validation anyway, so
        // abort now.
        if self.opts.isolation == IsolationLevel::Serializable
            && (self.opts.write_hint || !self.write_set.is_empty())
        {
            return Err(self.execution_abort(AbortReason::EagerValidation(addr)));
        }
        EngineStats::bump(&self.engine.stats.old_version_reads);
        let local = primary == self.engine.id();
        let store = self.engine.cluster().node(primary).old_versions();
        let mut cursor = ovp;
        while let Some(old_addr) = cursor {
            self.meter_read(local, 64);
            match store.resolve(old_addr) {
                None => {
                    return Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)));
                }
                Some(OldVersion {
                    ts: old_ts,
                    ovp: next,
                    data: old_data,
                }) => {
                    if old_ts <= self.read_ts {
                        self.read_set.insert(addr, old_ts);
                        return Ok(old_data);
                    }
                    cursor = next;
                }
            }
        }
        Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)))
    }

    /// Buffers a write of `data` to the object at `addr`. The object is read
    /// first (if it has not been read yet) so the commit protocol knows which
    /// version to lock against.
    pub fn write(&mut self, addr: Addr, data: impl Into<Bytes>) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        if !self.read_set.contains_key(&addr) && !self.alloc_set.contains(&addr) {
            self.read(addr)?;
        }
        self.write_set.insert(addr, data.into());
        Ok(())
    }

    /// Buffers a **blind write**: `data` overwrites the object at `addr`
    /// without reading it first. The commit's LOCK phase acquires the object
    /// at whatever version is installed — there is no read dependency to
    /// version-check and no validation entry, so a blind write can never
    /// abort with `VersionChanged`, only on a live lock conflict or a freed
    /// object. Serializability is unaffected: the transaction's serialization
    /// point is still its write timestamp, ordered by the object lock.
    ///
    /// This is the natural shape of a KV `put`, and it keeps the execution
    /// phase off the network entirely for update-only transactions. In
    /// baseline mode (whose per-object version counters derive from the
    /// version read) this falls back to read-then-write.
    pub fn overwrite(&mut self, addr: Addr, data: impl Into<Bytes>) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        if self.engine.config().mode.is_baseline() {
            return self.write(addr, data);
        }
        self.write_set.insert(addr, data.into());
        Ok(())
    }

    /// Allocates a new object initialized with `data` in a region whose
    /// primary is the coordinator's machine (exploiting locality), or in any
    /// region if the coordinator holds no primaries.
    pub fn alloc(&mut self, data: impl Into<Bytes>) -> Result<Addr, TxError> {
        let region = self
            .engine
            .home_region()
            .or_else(|| self.engine.cluster().regions().into_iter().next())
            .ok_or(TxError::AllocationFailed)?;
        self.alloc_in(region, data)
    }

    /// Allocates a new object initialized with `data` in the given region.
    pub fn alloc_in(&mut self, region: RegionId, data: impl Into<Bytes>) -> Result<Addr, TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        let data: Bytes = data.into();
        let primary = self
            .engine
            .cluster()
            .primary_of(region)
            .ok_or(TxError::AllocationFailed)?;
        let replica = self.engine.cluster().node(primary).regions().ensure(region);
        let addr = replica
            .allocate(data.len())
            .map_err(|_| TxError::AllocationFailed)?;
        self.alloc_set.push(addr);
        self.write_set.insert(addr, data);
        Ok(addr)
    }

    /// Marks the object at `addr` to be freed at commit.
    pub fn free(&mut self, addr: Addr) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        if !self.read_set.contains_key(&addr) && !self.alloc_set.contains(&addr) {
            self.read(addr)?;
        }
        self.free_set.push(addr);
        Ok(())
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) -> TxError {
        self.finish();
        // Return pre-allocated slots to their slabs.
        self.rollback_allocations();
        TxError::Aborted(AbortReason::UserRequested)
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commits the transaction by handing its sets to the batched
    /// [`CommitDriver`] (Figure 3; or the baseline protocol when the engine
    /// is in baseline mode). Consumes the transaction either way; on error
    /// the transaction has aborted and all its locks have been released.
    ///
    /// With [`EngineConfig::early_ack`](crate::EngineConfig::early_ack) (the
    /// FaRMv2 default) this returns as soon as every COMMIT-BACKUP is acked
    /// — the durability point — leaving the COMMIT-PRIMARY installs and the
    /// truncation watermark to the background backlog.
    pub fn commit(self) -> Result<CommitInfo, TxError> {
        match self.prepare_commit() {
            PreparedCommit::Done(result) => result,
            PreparedCommit::InFlight(driver) => driver.run(),
        }
    }

    /// Resolves the read-only fast path and plan building, handing back
    /// either a decided outcome or a ready [`CommitDriver`]. The driver owns
    /// the transaction's active-table registration, statistics and abort
    /// bookkeeping from here on — this is the shared front half of
    /// [`Transaction::commit`] and
    /// [`CommitPipeline::submit`](crate::CommitPipeline::submit).
    pub(crate) fn prepare_commit(mut self) -> PreparedCommit {
        let baseline = self.engine.config().mode.is_baseline();
        if !baseline && self.is_read_only() {
            // FaRMv2 read-only transactions skip validation entirely:
            // committing is a no-op (Section 4.2).
            self.finish();
            EngineStats::bump(&self.engine.stats.commits_ro);
            return PreparedCommit::Done(Ok(CommitInfo {
                read_ts: self.read_ts,
                write_ts: None,
            }));
        }

        // Move the sets out of `self`: the driver owns them from here on
        // (including allocation rollback on abort — `Drop` sees them empty).
        let write_set = std::mem::take(&mut self.write_set);
        let free_set = std::mem::take(&mut self.free_set);
        let alloc_set = std::mem::take(&mut self.alloc_set);
        let read_set = std::mem::take(&mut self.read_set);

        let plan =
            match CommitPlan::build(&self.engine, &write_set, &free_set, &alloc_set, &read_set) {
                Ok(plan) => plan,
                Err(reason) => {
                    // Hand the allocations back to `self` so the shared
                    // rollback path (also used by `abort` and `Drop`) frees
                    // them.
                    self.alloc_set = alloc_set;
                    self.finish();
                    EngineStats::bump(&self.engine.stats.aborts_lock);
                    self.rollback_allocations();
                    self.alloc_set.clear();
                    return PreparedCommit::Done(Err(TxError::Aborted(reason)));
                }
            };
        // Transfer the active-table registration to the driver: it stays
        // live (pinning OAT at this transaction's read timestamp) until the
        // driver seals, which may happen on another `advance` call when the
        // commit rides a pipeline.
        self.finished = true;
        PreparedCommit::InFlight(Box::new(CommitDriver::new(
            Arc::clone(&self.engine),
            self.opts,
            self.read_ts,
            read_set,
            alloc_set,
            plan,
            self.active,
        )))
    }

    // ------------------------------------------------------------------
    // Abort / cleanup helpers
    // ------------------------------------------------------------------

    fn rollback_allocations(&self) {
        for addr in &self.alloc_set {
            if let Ok((_p, region)) = self.engine.primary_region_of(*addr) {
                let _ = region.free(*addr);
            }
        }
    }

    fn execution_abort(&mut self, reason: AbortReason) -> TxError {
        EngineStats::bump(&self.engine.stats.aborts_execution);
        self.finish();
        self.rollback_allocations();
        TxError::Aborted(reason)
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.engine.unregister_active(self.active);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.engine.unregister_active(self.active);
            self.rollback_allocations();
            self.finished = true;
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("serial", &self.serial)
            .field("read_ts", &self.read_ts)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .finish()
    }
}
