//! Transactions: the execution-phase API — snapshot reads, buffered writes,
//! allocation and freeing.
//!
//! The commit protocol itself lives in [`crate::commit`]: `commit` builds a
//! [`CommitPlan`](crate::commit::CommitPlan) grouping the transaction's
//! sets by destination machine and hands it to the
//! [`CommitDriver`](crate::commit::CommitDriver) phase state machine.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use farm_clock::TsMode;
use farm_memory::{Addr, ConsistentRead, OldAddr, OldVersion, RegionId};

use crate::commit::{CommitDriver, CommitPlan};
use crate::engine::NodeEngine;
use crate::error::{AbortReason, TxError};
use crate::opts::{IsolationLevel, TxOptions};
use crate::stats::EngineStats;

/// Information about a successful commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// The transaction's read timestamp (snapshot it executed against).
    pub read_ts: u64,
    /// The write timestamp, for read-write transactions.
    pub write_ts: Option<u64>,
}

/// A FaRMv2 (or baseline) transaction. Created by
/// [`NodeEngine::begin`](crate::NodeEngine::begin); the creating thread acts
/// as the distributed-commit coordinator when [`Transaction::commit`] is
/// called.
pub struct Transaction {
    engine: Arc<NodeEngine>,
    serial: u64,
    opts: TxOptions,
    /// The snapshot this transaction reads at (FaRMv2 modes). Irrelevant in
    /// baseline mode, which has no read snapshots.
    read_ts: u64,
    /// Stale snapshot reads (slave side of parallel distributed queries) are
    /// read-only by construction.
    stale_readonly: bool,
    /// Versions observed by reads: addr → observed timestamp.
    read_set: HashMap<Addr, u64>,
    /// Buffered writes: addr → new payload.
    write_set: HashMap<Addr, Bytes>,
    /// Objects allocated by this transaction (payload installed at commit).
    alloc_set: Vec<Addr>,
    /// Objects freed by this transaction.
    free_set: Vec<Addr>,
    finished: bool,
}

impl Transaction {
    pub(crate) fn start(engine: Arc<NodeEngine>, opts: TxOptions) -> Transaction {
        let baseline = engine.config().mode.is_baseline();
        let serial = engine.next_serial();
        // Acquire the read timestamp. Strict transactions use GET_TS (upper
        // bound + uncertainty wait); non-strict ones take the lower bound
        // with no wait. The baseline has no read timestamps at all.
        let read_ts = if baseline {
            0
        } else {
            let mode = if opts.strict {
                TsMode::StrictWait
            } else {
                TsMode::NonStrictRead
            };
            let (ts, _waited) = engine.handle().clock().get_ts(mode);
            ts.as_nanos()
        };
        engine.register_active(serial, if baseline { u64::MAX } else { read_ts });
        Transaction {
            engine,
            serial,
            opts,
            read_ts,
            stale_readonly: false,
            read_set: HashMap::new(),
            write_set: HashMap::new(),
            alloc_set: Vec::new(),
            free_set: Vec::new(),
            finished: false,
        }
    }

    pub(crate) fn start_stale(engine: Arc<NodeEngine>, read_ts: u64) -> Transaction {
        let serial = engine.next_serial();
        engine.register_active(serial, read_ts);
        Transaction {
            engine,
            serial,
            opts: TxOptions::serializable(),
            read_ts,
            stale_readonly: true,
            read_set: HashMap::new(),
            write_set: HashMap::new(),
            alloc_set: Vec::new(),
            free_set: Vec::new(),
            finished: false,
        }
    }

    /// The transaction's read timestamp (snapshot point).
    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    /// Whether the transaction has performed no writes, allocations or frees.
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_empty() && self.alloc_set.is_empty() && self.free_set.is_empty()
    }

    /// Number of objects read so far.
    pub fn reads(&self) -> usize {
        self.read_set.len()
    }

    // ------------------------------------------------------------------
    // Execution phase
    // ------------------------------------------------------------------

    /// Reads the object at `addr` from the snapshot defined by the read
    /// timestamp. Writes buffered by this transaction are visible to its own
    /// reads.
    pub fn read(&mut self, addr: Addr) -> Result<Bytes, TxError> {
        if let Some(buffered) = self.write_set.get(&addr) {
            return Ok(buffered.clone());
        }
        let baseline = self.engine.config().mode.is_baseline();
        let (primary, region) = self.engine.primary_region_of(addr)?;
        let slot = region
            .slot(addr)
            .map_err(|_| self.execution_abort(AbortReason::BadAddress(addr)))?;
        let mut retries = self.engine.config().read_lock_retries;
        loop {
            // One-sided RDMA read of the head version from the primary.
            self.engine.meter.read(64 + slot.raw_data().len());
            match slot.read_consistent() {
                ConsistentRead::NotAllocated => {
                    return Err(self.execution_abort(AbortReason::BadAddress(addr)));
                }
                ConsistentRead::Locked => {
                    if retries == 0 {
                        return Err(self.execution_abort(AbortReason::ReadLockedObject(addr)));
                    }
                    retries -= 1;
                    std::hint::spin_loop();
                    continue;
                }
                ConsistentRead::Tombstone { ts, ovp } => {
                    if baseline || ts <= self.read_ts {
                        // The object was already freed at our snapshot.
                        return Err(self.execution_abort(AbortReason::BadAddress(addr)));
                    }
                    // Freed after our snapshot: the pre-free history hangs
                    // off the tombstone exactly as off a too-new head
                    // version.
                    return self.read_old_chain(primary, addr, ovp);
                }
                ConsistentRead::Value { ts, ovp, data } => {
                    if baseline {
                        // FaRMv1: no snapshot — the latest committed version
                        // is returned whatever its timestamp, and consistency
                        // is only checked at commit time (no opacity).
                        self.read_set.insert(addr, ts);
                        return Ok(data);
                    }
                    if ts <= self.read_ts {
                        self.read_set.insert(addr, ts);
                        return Ok(data);
                    }
                    // The head version is newer than our snapshot.
                    return self.read_old_chain(primary, addr, ovp);
                }
            }
        }
    }

    /// Follows the old-version chain at the primary to find the version
    /// visible at this transaction's snapshot. Entered when the head version
    /// (or a tombstone) is newer than the read timestamp.
    fn read_old_chain(
        &mut self,
        primary: farm_net::NodeId,
        addr: Addr,
        ovp: Option<OldAddr>,
    ) -> Result<Bytes, TxError> {
        if !self.engine.config().mode.is_multi_version() {
            return Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)));
        }
        // Eager validation (Section 4.7): a serializable transaction that has
        // written (or hints it will write) would fail validation anyway, so
        // abort now.
        if self.opts.isolation == IsolationLevel::Serializable
            && (self.opts.write_hint || !self.write_set.is_empty())
        {
            return Err(self.execution_abort(AbortReason::EagerValidation(addr)));
        }
        EngineStats::bump(&self.engine.stats.old_version_reads);
        let store = self.engine.cluster().node(primary).old_versions();
        let mut cursor = ovp;
        while let Some(old_addr) = cursor {
            self.engine.meter.read(64);
            match store.resolve(old_addr) {
                None => {
                    return Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)));
                }
                Some(OldVersion {
                    ts: old_ts,
                    ovp: next,
                    data: old_data,
                }) => {
                    if old_ts <= self.read_ts {
                        self.read_set.insert(addr, old_ts);
                        return Ok(old_data);
                    }
                    cursor = next;
                }
            }
        }
        Err(self.execution_abort(AbortReason::OldVersionUnavailable(addr)))
    }

    /// Buffers a write of `data` to the object at `addr`. The object is read
    /// first (if it has not been read yet) so the commit protocol knows which
    /// version to lock against.
    pub fn write(&mut self, addr: Addr, data: impl Into<Bytes>) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        if !self.read_set.contains_key(&addr) && !self.alloc_set.contains(&addr) {
            self.read(addr)?;
        }
        self.write_set.insert(addr, data.into());
        Ok(())
    }

    /// Allocates a new object initialized with `data` in a region whose
    /// primary is the coordinator's machine (exploiting locality), or in any
    /// region if the coordinator holds no primaries.
    pub fn alloc(&mut self, data: impl Into<Bytes>) -> Result<Addr, TxError> {
        let region = self
            .engine
            .home_region()
            .or_else(|| self.engine.cluster().regions().into_iter().next())
            .ok_or(TxError::AllocationFailed)?;
        self.alloc_in(region, data)
    }

    /// Allocates a new object initialized with `data` in the given region.
    pub fn alloc_in(&mut self, region: RegionId, data: impl Into<Bytes>) -> Result<Addr, TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        let data: Bytes = data.into();
        let primary = self
            .engine
            .cluster()
            .primary_of(region)
            .ok_or(TxError::AllocationFailed)?;
        let replica = self.engine.cluster().node(primary).regions().ensure(region);
        let addr = replica
            .allocate(data.len())
            .map_err(|_| TxError::AllocationFailed)?;
        self.alloc_set.push(addr);
        self.write_set.insert(addr, data);
        Ok(addr)
    }

    /// Marks the object at `addr` to be freed at commit.
    pub fn free(&mut self, addr: Addr) -> Result<(), TxError> {
        if self.stale_readonly {
            return Err(TxError::InvalidOperation(
                "stale snapshot transactions are read-only",
            ));
        }
        if !self.read_set.contains_key(&addr) && !self.alloc_set.contains(&addr) {
            self.read(addr)?;
        }
        self.free_set.push(addr);
        Ok(())
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) -> TxError {
        self.finish();
        // Return pre-allocated slots to their slabs.
        self.rollback_allocations();
        TxError::Aborted(AbortReason::UserRequested)
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commits the transaction by handing its sets to the batched
    /// [`CommitDriver`] (Figure 3; or the baseline protocol when the engine
    /// is in baseline mode). Consumes the transaction either way; on error
    /// the transaction has aborted and all its locks have been released.
    pub fn commit(mut self) -> Result<CommitInfo, TxError> {
        let baseline = self.engine.config().mode.is_baseline();
        if !baseline && self.is_read_only() {
            // FaRMv2 read-only transactions skip validation entirely:
            // committing is a no-op (Section 4.2).
            self.finish();
            EngineStats::bump(&self.engine.stats.commits_ro);
            return Ok(CommitInfo {
                read_ts: self.read_ts,
                write_ts: None,
            });
        }

        // Move the sets out of `self`: the driver owns them from here on
        // (including allocation rollback on abort — `Drop` sees them empty).
        let write_set = std::mem::take(&mut self.write_set);
        let free_set = std::mem::take(&mut self.free_set);
        let alloc_set = std::mem::take(&mut self.alloc_set);
        let read_set = std::mem::take(&mut self.read_set);

        let plan =
            match CommitPlan::build(&self.engine, &write_set, &free_set, &alloc_set, &read_set) {
                Ok(plan) => plan,
                Err(reason) => {
                    // Hand the allocations back to `self` so the shared
                    // rollback path (also used by `abort` and `Drop`) frees
                    // them.
                    self.alloc_set = alloc_set;
                    self.finish();
                    EngineStats::bump(&self.engine.stats.aborts_lock);
                    self.rollback_allocations();
                    self.alloc_set.clear();
                    return Err(TxError::Aborted(reason));
                }
            };
        let driver = CommitDriver::new(
            Arc::clone(&self.engine),
            self.opts,
            self.read_ts,
            read_set,
            alloc_set,
            plan,
        );
        let outcome = driver.run();
        self.finish();
        match outcome {
            Ok(Some(write_ts)) => {
                EngineStats::bump(&self.engine.stats.commits_rw);
                let read_ts = if baseline { 0 } else { self.read_ts };
                Ok(CommitInfo {
                    read_ts,
                    write_ts: Some(write_ts),
                })
            }
            Ok(None) => {
                // Baseline read-only commit: validated, nothing installed.
                EngineStats::bump(&self.engine.stats.commits_ro);
                Ok(CommitInfo {
                    read_ts: 0,
                    write_ts: None,
                })
            }
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // Abort / cleanup helpers
    // ------------------------------------------------------------------

    fn rollback_allocations(&self) {
        for addr in &self.alloc_set {
            if let Ok((_p, region)) = self.engine.primary_region_of(*addr) {
                let _ = region.free(*addr);
            }
        }
    }

    fn execution_abort(&mut self, reason: AbortReason) -> TxError {
        EngineStats::bump(&self.engine.stats.aborts_execution);
        self.finish();
        self.rollback_allocations();
        TxError::Aborted(reason)
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.engine.unregister_active(self.serial);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.engine.unregister_active(self.serial);
            self.rollback_allocations();
            self.finished = true;
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("serial", &self.serial)
            .field("read_ts", &self.read_ts)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .finish()
    }
}
