//! # farm-core — the FaRMv2 transaction engine with opacity
//!
//! This crate implements the paper's primary contribution: a distributed
//! transaction protocol that provides **opacity** (strict serializability for
//! committed *and* aborted transactions) on top of one-sided-RDMA-style
//! primitives, using read and write timestamps drawn from global time with
//! explicit uncertainty waits (Section 4.2, Figure 3, Algorithm 2).
//!
//! ## What lives here
//!
//! * [`Engine`] / [`NodeEngine`] — the per-cluster and per-machine engine
//!   handles. Application threads obtain a [`Transaction`] from the engine of
//!   their home machine (the symmetric model of FaRM: every thread can be a
//!   coordinator).
//! * [`Transaction`] — buffered writes, snapshot reads at the transaction's
//!   read timestamp (following old-version chains when the head version is
//!   too new), allocation and freeing of objects.
//! * The **commit protocol**: LOCK at the primaries (allocating old versions
//!   in multi-version mode), write-timestamp acquisition with an uncertainty
//!   wait *while holding locks*, read validation with one-sided reads,
//!   COMMIT-BACKUP (awaiting only "hardware acks"), COMMIT-PRIMARY
//!   (install + unlock) and TRUNCATE (applying backup logs).
//! * **Isolation/strictness knobs** per transaction ([`TxOptions`]):
//!   serializable vs snapshot isolation, strict vs non-strict, read-only
//!   fast path (no validation at all in FaRMv2), eager validation
//!   ("early aborts", Section 4.7) and stale snapshot reads for parallel
//!   distributed read-only transactions (Section 4.6).
//! * The **BASELINE engine** (an optimized FaRMv1): no read snapshots, no
//!   timestamps, per-object version OCC with validation of every read —
//!   including for read-only transactions. This is the comparison system in
//!   every figure of the evaluation.
//! * An **operation-logging mode** (Section 5.6) where committed read-write
//!   transactions append their description to replicated in-memory logs
//!   instead of replicating data.
//!
//! ## Correctness corner
//!
//! Section 7 of the paper proves opacity for the simplified protocol; the
//! property tests in this crate and in the workspace `tests/` directory check
//! the read invariant (Lemma 2), the write invariant (Lemma 3) and
//! serializability of randomized histories against a sequential oracle. The
//! deliberately-unsafe option [`EngineConfig::unsafe_skip_write_wait`]
//! reproduces the Section 7.3 counterexample: with it enabled, the
//! serializability checker finds violations.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod active;
pub mod commit;
pub mod engine;
pub mod error;
pub mod opts;
pub mod readonly;
pub mod stats;
pub mod tx;

pub use active::{ActiveToken, ActiveTxTable};
pub use commit::{
    CommitDriver, CommitPhase, CommitPipeline, PipelinePool, PipelineTimings, PoolConfig, PoolStats,
};
pub use engine::{Engine, NodeEngine, RetryPolicy};
pub use error::{AbortReason, TxError};
pub use opts::{EngineConfig, EngineMode, IsolationLevel, MvPolicy, TxOptions};
pub use readonly::ParallelQuery;
pub use stats::{EngineStats, EngineStatsSnapshot};
pub use tx::{CommitInfo, Transaction};

pub use farm_kernel::{Cluster, ClusterConfig};
pub use farm_memory::{Addr, RegionId};
pub use farm_net::NodeId;
