//! Transaction errors and abort reasons.

use farm_memory::{Addr, RegionId};

/// Why a transaction aborted. The distinction matters for the evaluation:
/// Figure 15 separates aborts caused by old-version unavailability from
/// conflict aborts, and Section 4.7 discusses "early aborts" after failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// A read observed a locked object (conflicting writer in its commit
    /// phase).
    ReadLockedObject(Addr),
    /// A read needed an old version that is not available (evicted by GC,
    /// truncated by the MV-TRUNCATE policy, or lost when a backup was
    /// promoted to primary — the paper's "early aborts").
    OldVersionUnavailable(Addr),
    /// Eager validation: a serializable read-write transaction read an old
    /// version and would necessarily fail validation later (Section 4.7).
    EagerValidation(Addr),
    /// The LOCK phase failed: an object was locked by another transaction or
    /// its version changed since it was read.
    LockConflict(Addr),
    /// Read validation failed: an object read by the transaction was locked
    /// or modified before the write timestamp.
    ValidationFailed(Addr),
    /// Old-version memory was exhausted and the MV-ABORT policy is in effect.
    OldVersionMemoryExhausted,
    /// A stale snapshot read was requested below the local GC safe point
    /// (slave transactions of a parallel distributed query, Section 4.6).
    SnapshotTooStale {
        /// The requested read timestamp.
        requested: u64,
        /// The node's current `GC_local`.
        gc_local: u64,
    },
    /// The object address did not resolve (freed and its slab reused, or the
    /// region's primary is currently unavailable).
    BadAddress(Addr),
    /// The transaction was asked to write, but the engine is in read-only
    /// (recovering) state for the affected region.
    RegionUnavailable(Addr),
    /// The node serving this address died mid-protocol (between suspicion
    /// and the promotion of a backup). Retryable: reconfiguration promotes
    /// a new primary, after which the address resolves again.
    NodeUnavailable(Addr),
    /// The region is blocked by an in-progress reconfiguration (the drain
    /// barrier between suspicion and promotion). Retryable: the barrier
    /// lifts within one reconfiguration.
    Reconfiguring(RegionId),
    /// The coordinator's node was killed.
    CoordinatorDead,
    /// Explicit abort requested by the application.
    UserRequested,
}

/// Error type returned by transaction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// The transaction aborted (or must abort) for the given reason. The
    /// guarantees of opacity hold for the reads performed so far: they came
    /// from a consistent snapshot.
    Aborted(AbortReason),
    /// The operation is invalid in the transaction's current state (e.g.
    /// writing in a read-only transaction).
    InvalidOperation(&'static str),
    /// Allocation failed (out of memory in the target region).
    AllocationFailed,
}

impl TxError {
    /// Convenience predicate: is this a conflict-style or availability-style
    /// abort that the application would normally retry? Availability aborts
    /// ([`AbortReason::NodeUnavailable`], [`AbortReason::Reconfiguring`],
    /// [`AbortReason::RegionUnavailable`]) clear once the reconfiguration
    /// promotes a new primary, so a bounded-backoff retry loop turns a
    /// machine failure into nothing worse than latency.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TxError::Aborted(
                AbortReason::ReadLockedObject(_)
                    | AbortReason::LockConflict(_)
                    | AbortReason::ValidationFailed(_)
                    | AbortReason::OldVersionUnavailable(_)
                    | AbortReason::EagerValidation(_)
                    | AbortReason::OldVersionMemoryExhausted
                    | AbortReason::NodeUnavailable(_)
                    | AbortReason::Reconfiguring(_)
                    | AbortReason::RegionUnavailable(_)
            )
        )
    }
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Aborted(r) => write!(f, "transaction aborted: {r:?}"),
            TxError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            TxError::AllocationFailed => write!(f, "allocation failed"),
        }
    }
}

impl std::error::Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_memory::RegionId;

    fn addr() -> Addr {
        Addr {
            region: RegionId(0),
            slab: 0,
            slot: 0,
        }
    }

    #[test]
    fn retryable_classification() {
        assert!(TxError::Aborted(AbortReason::LockConflict(addr())).is_retryable());
        assert!(TxError::Aborted(AbortReason::ValidationFailed(addr())).is_retryable());
        assert!(TxError::Aborted(AbortReason::OldVersionUnavailable(addr())).is_retryable());
        // Availability-class aborts retry: a failure shows up as latency.
        assert!(TxError::Aborted(AbortReason::NodeUnavailable(addr())).is_retryable());
        assert!(TxError::Aborted(AbortReason::Reconfiguring(RegionId(3))).is_retryable());
        assert!(TxError::Aborted(AbortReason::RegionUnavailable(addr())).is_retryable());
        assert!(!TxError::Aborted(AbortReason::CoordinatorDead).is_retryable());
        assert!(!TxError::Aborted(AbortReason::UserRequested).is_retryable());
        assert!(!TxError::InvalidOperation("x").is_retryable());
        assert!(!TxError::AllocationFailed.is_retryable());
    }

    #[test]
    fn errors_format() {
        let e = TxError::Aborted(AbortReason::CoordinatorDead);
        assert!(format!("{e}").contains("aborted"));
        let e = TxError::InvalidOperation("write in read-only tx");
        assert!(format!("{e}").contains("read-only"));
    }
}
