//! Parallel distributed read-only transactions (Section 4.6).
//!
//! A complex query is parallelized by a **master** transaction that acquires
//! a read timestamp and fans out work to **slave** transactions on other
//! machines, all executing against the same snapshot (the master's read
//! timestamp, which may already be in the past when a slave starts — a
//! *stale snapshot read*). Slaves with a read timestamp below their node's
//! `GC_local` are rejected, which is what makes it safe to garbage-collect
//! old versions while such queries are in flight.
//!
//! # Concurrency semantics
//!
//! [`ParallelQuery::map_nodes`] executes the per-node closures **in
//! parallel**, one scoped thread per node, mirroring the paper's fan-out of
//! slave work across machines. The closure therefore must be `Fn + Sync`
//! (it is shared by the worker threads) and the produced values `Send`.
//! Every slave reads at the master's snapshot, so the results are mutually
//! consistent however the threads interleave; if any slave fails, the first
//! failure in node order is returned (the remaining slaves still run to
//! completion — there is no cross-node cancellation, matching the
//! at-a-snapshot model where slaves cannot invalidate each other).
//! [`ParallelQuery::map_nodes_seq`] is the sequential escape hatch for
//! closures that need `FnMut` or must not run concurrently.
//!
//! The snapshot stays pinned (protected from GC) from
//! [`ParallelQuery::start`] until [`ParallelQuery::finish`], via a
//! registration keyed by a **unique query id** drawn from the master
//! engine's serial counter — two queries that happen to share a read
//! timestamp pin and unpin independently.

use std::sync::Arc;

use farm_net::NodeId;

use crate::engine::{Engine, NodeEngine};
use crate::error::TxError;
use crate::tx::Transaction;

/// A helper for running a parallel distributed read-only query: one master
/// transaction plus per-node slave transactions sharing its snapshot.
pub struct ParallelQuery {
    engine: Arc<Engine>,
    master_node: NodeId,
    read_ts: u64,
    /// Registration pinning the snapshot on the master node until `finish`.
    /// Keyed by a fresh serial drawn from the master engine's transaction
    /// counter, so two queries never collide even at an identical read
    /// timestamp.
    pin: crate::active::ActiveToken,
}

impl ParallelQuery {
    /// Starts a parallel query coordinated by `master_node`. The master
    /// acquires a strict read timestamp so the whole query is strictly
    /// serializable.
    pub fn start(engine: &Arc<Engine>, master_node: NodeId) -> ParallelQuery {
        let master = engine.node(master_node);
        let tx = master.begin();
        let read_ts = tx.read_ts();
        // The master transaction object itself is dropped; what matters is
        // that the snapshot (read_ts) is protected from GC, which the engine
        // guarantees by keeping `read_ts` registered until `finish` is
        // called. The registration key is a fresh serial — not derived from
        // the timestamp — so concurrent queries at the same snapshot do not
        // share (and prematurely release) one registration.
        let pin_serial = master.next_serial();
        let pin = master.register_active(pin_serial, read_ts);
        drop(tx);
        ParallelQuery {
            engine: Arc::clone(engine),
            master_node,
            read_ts,
            pin,
        }
    }

    /// The snapshot every slave executes against.
    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    /// The master's node.
    pub fn master_node(&self) -> NodeId {
        self.master_node
    }

    /// Starts a slave transaction on `node` reading at the master's snapshot.
    pub fn slave_on(&self, node: NodeId) -> Result<Transaction, TxError> {
        self.engine.node(node).begin_stale_readonly(self.read_ts)
    }

    /// Runs `work` on every given node **concurrently** — one scoped thread
    /// per node, each with its own slave transaction at the shared snapshot —
    /// and collects the results in node order. See the module docs for the
    /// concurrency semantics.
    pub fn map_nodes<T: Send>(
        &self,
        nodes: &[NodeId],
        work: impl Fn(&Arc<NodeEngine>, &mut Transaction) -> Result<T, TxError> + Sync,
    ) -> Result<Vec<T>, TxError> {
        let work = &work;
        let results: Vec<Result<T, TxError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .iter()
                .map(|&n| {
                    scope.spawn(move || {
                        let node_engine = self.engine.node(n);
                        let mut tx = self.slave_on(n)?;
                        let value = work(&node_engine, &mut tx)?;
                        let _ = tx.commit()?;
                        Ok(value)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("slave thread panicked"))
                .collect()
        });
        results.into_iter().collect()
    }

    /// Sequential variant of [`ParallelQuery::map_nodes`]: runs `work` on
    /// every node in the caller's thread, in order. Use when the closure
    /// needs mutable state (`FnMut`) or must not execute concurrently.
    pub fn map_nodes_seq<T>(
        &self,
        nodes: &[NodeId],
        mut work: impl FnMut(&Arc<NodeEngine>, &mut Transaction) -> Result<T, TxError>,
    ) -> Result<Vec<T>, TxError> {
        let mut out = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let node_engine = self.engine.node(n);
            let mut tx = self.slave_on(n)?;
            let value = work(&node_engine, &mut tx)?;
            let _ = tx.commit()?;
            out.push(value);
        }
        Ok(out)
    }

    /// Completes the query, releasing the snapshot so garbage collection can
    /// advance past it. (Dropping the query releases it too — an error path
    /// that propagates out with `?` must not pin the node's OAT forever.)
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for ParallelQuery {
    fn drop(&mut self) {
        self.engine
            .node(self.master_node)
            .unregister_active(self.pin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::EngineConfig;
    use farm_kernel::ClusterConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_query_reads_consistent_snapshot_across_nodes() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let node0 = engine.node(NodeId(0));
        // Create an object and update it once.
        let mut tx = node0.begin();
        let addr = tx.alloc(vec![1u8; 8]).unwrap();
        tx.commit().unwrap();
        let mut tx = node0.begin();
        tx.write(addr, vec![2u8; 8]).unwrap();
        tx.commit().unwrap();

        // Start the parallel query: every slave must see value 2.
        let query = ParallelQuery::start(&engine, NodeId(0));
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let values = query
            .map_nodes(&nodes, |_engine, tx| tx.read(addr).map(|b| b[0]))
            .unwrap();
        assert_eq!(values, vec![2, 2, 2]);

        // A writer that commits after the query started must not be visible
        // to later slaves of the same query (they read at the old snapshot).
        let mut tx = node0.begin();
        tx.write(addr, vec![3u8; 8]).unwrap();
        tx.commit().unwrap();
        let values = query
            .map_nodes(&nodes, |_engine, tx| tx.read(addr).map(|b| b[0]))
            .unwrap();
        assert_eq!(
            values,
            vec![2, 2, 2],
            "slaves must read at the query snapshot"
        );
        // The sequential escape hatch sees the same snapshot.
        let mut seen = Vec::new();
        query
            .map_nodes_seq(&nodes, |_engine, tx| {
                seen.push(tx.read(addr)?[0]);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, vec![2, 2, 2]);
        query.finish();
        engine.shutdown();
    }

    #[test]
    fn map_nodes_executes_slaves_concurrently() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let node0 = engine.node(NodeId(0));
        let mut tx = node0.begin();
        let addr = tx.alloc(vec![7u8; 8]).unwrap();
        tx.commit().unwrap();

        let query = ParallelQuery::start(&engine, NodeId(0));
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let in_flight = AtomicUsize::new(0);
        let max_in_flight = AtomicUsize::new(0);
        let values = query
            .map_nodes(&nodes, |_engine, tx| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                max_in_flight.fetch_max(now, Ordering::SeqCst);
                // Hold the slot long enough for the other slaves to arrive.
                std::thread::sleep(std::time::Duration::from_millis(30));
                let v = tx.read(addr)?[0];
                in_flight.fetch_sub(1, Ordering::SeqCst);
                Ok(v)
            })
            .unwrap();
        assert_eq!(values, vec![7, 7, 7], "results stay snapshot-consistent");
        assert!(
            max_in_flight.load(Ordering::SeqCst) >= 2,
            "slaves never overlapped: map_nodes ran sequentially"
        );
        query.finish();
        engine.shutdown();
    }

    #[test]
    fn dropping_a_query_releases_its_pin() {
        // An error path that drops the query without calling finish() (e.g.
        // `let v = q.map_nodes(..)?;` propagating a slave failure) must not
        // leave the snapshot pinned — a leaked pin would hold the node's OAT
        // forever and stall GC cluster-wide.
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let node0 = engine.node(NodeId(0));
        let before = node0.active_transactions();
        let query = ParallelQuery::start(&engine, NodeId(0));
        assert_eq!(node0.active_transactions(), before + 1);
        drop(query);
        assert_eq!(node0.active_transactions(), before);
        engine.shutdown();
    }

    #[test]
    fn concurrent_queries_pin_and_release_snapshots_independently() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let node0 = engine.node(NodeId(0));
        let mut tx = node0.begin();
        let addr = tx.alloc(vec![1u8; 8]).unwrap();
        tx.commit().unwrap();

        let active_registrations = || node0.active_transactions();
        let before = active_registrations();
        let q1 = ParallelQuery::start(&engine, NodeId(0));
        let q2 = ParallelQuery::start(&engine, NodeId(0));
        assert_eq!(
            active_registrations(),
            before + 2,
            "each query holds its own registration (unique id, no key collision)"
        );
        // Finishing q2 must not unpin q1's snapshot.
        q2.finish();
        assert_eq!(active_registrations(), before + 1);

        // q1's snapshot survives an overwrite + GC pressure: its slave still
        // reads the old value.
        let mut tx = node0.begin();
        tx.write(addr, vec![9u8; 8]).unwrap();
        tx.commit().unwrap();
        for _ in 0..4 {
            engine.cluster().control_round();
        }
        engine.collect_garbage_now();
        let values = q1
            .map_nodes(&[NodeId(0)], |_engine, tx| tx.read(addr).map(|b| b[0]))
            .unwrap();
        assert_eq!(values, vec![1], "q1 still reads its pinned snapshot");
        q1.finish();
        assert_eq!(active_registrations(), before);
        engine.shutdown();
    }
}
