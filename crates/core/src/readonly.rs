//! Parallel distributed read-only transactions (Section 4.6).
//!
//! A complex query is parallelized by a **master** transaction that acquires
//! a read timestamp and fans out work to **slave** transactions on other
//! machines, all executing against the same snapshot (the master's read
//! timestamp, which may already be in the past when a slave starts — a
//! *stale snapshot read*). Slaves with a read timestamp below their node's
//! `GC_local` are rejected, which is what makes it safe to garbage-collect
//! old versions while such queries are in flight.

use std::sync::Arc;

use farm_net::NodeId;

use crate::engine::{Engine, NodeEngine};
use crate::error::TxError;
use crate::tx::Transaction;

/// A helper for running a parallel distributed read-only query: one master
/// transaction plus per-node slave transactions sharing its snapshot.
pub struct ParallelQuery {
    engine: Arc<Engine>,
    master_node: NodeId,
    read_ts: u64,
}

impl ParallelQuery {
    /// Starts a parallel query coordinated by `master_node`. The master
    /// acquires a strict read timestamp so the whole query is strictly
    /// serializable.
    pub fn start(engine: &Arc<Engine>, master_node: NodeId) -> ParallelQuery {
        let master = engine.node(master_node);
        let tx = master.begin();
        let read_ts = tx.read_ts();
        // The master transaction object itself is dropped; what matters is
        // that the snapshot (read_ts) is protected from GC, which the engine
        // guarantees by keeping `read_ts` registered until `finish` is
        // called.
        master.register_active(u64::MAX - read_ts, read_ts);
        drop(tx);
        ParallelQuery {
            engine: Arc::clone(engine),
            master_node,
            read_ts,
        }
    }

    /// The snapshot every slave executes against.
    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    /// The master's node.
    pub fn master_node(&self) -> NodeId {
        self.master_node
    }

    /// Starts a slave transaction on `node` reading at the master's snapshot.
    pub fn slave_on(&self, node: NodeId) -> Result<Transaction, TxError> {
        self.engine.node(node).begin_stale_readonly(self.read_ts)
    }

    /// Runs `work` on every given node (sequentially, in the caller's thread)
    /// and collects the results. Each invocation gets a slave transaction at
    /// the shared snapshot.
    pub fn map_nodes<T>(
        &self,
        nodes: &[NodeId],
        mut work: impl FnMut(&Arc<NodeEngine>, &mut Transaction) -> Result<T, TxError>,
    ) -> Result<Vec<T>, TxError> {
        let mut out = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let node_engine = self.engine.node(n);
            let mut tx = self.slave_on(n)?;
            let value = work(&node_engine, &mut tx)?;
            let _ = tx.commit()?;
            out.push(value);
        }
        Ok(out)
    }

    /// Completes the query, releasing the snapshot so garbage collection can
    /// advance past it.
    pub fn finish(self) {
        self.engine
            .node(self.master_node)
            .unregister_active(u64::MAX - self.read_ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::EngineConfig;
    use farm_kernel::ClusterConfig;

    #[test]
    fn parallel_query_reads_consistent_snapshot_across_nodes() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let node0 = engine.node(NodeId(0));
        // Create an object and update it once.
        let mut tx = node0.begin();
        let addr = tx.alloc(vec![1u8; 8]).unwrap();
        tx.commit().unwrap();
        let mut tx = node0.begin();
        tx.write(addr, vec![2u8; 8]).unwrap();
        tx.commit().unwrap();

        // Start the parallel query: every slave must see value 2.
        let query = ParallelQuery::start(&engine, NodeId(0));
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let values = query
            .map_nodes(&nodes, |_engine, tx| tx.read(addr).map(|b| b[0]))
            .unwrap();
        assert_eq!(values, vec![2, 2, 2]);

        // A writer that commits after the query started must not be visible
        // to later slaves of the same query (they read at the old snapshot).
        let mut tx = node0.begin();
        tx.write(addr, vec![3u8; 8]).unwrap();
        tx.commit().unwrap();
        let values = query
            .map_nodes(&nodes, |_engine, tx| tx.read(addr).map(|b| b[0]))
            .unwrap();
        assert_eq!(
            values,
            vec![2, 2, 2],
            "slaves must read at the query snapshot"
        );
        query.finish();
        engine.shutdown();
    }
}
