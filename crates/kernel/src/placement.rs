//! Region placement: which machine is primary and which are backups.

use std::collections::HashMap;

use farm_memory::RegionId;
use farm_net::NodeId;

/// The replica set of one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionAssignment {
    /// The primary replica's machine.
    pub primary: NodeId,
    /// Backup replicas' machines, in order.
    pub backups: Vec<NodeId>,
}

impl RegionAssignment {
    /// All machines holding a replica (primary first).
    pub fn replicas(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.backups.len());
        v.push(self.primary);
        v.extend_from_slice(&self.backups);
        v
    }

    /// Whether `node` holds any replica of the region.
    pub fn involves(&self, node: NodeId) -> bool {
        self.primary == node || self.backups.contains(&node)
    }
}

/// The cluster-wide placement map.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    assignments: HashMap<RegionId, RegionAssignment>,
}

impl Placement {
    /// Builds the initial placement: `regions_per_node * nodes.len()` regions,
    /// region `i` having node `i % n` as primary and the next
    /// `replication - 1` nodes (mod n) as backups. This mirrors FaRM's
    /// symmetric sharding where every machine is primary for some shards and
    /// backup for others, which is how reads are load-balanced (Section 4.2).
    pub fn initial(nodes: &[NodeId], regions_per_node: usize, replication: usize) -> Self {
        assert!(!nodes.is_empty());
        assert!(replication >= 1 && replication <= nodes.len());
        let mut assignments = HashMap::new();
        let n = nodes.len();
        let total_regions = regions_per_node * n;
        for r in 0..total_regions {
            let primary = nodes[r % n];
            let backups: Vec<NodeId> = (1..replication).map(|k| nodes[(r + k) % n]).collect();
            assignments.insert(RegionId(r as u16), RegionAssignment { primary, backups });
        }
        Placement { assignments }
    }

    /// All region ids, sorted.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut v: Vec<_> = self.assignments.keys().copied().collect();
        v.sort();
        v
    }

    /// The assignment of one region.
    pub fn assignment(&self, region: RegionId) -> Option<&RegionAssignment> {
        self.assignments.get(&region)
    }

    /// Regions whose primary is `node`, sorted.
    pub fn primaries_of(&self, node: NodeId) -> Vec<RegionId> {
        let mut v: Vec<_> = self
            .assignments
            .iter()
            .filter(|(_, a)| a.primary == node)
            .map(|(r, _)| *r)
            .collect();
        v.sort();
        v
    }

    /// Removes a failed node from every assignment, promoting the first
    /// surviving backup where it was primary. Returns the list of
    /// `(region, new_primary)` promotions performed.
    ///
    /// Regions that lose *all* replicas are left unassigned (data loss), which
    /// the initial placement's replication factor is chosen to avoid for the
    /// failure counts exercised in the evaluation.
    pub fn remove_node(&mut self, failed: NodeId) -> Vec<(RegionId, NodeId)> {
        let mut promotions = Vec::new();
        for (region, a) in self.assignments.iter_mut() {
            if a.primary == failed {
                a.backups.retain(|b| *b != failed);
                if let Some(new_primary) = a.backups.first().copied() {
                    a.primary = new_primary;
                    a.backups.remove(0);
                    promotions.push((*region, new_primary));
                }
            } else {
                a.backups.retain(|b| *b != failed);
            }
        }
        promotions.sort();
        promotions
    }

    /// Regions that currently have fewer than `replication` replicas, with
    /// their current replica counts.
    pub fn under_replicated(&self, replication: usize) -> Vec<(RegionId, usize)> {
        let mut v: Vec<_> = self
            .assignments
            .iter()
            .filter_map(|(r, a)| {
                let count = 1 + a.backups.len();
                (count < replication).then_some((*r, count))
            })
            .collect();
        v.sort();
        v
    }

    /// Adds `node` as an additional backup of `region` (end of
    /// re-replication for that region).
    pub fn add_backup(&mut self, region: RegionId, node: NodeId) {
        if let Some(a) = self.assignments.get_mut(&region) {
            if !a.involves(node) {
                a.backups.push(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn initial_placement_spreads_primaries() {
        let p = Placement::initial(&nodes(4), 2, 3);
        assert_eq!(p.regions().len(), 8);
        for node in nodes(4) {
            assert_eq!(p.primaries_of(node).len(), 2);
        }
        let a = p.assignment(RegionId(1)).unwrap();
        assert_eq!(a.primary, NodeId(1));
        assert_eq!(a.backups, vec![NodeId(2), NodeId(3)]);
        assert_eq!(a.replicas(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(a.involves(NodeId(3)));
        assert!(!a.involves(NodeId(0)));
    }

    #[test]
    fn remove_node_promotes_backups() {
        let mut p = Placement::initial(&nodes(3), 1, 3);
        let promotions = p.remove_node(NodeId(0));
        // Node 0 was primary of region 0; first backup (node 1) is promoted.
        assert_eq!(promotions, vec![(RegionId(0), NodeId(1))]);
        let a = p.assignment(RegionId(0)).unwrap();
        assert_eq!(a.primary, NodeId(1));
        assert_eq!(a.backups, vec![NodeId(2)]);
        // Other regions simply lose node 0 as a backup.
        let under = p.under_replicated(3);
        assert_eq!(under.len(), 3);
    }

    #[test]
    fn add_backup_restores_replication() {
        let mut p = Placement::initial(&nodes(4), 1, 3);
        p.remove_node(NodeId(0));
        for (region, _) in p.under_replicated(3) {
            p.add_backup(region, NodeId(3));
        }
        // Region already containing node 3 keeps a single copy of it.
        for region in p.regions() {
            let a = p.assignment(region).unwrap();
            let mut reps = a.replicas();
            reps.sort();
            reps.dedup();
            assert_eq!(
                reps.len(),
                a.replicas().len(),
                "duplicate replica in {region:?}"
            );
        }
        // The regions that could take node 3 as a new backup are full again;
        // those whose survivors already included node 3 stay under-replicated
        // until another node is available.
        for (region, count) in p.under_replicated(3) {
            let a = p.assignment(region).unwrap();
            assert!(
                a.involves(NodeId(3)),
                "{region:?} with {count} replicas should contain n3"
            );
        }
    }

    #[test]
    fn double_failure_still_keeps_one_replica_with_three_way_replication() {
        let mut p = Placement::initial(&nodes(5), 2, 3);
        p.remove_node(NodeId(1));
        p.remove_node(NodeId(2));
        for region in p.regions() {
            let a = p.assignment(region).unwrap();
            assert!(!a.replicas().is_empty());
            assert!(!a.involves(NodeId(1)));
            assert!(!a.involves(NodeId(2)));
        }
    }
}
