//! # farm-kernel — the FaRM control plane
//!
//! This crate assembles the per-machine substrates (clock, memory, network)
//! into a **cluster** and implements the control-plane protocols of the
//! paper:
//!
//! * **Configurations and membership** (Section 4.3): a configuration is a
//!   numbered record naming the members and the configuration manager (CM).
//!   Configurations are stored in an external CAS store (ZooKeeper in the
//!   paper, [`ConfigStore`] here) and changed by atomic compare-and-swap.
//! * **Leases and failure detection**: every non-CM periodically renews a
//!   lease at the CM; missing renewals cause the CM to suspect the node, and
//!   a missing response causes the non-CM to suspect the CM. Lease messages
//!   double as the carrier for clock synchronization and for OAT / GC-safe-
//!   point propagation (Figure 9).
//! * **Reconfiguration with clock failover** (Figure 6): when the CM is
//!   removed, the new CM disables clocks, gathers fast-forward values,
//!   waits out lease expiry, advances global time to `FF` and re-enables
//!   clocks, preserving global monotonicity of timestamps without atomic
//!   clocks or GPS.
//! * **Region placement, backup promotion and re-replication**: regions are
//!   spread over the cluster with `f+1`-way primary-backup replication; when
//!   a primary fails a backup is promoted (and rebuilds its allocator
//!   bitmaps), and background re-replication restores the replication factor
//!   at a configurable pace.
//!
//! The transaction engine (`farm-core`) runs on top of the [`Cluster`]
//! type exported here; it registers an *OAT provider* per node so the lease
//! traffic can compute the oldest-active-transaction watermark, and a set of
//! recovery hooks invoked on promotions.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod events;
pub mod node;
pub mod placement;

pub use cluster::{Cluster, ClusterConfig, NoHooks, RecoveryHooks};
pub use config::{ConfigRecord, ConfigStore};
pub use events::{ClusterEvent, EventKind, EventLog};
pub use node::{NodeHandle, NodeRole};
pub use placement::{Placement, RegionAssignment};

pub use farm_clock as clock;
pub use farm_memory as memory;
pub use farm_net as net;
