//! Configurations and the external CAS store (the ZooKeeper stand-in).

use farm_net::NodeId;
use parking_lot::Mutex;

/// One configuration: a unique, monotonically increasing sequence number,
/// the member set, and the configuration manager (which is also the clock
/// master in FaRMv2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigRecord {
    /// Sequence number; each successful change increments it by one.
    pub epoch: u64,
    /// Members of the configuration, sorted by node id.
    pub members: Vec<NodeId>,
    /// The configuration manager / clock master.
    pub cm: NodeId,
}

impl ConfigRecord {
    /// Whether `node` is a member of this configuration.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }
}

/// Linearizable compare-and-swap storage for the current configuration.
///
/// The paper stores configurations in ZooKeeper and changes them with an
/// atomic compare-and-swap that increments the sequence number. Inside one
/// process a mutex-protected record provides the same semantics; partitions
/// of the *data* network do not affect reachability of this store, matching
/// the paper's assumption that a majority partition can still update
/// ZooKeeper.
#[derive(Debug)]
pub struct ConfigStore {
    current: Mutex<ConfigRecord>,
}

/// Error returned when a compare-and-swap loses the race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasConflict {
    /// The configuration that is actually current.
    pub current: ConfigRecord,
}

impl ConfigStore {
    /// Creates the store with an initial configuration of epoch 1.
    pub fn new(mut members: Vec<NodeId>, cm: NodeId) -> Self {
        members.sort();
        members.dedup();
        assert!(members.contains(&cm), "CM must be a member");
        ConfigStore {
            current: Mutex::new(ConfigRecord {
                epoch: 1,
                members,
                cm,
            }),
        }
    }

    /// Reads the current configuration.
    pub fn read(&self) -> ConfigRecord {
        self.current.lock().clone()
    }

    /// Atomically installs a new configuration if the current epoch is still
    /// `expected_epoch`. The new configuration gets epoch `expected_epoch+1`.
    pub fn compare_and_swap(
        &self,
        expected_epoch: u64,
        mut new_members: Vec<NodeId>,
        new_cm: NodeId,
    ) -> Result<ConfigRecord, CasConflict> {
        new_members.sort();
        new_members.dedup();
        assert!(new_members.contains(&new_cm), "new CM must be a member");
        let mut cur = self.current.lock();
        if cur.epoch != expected_epoch {
            return Err(CasConflict {
                current: cur.clone(),
            });
        }
        *cur = ConfigRecord {
            epoch: expected_epoch + 1,
            members: new_members,
            cm: new_cm,
        };
        Ok(cur.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn initial_config_has_epoch_one() {
        let store = ConfigStore::new(nodes(&[2, 0, 1, 1]), NodeId(0));
        let c = store.read();
        assert_eq!(c.epoch, 1);
        assert_eq!(c.members, nodes(&[0, 1, 2]));
        assert_eq!(c.cm, NodeId(0));
        assert!(c.contains(NodeId(1)));
        assert!(!c.contains(NodeId(9)));
    }

    #[test]
    fn cas_succeeds_once_per_epoch() {
        let store = ConfigStore::new(nodes(&[0, 1, 2]), NodeId(0));
        let next = store
            .compare_and_swap(1, nodes(&[1, 2]), NodeId(1))
            .unwrap();
        assert_eq!(next.epoch, 2);
        assert_eq!(next.cm, NodeId(1));
        // A competing change based on the stale epoch fails.
        let err = store
            .compare_and_swap(1, nodes(&[0, 2]), NodeId(2))
            .unwrap_err();
        assert_eq!(err.current.epoch, 2);
    }

    #[test]
    #[should_panic(expected = "CM must be a member")]
    fn cm_must_be_member() {
        let _ = ConfigStore::new(nodes(&[0, 1]), NodeId(5));
    }
}
