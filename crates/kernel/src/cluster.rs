//! Cluster assembly, lease-driven control loop, reconfiguration and clock
//! failover.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use farm_clock::{ClockConfig, DriftClock, MonotonicClock, NodeClock, SharedClock, SyncSample};
use farm_memory::{OldVersionStore, RegionConfig, RegionId, RegionStore};
use farm_net::{FaultPlane, NetStats, NodeId, Verb};
use parking_lot::{Mutex, RwLock};

use crate::config::{ConfigRecord, ConfigStore};
use crate::events::{EventKind, EventLog};
use crate::node::NodeHandle;
use crate::placement::Placement;

/// Hooks with which the transaction engine reacts to control-plane events.
pub trait RecoveryHooks: Send + Sync {
    /// A backup of `region` on `new_primary` was promoted to primary; the
    /// engine should rebuild primary-only state (allocator bitmaps were
    /// already rebuilt) and recover locks from untruncated logs.
    fn on_region_promoted(&self, region: RegionId, new_primary: NodeId) {
        let _ = (region, new_primary);
    }

    /// A new configuration was committed.
    fn on_config_committed(&self, config: &ConfigRecord) {
        let _ = config;
    }

    /// Background re-replication finished its state copy of `region` onto
    /// `new_backup`; the engine should catch the new backup up from any
    /// untruncated redo-log records (commits that raced the copy).
    fn on_backup_rereplicated(&self, region: RegionId, new_backup: NodeId) {
        let _ = (region, new_backup);
    }
}

/// A no-op hook implementation.
pub struct NoHooks;
impl RecoveryHooks for NoHooks {}

/// Cluster-wide configuration knobs. The defaults are scaled-down versions of
/// the paper's deployment parameters; every experiment harness overrides the
/// knobs it sweeps.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of machines.
    pub nodes: usize,
    /// Replication factor (primary + backups); the paper evaluates 3-way.
    pub replication: usize,
    /// Regions whose primary lives on each machine.
    pub regions_per_node: usize,
    /// Interval between control rounds (lease renewal + clock sync).
    pub control_interval: Duration,
    /// Lease expiry: a machine silent for this long is suspected.
    pub lease_expiry: Duration,
    /// Discard all but one in `sync_sampling_ratio` synchronization
    /// responses, emulating larger clusters at a fixed aggregate sync rate
    /// (Figure 17). 1 = keep every response.
    pub sync_sampling_ratio: u32,
    /// Clock subsystem configuration.
    pub clock: ClockConfig,
    /// Region / slab sizing.
    pub region: RegionConfig,
    /// Old-version block size in bytes.
    pub old_version_block_bytes: usize,
    /// Old-version memory budget per machine in bytes.
    pub old_version_max_bytes: usize,
    /// Maximum per-node clock offset applied at startup (deterministic
    /// spread), in nanoseconds.
    pub max_clock_offset_ns: u64,
    /// Maximum per-node drift magnitude applied at startup (deterministic
    /// spread), in ppm. Must be below the drift bound in `clock`.
    pub max_drift_ppm: i32,
    /// Pace of background re-replication: delay inserted between copying
    /// consecutive regions (the paper paces re-replication to protect
    /// foreground work).
    pub rereplication_pace: Duration,
    /// Whether to run the background control thread. Tests that want to
    /// drive control rounds manually set this to `false`.
    pub auto_control: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 3,
            replication: 3,
            regions_per_node: 2,
            control_interval: Duration::from_micros(500),
            lease_expiry: Duration::from_millis(10),
            sync_sampling_ratio: 1,
            clock: ClockConfig::default(),
            region: RegionConfig::default(),
            old_version_block_bytes: 64 * 1024,
            old_version_max_bytes: 64 * 1024 * 1024,
            max_clock_offset_ns: 1_000_000,
            max_drift_ppm: 100,
            rereplication_pace: Duration::from_millis(20),
            auto_control: true,
        }
    }
}

impl ClusterConfig {
    /// A small configuration convenient for unit tests: no background control
    /// thread, tiny regions.
    pub fn test(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            replication: nodes.min(3),
            regions_per_node: 1,
            region: RegionConfig::small(),
            old_version_block_bytes: 4 * 1024,
            old_version_max_bytes: 1024 * 1024,
            rereplication_pace: Duration::from_millis(0),
            auto_control: false,
            ..Default::default()
        }
    }
}

struct CmLeaseState {
    /// Last lease renewal seen from each member.
    last_seen: Vec<Instant>,
    /// Latest `OAT_local` reported by each member.
    oat_local: Vec<u64>,
    /// Latest `GC_local` reported by each member.
    gc_local: Vec<u64>,
}

/// The assembled cluster: all machines plus the control plane.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<Arc<NodeHandle>>,
    faults: Arc<FaultPlane>,
    config_store: Arc<ConfigStore>,
    placement: RwLock<Placement>,
    /// Regions currently draining for a reconfiguration: new transactions on
    /// them are rejected (retryably) until promotions and log replays finish.
    blocked_regions: RwLock<HashSet<RegionId>>,
    /// O(1) emptiness check so the hot `is_region_blocked` path costs one
    /// atomic load while no reconfiguration is running.
    blocked_count: AtomicUsize,
    events: EventLog,
    hooks: RwLock<Arc<dyn RecoveryHooks>>,
    cm_lease: Mutex<CmLeaseState>,
    /// Last successful lease response observed by each non-CM.
    last_cm_response: Mutex<Vec<Instant>>,
    /// Per-node counter of sync responses, for the sampling filter.
    sync_counter: Vec<AtomicU64>,
    reconfig_lock: Mutex<()>,
    stop: Arc<AtomicBool>,
    control_thread: Mutex<Option<JoinHandle<()>>>,
    rereplication_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Cluster {
    /// Builds and starts a cluster. Node 0 is the initial configuration
    /// manager and clock master. All clocks are synchronized once before this
    /// returns, so timestamps can be acquired immediately.
    pub fn start(cfg: ClusterConfig) -> Arc<Cluster> {
        assert!(cfg.nodes >= 1);
        assert!(cfg.replication >= 1 && cfg.replication <= cfg.nodes);
        assert!(cfg.max_drift_ppm >= 0 && (cfg.max_drift_ppm as u32) < cfg.clock.drift_bound_ppm);
        let base: SharedClock = Arc::new(MonotonicClock::new());
        let node_ids: Vec<NodeId> = (0..cfg.nodes as u32).map(NodeId).collect();
        let faults = Arc::new(FaultPlane::new());
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for (i, &id) in node_ids.iter().enumerate() {
            // Deterministic spread of offsets and drift so different machines
            // really do have different clocks, without needing an RNG.
            let offset = (i as u64 * 7_919) % (cfg.max_clock_offset_ns.max(1));
            let drift = if cfg.max_drift_ppm == 0 {
                0
            } else {
                let span = 2 * cfg.max_drift_ppm + 1;
                ((i as i32 * 37) % span) - cfg.max_drift_ppm
            };
            let local: SharedClock = Arc::new(DriftClock::new(Arc::clone(&base), offset, drift));
            let clock = if i == 0 {
                Arc::new(NodeClock::new_master(local, cfg.clock))
            } else {
                Arc::new(NodeClock::new_slave(local, cfg.clock))
            };
            let handle = NodeHandle::new(
                id,
                clock,
                Arc::new(RegionStore::new(cfg.region)),
                Arc::new(OldVersionStore::new(
                    cfg.old_version_block_bytes,
                    cfg.old_version_max_bytes,
                )),
                Arc::new(NetStats::default()),
            );
            nodes.push(Arc::new(handle));
        }
        let placement = Placement::initial(&node_ids, cfg.regions_per_node, cfg.replication);
        let config_store = Arc::new(ConfigStore::new(node_ids.clone(), NodeId(0)));
        let now = Instant::now();
        let cluster = Arc::new(Cluster {
            cm_lease: Mutex::new(CmLeaseState {
                last_seen: vec![now; cfg.nodes],
                oat_local: vec![0; cfg.nodes],
                gc_local: vec![0; cfg.nodes],
            }),
            last_cm_response: Mutex::new(vec![now; cfg.nodes]),
            sync_counter: (0..cfg.nodes).map(|_| AtomicU64::new(0)).collect(),
            nodes,
            faults,
            config_store,
            placement: RwLock::new(placement),
            blocked_regions: RwLock::new(HashSet::new()),
            blocked_count: AtomicUsize::new(0),
            events: EventLog::new(),
            hooks: RwLock::new(Arc::new(NoHooks)),
            reconfig_lock: Mutex::new(()),
            stop: Arc::new(AtomicBool::new(false)),
            control_thread: Mutex::new(None),
            rereplication_threads: Mutex::new(Vec::new()),
            cfg,
        });
        // Synchronize every non-CM once so clocks are enabled before use.
        for _ in 0..2 {
            cluster.control_round();
        }
        if cluster.cfg.auto_control {
            let c = Arc::clone(&cluster);
            let stop = Arc::clone(&cluster.stop);
            let interval = cluster.cfg.control_interval;
            let handle = std::thread::Builder::new()
                .name("farm-control".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        c.control_round();
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn control thread");
            *cluster.control_thread.lock() = Some(handle);
        }
        cluster
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The machine with the given id.
    pub fn node(&self, id: NodeId) -> &Arc<NodeHandle> {
        &self.nodes[id.index()]
    }

    /// All machines (dead ones included).
    pub fn nodes(&self) -> &[Arc<NodeHandle>] {
        &self.nodes
    }

    /// The fault-injection plane.
    pub fn faults(&self) -> &Arc<FaultPlane> {
        &self.faults
    }

    /// The event log (availability experiments).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The current configuration record.
    pub fn current_config(&self) -> ConfigRecord {
        self.config_store.read()
    }

    /// A snapshot of the current placement.
    pub fn placement(&self) -> Placement {
        self.placement.read().clone()
    }

    /// All region ids.
    pub fn regions(&self) -> Vec<RegionId> {
        self.placement.read().regions()
    }

    /// The current primary of a region, if the region exists.
    pub fn primary_of(&self, region: RegionId) -> Option<NodeId> {
        self.placement.read().assignment(region).map(|a| a.primary)
    }

    /// The current replica set of a region.
    pub fn replicas_of(&self, region: RegionId) -> Vec<NodeId> {
        self.placement
            .read()
            .assignment(region)
            .map(|a| a.replicas())
            .unwrap_or_default()
    }

    /// Regions whose primary is currently `node`.
    pub fn primaries_on(&self, node: NodeId) -> Vec<RegionId> {
        self.placement.read().primaries_of(node)
    }

    /// Registers the transaction engine's recovery hooks.
    pub fn set_recovery_hooks(&self, hooks: Arc<dyn RecoveryHooks>) {
        *self.hooks.write() = hooks;
    }

    /// Kills a machine: its process stops, its leases stop renewing, and the
    /// failure detector will eventually trigger reconfiguration. Returns
    /// immediately.
    ///
    /// The node handle's liveness flag flips under the fault plane's write
    /// lock, so the two views can never diverge: any observer that sees the
    /// node killed on the fault plane also sees
    /// [`NodeHandle::is_alive`] report `false`.
    pub fn kill(&self, node: NodeId) {
        let handle = &self.nodes[node.index()];
        self.faults.kill_with(node, || handle.mark_dead());
    }

    /// Whether `region` is currently blocked by an in-progress
    /// reconfiguration (drain barrier). One atomic load when no
    /// reconfiguration is running.
    pub fn is_region_blocked(&self, region: RegionId) -> bool {
        if self.blocked_count.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.blocked_regions.read().contains(&region)
    }

    /// Blocks new transactions on `regions` for the duration of a
    /// reconfiguration.
    fn block_regions(&self, regions: &[RegionId]) {
        if regions.is_empty() {
            return;
        }
        let mut blocked = self.blocked_regions.write();
        for r in regions {
            blocked.insert(*r);
        }
        self.blocked_count.store(blocked.len(), Ordering::Release);
        self.events.record(EventKind::RegionsBlocked {
            count: blocked.len(),
        });
    }

    /// Lifts the drain barrier (all blocked regions at once: promotions and
    /// their log replays have finished by the time this runs).
    fn unblock_all_regions(&self) {
        let mut blocked = self.blocked_regions.write();
        if blocked.is_empty() {
            return;
        }
        let count = blocked.len();
        blocked.clear();
        self.blocked_count.store(0, Ordering::Release);
        self.events.record(EventKind::RegionsUnblocked { count });
    }

    /// Stops the control thread and any background re-replication.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.control_thread.lock().take() {
            let _ = h.join();
        }
        for h in self.rereplication_threads.lock().drain(..) {
            let _ = h.join();
        }
    }

    // ------------------------------------------------------------------
    // Control rounds: lease renewal, clock sync, OAT/GC propagation,
    // failure detection.
    // ------------------------------------------------------------------

    /// Performs one control round on behalf of every live machine. Normally
    /// invoked by the background control thread; tests may call it directly.
    pub fn control_round(&self) {
        let config = self.config_store.read();
        let cm = config.cm;
        // Non-CM duties first: lease renewal (carrying OAT/GC and clock
        // sync). Doing renewals before the expiry check means a live member
        // is never suspected merely because the previous control round was a
        // while ago.
        for &member in &config.members {
            if member == cm || !self.nodes[member.index()].is_alive() {
                continue;
            }
            let ok = self.lease_exchange(member, cm);
            if !ok {
                let elapsed = {
                    let last = self.last_cm_response.lock();
                    Instant::now().duration_since(last[member.index()])
                };
                if elapsed > self.cfg.lease_expiry {
                    // Only cut the round short if the eviction actually
                    // committed a new configuration; a declined attempt (a
                    // partitioned minority member suspecting the CM it
                    // cannot reach) must not starve the CM-side expiry
                    // detection below.
                    if self.initiate_reconfiguration(member, &[cm]) {
                        return;
                    }
                }
            }
        }
        // CM-side duties: update its own OAT entries and detect expired
        // leases.
        let now = Instant::now();
        if self.nodes[cm.index()].is_alive() {
            {
                let mut lease = self.cm_lease.lock();
                lease.oat_local[cm.index()] = self.nodes[cm.index()].oat_local();
                lease.gc_local[cm.index()] = self.nodes[cm.index()].gc_local();
                lease.last_seen[cm.index()] = now;
            }
            let expired: Vec<NodeId> = {
                let lease = self.cm_lease.lock();
                config
                    .members
                    .iter()
                    .copied()
                    .filter(|m| *m != cm)
                    .filter(|m| {
                        now.duration_since(lease.last_seen[m.index()]) > self.cfg.lease_expiry
                    })
                    .collect()
            };
            if !expired.is_empty() {
                self.initiate_reconfiguration(cm, &expired);
            }
        }
    }

    /// One lease renewal from `member` to `cm`: the 3-way handshake carrying
    /// clock synchronization and OAT/GC propagation. Returns whether the
    /// exchange succeeded.
    fn lease_exchange(&self, member: NodeId, cm: NodeId) -> bool {
        if !self.faults.reachable(member, cm) || !self.nodes[cm.index()].is_alive() {
            return false;
        }
        let member_node = &self.nodes[member.index()];
        let cm_node = &self.nodes[cm.index()];
        // Request: member -> CM, carrying OAT_local and GC_local.
        member_node.stats().record(Verb::Rpc, 64);
        let oat_local = member_node.oat_local();
        let gc_local_of_member = member_node.gc_local();
        let (oat_cm, gc_cm) = {
            let mut lease = self.cm_lease.lock();
            lease.last_seen[member.index()] = Instant::now();
            lease.oat_local[member.index()] = oat_local;
            lease.gc_local[member.index()] = gc_local_of_member;
            let config = self.config_store.read();
            let live: Vec<usize> = config
                .members
                .iter()
                .filter(|m| self.nodes[m.index()].is_alive())
                .map(|m| m.index())
                .collect();
            let oat_cm = live.iter().map(|&i| lease.oat_local[i]).min().unwrap_or(0);
            let gc_cm = live.iter().map(|&i| lease.gc_local[i]).min().unwrap_or(0);
            (oat_cm, gc_cm)
        };
        // Clock synchronization piggybacked on the lease exchange, subject to
        // the sampling filter used to emulate larger clusters (Figure 17).
        let t_send = member_node.clock().local_clock().now_ns();
        let master_time = cm_node.clock().serve_master_time();
        let t_recv = member_node.clock().local_clock().now_ns();
        // Response: CM -> member.
        cm_node.stats().record(Verb::Rpc, 64);
        member_node.note_oat_cm(oat_cm);
        member_node.note_gc(gc_cm);
        // The CM learns the global values too (its own lease with itself).
        self.nodes[cm.index()].note_oat_cm(oat_cm);
        self.nodes[cm.index()].note_gc(gc_cm);
        if let Ok(t_cm) = master_time {
            let count = self.sync_counter[member.index()].fetch_add(1, Ordering::Relaxed);
            if count.is_multiple_of(self.cfg.sync_sampling_ratio as u64) {
                member_node.clock().record_sync(SyncSample {
                    t_send,
                    t_cm,
                    t_recv,
                });
            }
        }
        let mut last = self.last_cm_response.lock();
        last[member.index()] = Instant::now();
        true
    }

    // ------------------------------------------------------------------
    // Reconfiguration and clock failover (Figure 6).
    // ------------------------------------------------------------------

    /// Initiates a reconfiguration removing `suspected` nodes, with
    /// `initiator` becoming the new CM if the old CM is among the removed.
    /// Returns whether a new configuration was committed — `false` when the
    /// attempt was declined (no quorum, nothing failed, lost the CAS race,
    /// or another reconfiguration already in progress).
    pub fn initiate_reconfiguration(&self, initiator: NodeId, suspected: &[NodeId]) -> bool {
        let _guard = match self.reconfig_lock.try_lock() {
            Some(g) => g,
            None => return false, // another reconfiguration is already in progress
        };
        let config = self.config_store.read();
        // Precise membership: a new configuration can only be committed by a
        // node that can reach a majority of the current one (the paper's
        // reconfiguration protocol collects acks from a majority before the
        // new configuration takes effect). Without this check, a
        // minority-partitioned node — whose own lease exchanges with the CM
        // are failing — would "suspect" the healthy majority and evict it.
        let reachable = config
            .members
            .iter()
            .filter(|&&m| {
                m == initiator
                    || (self.nodes[m.index()].is_alive() && self.faults.reachable(initiator, m))
            })
            .count();
        if reachable * 2 <= config.members.len() {
            return false;
        }
        let mut failed: Vec<NodeId> = suspected
            .iter()
            .copied()
            .filter(|n| config.contains(*n))
            .collect();
        // Also sweep in any other node that is already known dead.
        for &m in &config.members {
            if !self.nodes[m.index()].is_alive() && !failed.contains(&m) {
                failed.push(m);
            }
        }
        if failed.is_empty() {
            return false;
        }
        for &f in &failed {
            self.events.record(EventKind::Suspected(f));
            let handle = &self.nodes[f.index()];
            self.faults.kill_with(f, || handle.mark_dead());
        }
        // Drain barrier: block new transactions on every region the failed
        // nodes participate in. The barrier lifts (via the guard, so every
        // exit path unblocks) once promotions and their log replays are
        // done; in-flight transactions against a dead primary abort
        // retryably in the meantime.
        let affected: Vec<RegionId> = {
            let placement = self.placement.read();
            placement
                .regions()
                .into_iter()
                .filter(|r| {
                    placement
                        .assignment(*r)
                        .is_some_and(|a| failed.iter().any(|f| a.involves(*f)))
                })
                .collect()
        };
        self.block_regions(&affected);
        struct UnblockGuard<'a>(&'a Cluster);
        impl Drop for UnblockGuard<'_> {
            fn drop(&mut self) {
                self.0.unblock_all_regions();
            }
        }
        let unblock = UnblockGuard(self);
        let new_members: Vec<NodeId> = config
            .members
            .iter()
            .copied()
            .filter(|m| !failed.contains(m))
            .collect();
        if new_members.is_empty() {
            return false;
        }
        let cm_failed = failed.contains(&config.cm);
        let new_cm = if cm_failed { initiator } else { config.cm };
        let new_config =
            match self
                .config_store
                .compare_and_swap(config.epoch, new_members.clone(), new_cm)
            {
                Ok(c) => c,
                Err(_) => return false, // lost the race; the winner handles recovery
            };

        if cm_failed {
            self.clock_failover(&new_config, &failed);
        }
        // Leases restart with the new configuration: every member is granted
        // a fresh lease so the new CM does not immediately suspect survivors
        // whose renewals were delayed by the reconfiguration itself.
        {
            let now = Instant::now();
            let mut lease = self.cm_lease.lock();
            for t in lease.last_seen.iter_mut() {
                *t = now;
            }
            let mut last = self.last_cm_response.lock();
            for t in last.iter_mut() {
                *t = now;
            }
        }
        self.events.record(EventKind::ConfigCommitted {
            epoch: new_config.epoch,
            cm: new_config.cm,
        });
        self.hooks.read().on_config_committed(&new_config);

        // Placement updates: promote backups for regions that lost their
        // primary, then restore redundancy in the background.
        let mut promotions = Vec::new();
        {
            let mut placement = self.placement.write();
            for &f in &failed {
                promotions.extend(placement.remove_node(f));
            }
        }
        for (region, new_primary) in &promotions {
            // The new primary rebuilds allocator state by scanning headers.
            if let Some(replica) = self.nodes[new_primary.index()].regions().get(*region) {
                replica.rebuild_allocation_state();
            }
            self.events.record(EventKind::RegionPromoted {
                region: *region,
                new_primary: *new_primary,
            });
            self.hooks.read().on_region_promoted(*region, *new_primary);
        }
        // Promotions (and their redo-log replays, run by the hook above) are
        // complete: lift the drain barrier before the paced background
        // re-replication starts, so availability is restored as soon as
        // every affected region has a live primary again.
        drop(unblock);
        self.spawn_rereplication(new_config);
        true
    }

    /// The clock failover protocol of Figure 6, run by the new CM.
    fn clock_failover(&self, new_config: &ConfigRecord, failed: &[NodeId]) {
        let new_cm = new_config.cm;
        let cm_node = &self.nodes[new_cm.index()];
        // DISABLE CLOCK on the new CM.
        self.events.record(EventKind::ClockDisabled);
        cm_node.clock().disable();
        let mut ff = cm_node.clock().update_ff_from_time();
        // NEW-CONFIG to all non-CMs: disable clocks, collect FF.
        for &m in &new_config.members {
            if m == new_cm {
                continue;
            }
            if self.faults.reachable(new_cm, m) && self.nodes[m.index()].is_alive() {
                cm_node.stats().record(Verb::Rpc, 64);
                let node = &self.nodes[m.index()];
                node.clock().disable();
                let node_ff = node.clock().update_ff_from_time();
                ff = ff.max(node_ff);
                self.nodes[m.index()].stats().record(Verb::Rpc, 64);
            }
        }
        // LEASE EXPIRY WAIT: only needed if a non-CM failed too (the old CM's
        // lease has certainly expired if only the CM failed).
        let non_cm_failed = failed.iter().any(|f| {
            // "old CM" is whatever CM the previous configuration had; every
            // failed node that is not the previous CM counts.
            *f != self.previous_cm_guess(new_config)
        });
        if non_cm_failed {
            std::thread::sleep(self.cfg.lease_expiry);
        }
        // Advance FF once more with the CM's own time after the wait.
        ff = ff.max(cm_node.clock().update_ff_from_time());
        // ADVANCE: propagate FF so time moves forward even if the new CM
        // fails right after enabling its clock.
        for &m in &new_config.members {
            if m == new_cm {
                continue;
            }
            if self.faults.reachable(new_cm, m) && self.nodes[m.index()].is_alive() {
                cm_node.stats().record(Verb::Rpc, 64);
                self.nodes[m.index()].clock().raise_ff(ff);
                // Non-CMs drop all previous synchronization state and wait
                // for their first sync against the new master.
                self.nodes[m.index()].clock().become_slave();
            }
        }
        // ENABLE CLOCK at [FF, FF] on the new CM.
        cm_node.clock().become_master_at(ff);
        cm_node.clock().enable();
        self.events.record(EventKind::ClockEnabled { ff });
    }

    /// Best-effort guess of the CM of the previous configuration (used only
    /// to decide whether the lease-expiry wait may be skipped).
    fn previous_cm_guess(&self, new_config: &ConfigRecord) -> NodeId {
        // The previous CM is the lowest-numbered node that is not in the new
        // configuration but was initially a member, falling back to the new
        // CM if nothing matches (conservative: forces the wait).
        for i in 0..self.cfg.nodes as u32 {
            let id = NodeId(i);
            if !new_config.contains(id) {
                return id;
            }
        }
        new_config.cm
    }

    /// Spawns paced background re-replication restoring the replication
    /// factor of under-replicated regions.
    fn spawn_rereplication(&self, config: ConfigRecord) {
        let under: Vec<(RegionId, usize)> =
            self.placement.read().under_replicated(self.cfg.replication);
        if under.is_empty() {
            self.events.record(EventKind::RereplicationComplete);
            return;
        }
        let nodes = self.nodes.clone();
        let events = self.events.clone();
        let pace = self.cfg.rereplication_pace;
        // The placement metadata is updated inline (it is cheap); only the
        // data copy — the part the paper paces to protect foreground work —
        // runs on the background thread.
        let mut new_backups: Vec<(RegionId, NodeId)> = Vec::new();
        {
            let mut placement = self.placement.write();
            for (region, _count) in &under {
                let assignment = match placement.assignment(*region) {
                    Some(a) => a.clone(),
                    None => continue,
                };
                // Pick the first live member not already holding a replica.
                let candidate = config
                    .members
                    .iter()
                    .copied()
                    .find(|m| self.nodes[m.index()].is_alive() && !assignment.involves(*m));
                if let Some(backup) = candidate {
                    placement.add_backup(*region, backup);
                    new_backups.push((*region, backup));
                }
            }
        }
        if new_backups.is_empty() {
            self.events.record(EventKind::RereplicationComplete);
            return;
        }
        let placement_snapshot = self.placement.read().clone();
        let hooks = Arc::clone(&*self.hooks.read());
        let handle = std::thread::Builder::new()
            .name("farm-rereplication".into())
            .spawn(move || {
                for (region, backup) in new_backups {
                    // Paced copy: clone every allocated object from the
                    // current primary replica into the new backup replica.
                    std::thread::sleep(pace);
                    if let Some(assignment) = placement_snapshot.assignment(region) {
                        let primary = assignment.primary;
                        let src = nodes[primary.index()].regions().ensure(region);
                        let dst = nodes[backup.index()].regions().ensure(region);
                        let slab_count = src.slab_count() as u16;
                        let mut bytes_copied = 0usize;
                        for slab_idx in 0..slab_count {
                            if let Some(slab) = src.slab(slab_idx) {
                                let dst_slab = dst.ensure_slab(slab_idx, slab.object_size());
                                for slot_idx in 0..slab.capacity() as u32 {
                                    if let (Ok(s), Ok(d)) =
                                        (slab.slot(slot_idx), dst_slab.slot(slot_idx))
                                    {
                                        let h = s.header_snapshot();
                                        if h.allocated {
                                            let data = s.raw_data();
                                            bytes_copied += data.len() + 16;
                                            d.initialize(h.ts, data);
                                        }
                                    }
                                }
                            }
                        }
                        // The copy travels as bulk one-sided writes from the
                        // current primary to the new backup.
                        if bytes_copied > 0 {
                            nodes[primary.index()]
                                .stats()
                                .record(Verb::RdmaWrite, bytes_copied);
                        }
                        // Bring the new backup's allocator metadata in line
                        // with the copied headers.
                        dst.rebuild_allocation_state();
                        // Log catch-up: commits that early-acked against the
                        // old replica set while the copy was running live
                        // only in the untruncated redo logs — the engine
                        // replays them onto the new backup.
                        hooks.on_backup_rereplicated(region, backup);
                    }
                    events.record(EventKind::Rereplicated {
                        region,
                        new_backup: backup,
                    });
                }
                events.record(EventKind::RereplicationComplete);
            })
            .expect("spawn re-replication thread");
        self.rereplication_threads.lock().push(handle);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.control_thread.lock().take() {
            let _ = h.join();
        }
        for h in self.rereplication_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_clock::TsMode;

    #[test]
    fn start_enables_all_clocks() {
        let cluster = Cluster::start(ClusterConfig::test(3));
        for node in cluster.nodes() {
            assert!(
                node.clock().is_enabled(),
                "clock of {:?} not enabled",
                node.id()
            );
            let (ts, _) = node.clock().get_ts(TsMode::NonStrictRead);
            assert!(ts.as_nanos() > 0);
        }
        assert_eq!(cluster.current_config().epoch, 1);
        assert_eq!(cluster.current_config().cm, NodeId(0));
    }

    #[test]
    fn placement_covers_all_nodes() {
        let cluster = Cluster::start(ClusterConfig::test(4));
        assert_eq!(cluster.regions().len(), 4);
        for region in cluster.regions() {
            let replicas = cluster.replicas_of(region);
            assert_eq!(replicas.len(), 3);
        }
        assert_eq!(cluster.primaries_on(NodeId(2)).len(), 1);
    }

    #[test]
    fn oat_and_gc_propagate_through_lease_rounds() {
        let cluster = Cluster::start(ClusterConfig::test(3));
        for _ in 0..4 {
            cluster.control_round();
        }
        for node in cluster.nodes() {
            assert!(
                node.gc_local() > 0,
                "GC_local never propagated to {:?}",
                node.id()
            );
            assert!(
                node.gc_safe_point() > 0,
                "GC never propagated to {:?}",
                node.id()
            );
            // The GC safe point can never exceed OAT_local of any node.
            assert!(node.gc_safe_point() <= node.oat_local());
        }
    }

    #[test]
    fn gc_safe_point_respects_active_transactions() {
        let cluster = Cluster::start(ClusterConfig::test(3));
        // Node 1 reports an old active transaction at ts=1.
        cluster
            .node(NodeId(1))
            .set_oat_provider(Arc::new(|| Some(1)));
        for _ in 0..4 {
            cluster.control_round();
        }
        for node in cluster.nodes() {
            assert!(
                node.gc_safe_point() <= 1,
                "GC advanced past an active transaction"
            );
        }
    }

    #[test]
    fn killing_a_non_cm_triggers_reconfiguration_without_clock_disable() {
        let mut cfg = ClusterConfig::test(4);
        cfg.lease_expiry = Duration::from_millis(1);
        let cluster = Cluster::start(cfg);
        cluster.kill(NodeId(2));
        std::thread::sleep(Duration::from_millis(3));
        for _ in 0..4 {
            cluster.control_round();
        }
        let config = cluster.current_config();
        assert_eq!(config.epoch, 2);
        assert!(!config.contains(NodeId(2)));
        assert_eq!(config.cm, NodeId(0));
        // No clock failover events.
        let events = cluster.events().snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Suspected(n) if n == NodeId(2))));
        assert!(!events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ClockDisabled)));
        // Clocks still enabled everywhere that survived.
        assert!(cluster.node(NodeId(0)).clock().is_enabled());
        assert!(cluster.node(NodeId(1)).clock().is_enabled());
    }

    #[test]
    fn killing_the_cm_fails_over_the_clock_master() {
        let mut cfg = ClusterConfig::test(4);
        cfg.lease_expiry = Duration::from_millis(1);
        let cluster = Cluster::start(cfg);
        // Take a timestamp before the failure to check monotonicity across
        // the failover.
        let before = cluster.node(NodeId(1)).clock().get_ts(TsMode::StrictWait).0;
        cluster.kill(NodeId(0));
        std::thread::sleep(Duration::from_millis(3));
        for _ in 0..6 {
            cluster.control_round();
        }
        let config = cluster.current_config();
        assert_eq!(config.epoch, 2);
        assert!(!config.contains(NodeId(0)));
        assert_ne!(config.cm, NodeId(0));
        let events = cluster.events().snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ClockDisabled)));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ClockEnabled { .. })));
        // The new CM serves master time and timestamps remain monotonic.
        let new_cm = config.cm;
        assert!(cluster.node(new_cm).clock().is_master());
        let after = cluster.node(new_cm).clock().get_ts(TsMode::StrictWait).0;
        assert!(after > before, "global time went backwards across failover");
        // Survivors re-enabled after syncing with the new master.
        for &m in &config.members {
            assert!(cluster.node(m).clock().is_enabled());
        }
    }

    #[test]
    fn primary_failure_promotes_backup_and_rereplicates() {
        let mut cfg = ClusterConfig::test(4);
        cfg.lease_expiry = Duration::from_millis(1);
        let cluster = Cluster::start(cfg);
        // Region 1's primary is node 1.
        let region = RegionId(1);
        assert_eq!(cluster.primary_of(region), Some(NodeId(1)));
        // Put an object on the primary and both backups (as a commit would).
        for &replica in &cluster.replicas_of(region) {
            let r = cluster.node(replica).regions().ensure(region);
            let addr = r.allocate(64).unwrap();
            r.slot(addr)
                .unwrap()
                .initialize(7, bytes::Bytes::from_static(b"payload"));
        }
        cluster.kill(NodeId(1));
        std::thread::sleep(Duration::from_millis(3));
        for _ in 0..4 {
            cluster.control_round();
        }
        let new_primary = cluster.primary_of(region).unwrap();
        assert_ne!(new_primary, NodeId(1));
        let events = cluster.events().snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RegionPromoted { region: r, .. } if r == region)));
        // Wait for re-replication to finish.
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if cluster
                .events()
                .snapshot()
                .iter()
                .any(|e| matches!(e.kind, EventKind::RereplicationComplete))
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let replicas = cluster.replicas_of(region);
        assert_eq!(
            replicas.len(),
            3,
            "replication factor not restored: {replicas:?}"
        );
        assert!(!replicas.contains(&NodeId(1)));
        // The new backup received the data.
        let new_backup = *replicas.last().unwrap();
        let replica = cluster.node(new_backup).regions().ensure(region);
        let (total, free) = replica.occupancy();
        assert!(total > free, "no objects copied to the new backup");
    }

    #[test]
    fn reconfiguration_blocks_then_unblocks_affected_regions() {
        let mut cfg = ClusterConfig::test(4);
        cfg.lease_expiry = Duration::from_millis(1);
        let cluster = Cluster::start(cfg);
        cluster.kill(NodeId(1));
        std::thread::sleep(Duration::from_millis(3));
        for _ in 0..4 {
            cluster.control_round();
        }
        // The barrier is transient: raised at suspicion, lifted after the
        // promotions. Afterwards no region may remain blocked.
        for region in cluster.regions() {
            assert!(
                !cluster.is_region_blocked(region),
                "{region:?} still blocked after reconfiguration"
            );
        }
        let events = cluster.events().snapshot();
        let blocked_at = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::RegionsBlocked { count } if count > 0))
            .expect("drain barrier raised");
        let unblocked_at = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::RegionsUnblocked { count } if count > 0))
            .expect("drain barrier lifted");
        assert!(blocked_at < unblocked_at);
        // The barrier lifts before re-replication completes (availability is
        // restored at promotion time, not at full-redundancy time).
        let promoted_at = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::RegionPromoted { .. }))
            .expect("promotion recorded");
        assert!(promoted_at < unblocked_at);
    }

    #[test]
    fn kill_is_atomic_across_fault_plane_and_node_handle() {
        let cluster = Cluster::start(ClusterConfig::test(3));
        cluster.kill(NodeId(2));
        assert!(cluster.faults().is_killed(NodeId(2)));
        assert!(!cluster.node(NodeId(2)).is_alive());
    }

    #[test]
    fn concurrent_reconfigurations_do_not_conflict() {
        let mut cfg = ClusterConfig::test(5);
        cfg.lease_expiry = Duration::from_millis(1);
        let cluster = Cluster::start(cfg);
        cluster.kill(NodeId(3));
        cluster.kill(NodeId(4));
        std::thread::sleep(Duration::from_millis(3));
        for _ in 0..6 {
            cluster.control_round();
        }
        let config = cluster.current_config();
        assert!(!config.contains(NodeId(3)));
        assert!(!config.contains(NodeId(4)));
        assert!(config.members.len() == 3);
    }

    #[test]
    fn minority_partitioned_node_cannot_evict_the_majority() {
        let cluster = Cluster::start(ClusterConfig::test(5));
        // Node 4 is cut off from everyone else. From its point of view the
        // CM's lease has expired, so it tries to evict the CM — but it can
        // only reach 1 of 5 members and must not commit a configuration.
        cluster.faults().partition(vec![(NodeId(4), 1)]);
        cluster.initiate_reconfiguration(NodeId(4), &[NodeId(0)]);
        let config = cluster.current_config();
        assert_eq!(config.epoch, 1, "minority node committed a configuration");
        assert!(config.contains(NodeId(0)));
        assert!(cluster.node(NodeId(0)).is_alive());
        assert!(cluster.node(NodeId(4)).is_alive());
        // The majority side, which can reach 4 of 5 members, evicts the
        // partitioned node as usual.
        cluster.initiate_reconfiguration(NodeId(0), &[NodeId(4)]);
        let config = cluster.current_config();
        assert_eq!(config.epoch, 2);
        assert!(!config.contains(NodeId(4)));
        assert!(!cluster.node(NodeId(4)).is_alive());
    }
}
