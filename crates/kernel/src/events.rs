//! Cluster event log, used by the availability experiments (Table 1 and
//! Figure 18) to measure clock-disable windows, recovery times and
//! re-replication times.

use std::sync::Arc;
use std::time::Instant;

use farm_memory::RegionId;
use farm_net::NodeId;
use parking_lot::Mutex;

/// The kinds of control-plane events worth timestamping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A node was suspected to have failed (lease expired / unreachable).
    Suspected(NodeId),
    /// Clocks were disabled on the (new) CM as part of clock failover.
    ClockDisabled,
    /// Clocks were re-enabled with the given fast-forward value.
    ClockEnabled {
        /// Fast-forward value global time resumed from.
        ff: u64,
    },
    /// A new configuration was committed.
    ConfigCommitted {
        /// The new configuration's epoch.
        epoch: u64,
        /// The new configuration manager.
        cm: NodeId,
    },
    /// A backup was promoted to primary for a region.
    RegionPromoted {
        /// The affected region.
        region: RegionId,
        /// The new primary.
        new_primary: NodeId,
    },
    /// Re-replication of a region to a new backup completed.
    Rereplicated {
        /// The affected region.
        region: RegionId,
        /// The new backup.
        new_backup: NodeId,
    },
    /// All regions affected by the last failure are back to full redundancy.
    RereplicationComplete,
    /// New transactions on the regions of suspected nodes were blocked at
    /// the start of a reconfiguration (the drain barrier).
    RegionsBlocked {
        /// How many regions were blocked.
        count: usize,
    },
    /// The drain barrier was lifted: promotions (and their log replays)
    /// finished and the affected regions accept transactions again.
    RegionsUnblocked {
        /// How many regions were unblocked.
        count: usize,
    },
    /// Survivors resolved the in-flight transactions a dead coordinator left
    /// behind: decided (early-acked) transactions were rolled forward from
    /// the replicated redo logs and the coordinator's truncation watermark
    /// was force-delivered.
    OrphansRecovered {
        /// The dead coordinator.
        coordinator: NodeId,
        /// Decided transactions rolled forward (locks released).
        rolled_forward: usize,
    },
    /// A freshly re-replicated backup was caught up from the untruncated
    /// redo logs (commits that raced the state copy).
    LogCatchUp {
        /// The affected region.
        region: RegionId,
        /// The new backup that was caught up.
        new_backup: NodeId,
        /// Redo-log intents replayed onto it.
        intents: usize,
    },
}

/// A timestamped event.
#[derive(Debug, Clone)]
pub struct ClusterEvent {
    /// When the event happened (host monotonic time).
    pub at: Instant,
    /// What happened.
    pub kind: EventKind,
}

/// Shared, append-only event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<Mutex<Vec<ClusterEvent>>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event stamped "now".
    pub fn record(&self, kind: EventKind) {
        self.inner.lock().push(ClusterEvent {
            at: Instant::now(),
            kind,
        });
    }

    /// Returns a copy of all events recorded so far.
    pub fn snapshot(&self) -> Vec<ClusterEvent> {
        self.inner.lock().clone()
    }

    /// Clears the log (between benchmark phases).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Time between the first event matching `from` and the first event
    /// matching `to` that occurs after it, if both exist.
    pub fn span<F, T>(&self, from: F, to: T) -> Option<std::time::Duration>
    where
        F: Fn(&EventKind) -> bool,
        T: Fn(&EventKind) -> bool,
    {
        let events = self.inner.lock();
        let start = events.iter().find(|e| from(&e.kind))?.at;
        let end = events.iter().find(|e| e.at >= start && to(&e.kind))?.at;
        Some(end.duration_since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let log = EventLog::new();
        log.record(EventKind::Suspected(NodeId(1)));
        log.record(EventKind::ClockDisabled);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Suspected(NodeId(1)));
        log.clear();
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn span_measures_between_matching_events() {
        let log = EventLog::new();
        log.record(EventKind::ClockDisabled);
        std::thread::sleep(std::time::Duration::from_millis(2));
        log.record(EventKind::ClockEnabled { ff: 5 });
        let d = log
            .span(
                |k| matches!(k, EventKind::ClockDisabled),
                |k| matches!(k, EventKind::ClockEnabled { .. }),
            )
            .unwrap();
        assert!(d.as_millis() >= 1);
        assert!(log
            .span(|k| matches!(k, EventKind::RereplicationComplete), |_| true)
            .is_none());
    }
}
