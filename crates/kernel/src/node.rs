//! Per-machine state bundle: clock, memory, statistics and GC watermarks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use arc_swap::ArcSwap;
use farm_clock::NodeClock;
use farm_memory::{OldVersionStore, RegionStore};
use farm_net::{NetStats, NodeId};

/// The role a node plays in the current configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Configuration manager (and clock master).
    ConfigManager,
    /// Ordinary member.
    Member,
}

/// Callback with which the transaction engine reports the read timestamp of
/// the oldest transaction currently executing with this node as coordinator
/// (`None` when there are no active transactions).
pub type OatProvider = Arc<dyn Fn() -> Option<u64> + Send + Sync>;

/// One simulated machine: its clock subsystem, hosted region replicas,
/// old-version storage, network statistics, and the OAT / GC watermarks
/// propagated by the lease traffic (Figure 9).
pub struct NodeHandle {
    id: NodeId,
    clock: Arc<NodeClock>,
    regions: Arc<RegionStore>,
    old_versions: Arc<OldVersionStore>,
    stats: Arc<NetStats>,
    /// Swapped once at engine start (and by tests); read on every control
    /// round, so lookups are a wait-free snapshot load rather than a lock.
    oat_provider: ArcSwap<Option<OatProvider>>,
    /// `GC_local` (Figure 9): the last `OAT_CM` received; stale-snapshot slave
    /// transactions with read timestamps below this are rejected.
    gc_local: AtomicU64,
    /// `GC` (Figure 9): the global GC safe point; old-version blocks with GC
    /// time below this may be reclaimed and empty slabs reused.
    gc_global: AtomicU64,
    alive: AtomicBool,
}

impl NodeHandle {
    /// Creates the per-machine bundle.
    pub fn new(
        id: NodeId,
        clock: Arc<NodeClock>,
        regions: Arc<RegionStore>,
        old_versions: Arc<OldVersionStore>,
        stats: Arc<NetStats>,
    ) -> Self {
        NodeHandle {
            id,
            clock,
            regions,
            old_versions,
            stats,
            oat_provider: ArcSwap::from_pointee(None),
            gc_local: AtomicU64::new(0),
            gc_global: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        }
    }

    /// This machine's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The machine's clock subsystem.
    pub fn clock(&self) -> &Arc<NodeClock> {
        &self.clock
    }

    /// Region replicas hosted by this machine.
    pub fn regions(&self) -> &Arc<RegionStore> {
        &self.regions
    }

    /// Old-version storage of this machine.
    pub fn old_versions(&self) -> &Arc<OldVersionStore> {
        &self.old_versions
    }

    /// Network statistics of this machine.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Registers the transaction engine's OAT provider.
    pub fn set_oat_provider(&self, provider: OatProvider) {
        self.oat_provider.store(Arc::new(Some(provider)));
    }

    /// `OAT_local`: the minimum of the current interval's lower bound and the
    /// read timestamp of the oldest active local transaction.
    pub fn oat_local(&self) -> u64 {
        let lower = self.clock.time_unchecked().map(|i| i.lower).unwrap_or(0);
        let oldest_tx = self.oat_provider.load().as_ref().and_then(|p| p());
        match oldest_tx {
            Some(ts) => lower.min(ts),
            None => lower,
        }
    }

    /// Receives `OAT_CM` from a lease response: becomes the new `GC_local`.
    pub fn note_oat_cm(&self, oat_cm: u64) {
        self.gc_local.fetch_max(oat_cm, Ordering::AcqRel);
    }

    /// Receives the global `GC` value from a lease response.
    pub fn note_gc(&self, gc: u64) {
        self.gc_global.fetch_max(gc, Ordering::AcqRel);
    }

    /// `GC_local`: stale snapshot (slave) reads below this are rejected.
    pub fn gc_local(&self) -> u64 {
        self.gc_local.load(Ordering::Acquire)
    }

    /// The global GC safe point: old versions below this may be reclaimed.
    pub fn gc_safe_point(&self) -> u64 {
        self.gc_global.load(Ordering::Acquire)
    }

    /// Whether the machine is alive (its process has not been killed).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Marks the machine as crashed.
    pub fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeHandle")
            .field("id", &self.id)
            .field("alive", &self.is_alive())
            .field("gc_local", &self.gc_local())
            .field("gc", &self.gc_safe_point())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_clock::{ClockConfig, ManualClock, SharedClock};
    use farm_memory::RegionConfig;

    fn handle() -> (Arc<ManualClock>, NodeHandle) {
        let manual = Arc::new(ManualClock::new(1_000));
        let shared: SharedClock = manual.clone();
        let clock = Arc::new(NodeClock::new_master(
            shared,
            ClockConfig {
                drift_bound_ppm: 1_000,
                thread_skew_ns: 0,
                spin_threshold_ns: 1_000,
            },
        ));
        let node = NodeHandle::new(
            NodeId(0),
            clock,
            Arc::new(RegionStore::new(RegionConfig::small())),
            Arc::new(OldVersionStore::small()),
            Arc::new(NetStats::default()),
        );
        (manual, node)
    }

    #[test]
    fn oat_local_without_transactions_is_clock_lower_bound() {
        let (_m, node) = handle();
        assert_eq!(node.oat_local(), 1_000);
    }

    #[test]
    fn oat_local_takes_minimum_with_active_transactions() {
        let (_m, node) = handle();
        node.set_oat_provider(Arc::new(|| Some(400)));
        assert_eq!(node.oat_local(), 400);
        node.set_oat_provider(Arc::new(|| Some(5_000)));
        assert_eq!(node.oat_local(), 1_000);
        node.set_oat_provider(Arc::new(|| None));
        assert_eq!(node.oat_local(), 1_000);
    }

    #[test]
    fn gc_watermarks_are_monotone() {
        let (_m, node) = handle();
        node.note_oat_cm(100);
        node.note_oat_cm(50);
        assert_eq!(node.gc_local(), 100);
        node.note_gc(80);
        node.note_gc(20);
        assert_eq!(node.gc_safe_point(), 80);
    }

    #[test]
    fn alive_flag() {
        let (_m, node) = handle();
        assert!(node.is_alive());
        node.mark_dead();
        assert!(!node.is_alive());
    }
}
