//! # farm-bench — harnesses regenerating the paper's tables and figures
//!
//! Each binary in `src/bin/` reproduces one table or figure of the
//! evaluation (Section 5) at laptop scale and prints the corresponding rows
//! as CSV on stdout. Absolute numbers differ from the paper (the substrate
//! is an in-process simulated cluster, not a 90-machine RDMA testbed); the
//! *shapes* — which system wins, by roughly what factor, where the
//! crossovers are — are what the harnesses are meant to reproduce. See
//! `EXPERIMENTS.md` at the workspace root for the mapping and observed
//! results.
//!
//! This library crate holds the shared driver: closed-loop worker threads
//! executing TPC-C or YCSB against an [`Engine`], with throughput and
//! latency accounting.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_kernel::ClusterConfig;
use farm_workloads::{TpccConfig, TpccDatabase, TpccOutcome, TpccTxKind, YcsbConfig, YcsbDatabase};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one driver run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Committed transactions of the measured kind per second.
    pub throughput: f64,
    /// Total committed transactions (all kinds).
    pub committed: u64,
    /// Total aborted transactions.
    pub aborted: u64,
    /// Median latency of the measured kind, in microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile latency of the measured kind, in microseconds.
    pub latency_p99_us: f64,
    /// Mean commit-time uncertainty wait, in microseconds.
    pub mean_write_wait_us: f64,
    /// Abort rate in [0, 1].
    pub abort_rate: f64,
    /// Network messages per committed transaction (all verbs; batched
    /// commit-protocol messages count once however many objects they carry).
    pub msgs_per_commit: f64,
    /// Logical operations per committed transaction — the same traffic
    /// counted per object. `ops_per_commit / msgs_per_commit` is the mean
    /// batching factor the per-destination fan-out achieves.
    pub ops_per_commit: f64,
    /// Mean objects per LOCK batch over the run.
    pub lock_batch_size: f64,
    /// RDMA-read messages per logical read operation, counting local-bypass
    /// reads (which cost no message) in the denominator: 1.0 when every read
    /// is its own message, dropping below 1.0 as `read_many` / batched
    /// VALIDATE fold many reads into one doorbell-batched message and as the
    /// local-bypass fast path serves reads for free.
    pub msgs_per_read: f64,
    /// Mean objects per `read_many` batch over the run.
    pub read_batch_size: f64,
}

/// Read-message amortization: RDMA-read messages per logical read, where
/// logical reads are the metered read ops plus the `local_bypass_reads`
/// served without any message (see [`RunResult::msgs_per_read`]).
pub fn msgs_per_read(net_delta: &farm_net::NetStatsSnapshot, local_bypass_reads: u64) -> f64 {
    let reads = net_delta.ops(farm_net::Verb::RdmaRead) + local_bypass_reads;
    if reads == 0 {
        0.0
    } else {
        net_delta.count(farm_net::Verb::RdmaRead) as f64 / reads as f64
    }
}

/// Sums the per-node network statistics into one cluster-wide snapshot.
pub fn cluster_net_snapshot(engine: &Arc<Engine>) -> farm_net::NetStatsSnapshot {
    engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().snapshot())
        .fold(farm_net::NetStatsSnapshot::default(), |acc, s| {
            acc.merged(&s)
        })
}

/// Builds a default cluster configuration for benchmarks: `nodes` machines,
/// 3-way replication (or fewer on tiny clusters), background control thread
/// enabled.
pub fn bench_cluster(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        replication: nodes.min(3),
        regions_per_node: 2,
        auto_control: true,
        control_interval: Duration::from_micros(500),
        ..ClusterConfig::default()
    }
}

/// Runs the full TPC-C mix with `threads` closed-loop worker threads spread
/// over the cluster for `duration`, measuring neworder throughput and
/// latency.
pub fn run_tpcc(
    engine: &Arc<Engine>,
    db: &Arc<TpccDatabase>,
    threads: usize,
    duration: Duration,
    opts: TxOptions,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let neworders = Arc::new(AtomicU64::new(0));
    let nodes = engine.nodes().len() as u32;
    let mut handles = Vec::new();
    let latencies: Arc<parking_lot::Mutex<Vec<u64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    for t in 0..threads {
        let engine = Arc::clone(engine);
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        let aborted = Arc::clone(&aborted);
        let neworders = Arc::clone(&neworders);
        let latencies = Arc::clone(&latencies);
        handles.push(std::thread::spawn(move || {
            let node = NodeId(t as u32 % nodes);
            let mut rng = StdRng::seed_from_u64(0x5EED + t as u64);
            let mut local_lat = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let kind = TpccTxKind::sample(&mut rng);
                let start = Instant::now();
                match db.execute(node, kind, opts, &mut rng) {
                    Ok(TpccOutcome::Committed(k)) => {
                        committed.fetch_add(1, Ordering::Relaxed);
                        if k == TpccTxKind::NewOrder {
                            neworders.fetch_add(1, Ordering::Relaxed);
                            local_lat.push(start.elapsed().as_nanos() as u64);
                        }
                    }
                    Ok(TpccOutcome::Aborted(_)) => {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            latencies.lock().extend(local_lat);
            let _ = &engine;
        }));
    }
    let before = engine.aggregate_stats();
    let net_before = cluster_net_snapshot(engine);
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let after = engine.aggregate_stats();
    let delta = after.delta(&before);
    let net_delta = cluster_net_snapshot(engine).delta(&net_before);
    let mut lat = latencies.lock().clone();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            0.0
        } else {
            let idx = ((lat.len() - 1) as f64 * p) as usize;
            lat[idx] as f64 / 1_000.0
        }
    };
    let c = committed.load(Ordering::Relaxed);
    let a = aborted.load(Ordering::Relaxed);
    let commits = delta.commits().max(1);
    RunResult {
        throughput: neworders.load(Ordering::Relaxed) as f64 / duration.as_secs_f64(),
        committed: c,
        aborted: a,
        latency_p50_us: pct(0.5),
        latency_p99_us: pct(0.99),
        mean_write_wait_us: delta.mean_write_wait_ns() / 1_000.0,
        abort_rate: if c + a == 0 {
            0.0
        } else {
            a as f64 / (c + a) as f64
        },
        msgs_per_commit: net_delta.total_messages() as f64 / commits as f64,
        ops_per_commit: net_delta.total_ops() as f64 / commits as f64,
        lock_batch_size: delta.mean_lock_batch_size(),
        msgs_per_read: msgs_per_read(&net_delta, delta.read_local_bypass),
        read_batch_size: delta.mean_read_batch_size(),
    }
}

/// Runs a YCSB workload with `threads` closed-loop workers for `duration`,
/// returning keys-successfully-operated-on per second (the Figure 15 metric
/// counts every key of a completed scan).
pub fn run_ycsb(
    engine: &Arc<Engine>,
    db: &Arc<YcsbDatabase>,
    threads: usize,
    duration: Duration,
    opts: TxOptions,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let keys_done = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let nodes = engine.nodes().len() as u32;
    let mut handles = Vec::new();
    for t in 0..threads {
        let engine = Arc::clone(engine);
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let keys_done = Arc::clone(&keys_done);
        let committed = Arc::clone(&committed);
        let aborted = Arc::clone(&aborted);
        handles.push(std::thread::spawn(move || {
            let node = NodeId(t as u32 % nodes);
            let mut rng = StdRng::seed_from_u64(0xFACE + t as u64);
            while !stop.load(Ordering::Relaxed) {
                let op = db.next_op(&mut rng);
                match db.execute(node, &op, opts) {
                    Ok(n) => {
                        keys_done.fetch_add(n as u64, Ordering::Relaxed);
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let _ = &engine;
        }));
    }
    let before = engine.aggregate_stats();
    let net_before = cluster_net_snapshot(engine);
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let delta = engine.aggregate_stats().delta(&before);
    let net_delta = cluster_net_snapshot(engine).delta(&net_before);
    let c = committed.load(Ordering::Relaxed);
    let a = aborted.load(Ordering::Relaxed);
    let commits = delta.commits().max(1);
    RunResult {
        throughput: keys_done.load(Ordering::Relaxed) as f64 / duration.as_secs_f64(),
        committed: c,
        aborted: a,
        abort_rate: if c + a == 0 {
            0.0
        } else {
            a as f64 / (c + a) as f64
        },
        msgs_per_commit: net_delta.total_messages() as f64 / commits as f64,
        ops_per_commit: net_delta.total_ops() as f64 / commits as f64,
        lock_batch_size: delta.mean_lock_batch_size(),
        msgs_per_read: msgs_per_read(&net_delta, delta.read_local_bypass),
        read_batch_size: delta.mean_read_batch_size(),
        ..Default::default()
    }
}

/// Convenience: build cluster + engine + TPC-C database for a benchmark.
pub fn tpcc_setup(
    nodes: usize,
    engine_cfg: EngineConfig,
    tpcc_cfg: TpccConfig,
) -> (Arc<Engine>, Arc<TpccDatabase>) {
    let engine = Engine::start_cluster(bench_cluster(nodes), engine_cfg);
    let db = Arc::new(TpccDatabase::load(&engine, tpcc_cfg).expect("load TPC-C"));
    (engine, db)
}

/// Convenience: build cluster + engine + YCSB database for a benchmark.
pub fn ycsb_setup(
    nodes: usize,
    engine_cfg: EngineConfig,
    ycsb_cfg: YcsbConfig,
) -> (Arc<Engine>, Arc<YcsbDatabase>) {
    let engine = Engine::start_cluster(bench_cluster(nodes), engine_cfg);
    let db = Arc::new(YcsbDatabase::load(&engine, ycsb_cfg).expect("load YCSB"));
    (engine, db)
}

/// Standard small TPC-C sizing used by the figure harnesses.
pub fn small_tpcc() -> TpccConfig {
    TpccConfig {
        warehouses_per_node: 4,
        districts_per_warehouse: 8,
        customers_per_district: 32,
        items: 128,
    }
}

/// Reads a duration (seconds) override from the environment, falling back to
/// `default_secs`. All harnesses honor `FARM_BENCH_SECS` so CI can shorten
/// runs.
pub fn bench_duration(default_secs: f64) -> Duration {
    std::env::var("FARM_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Duration::from_secs_f64)
        .unwrap_or_else(|| Duration::from_secs_f64(default_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcc_driver_produces_throughput() {
        let (engine, db) = tpcc_setup(3, EngineConfig::default(), small_tpcc());
        let result = run_tpcc(
            &engine,
            &db,
            2,
            Duration::from_millis(200),
            TxOptions::serializable(),
        );
        assert!(
            result.throughput > 0.0,
            "no neworders committed: {result:?}"
        );
        assert!(result.abort_rate < 0.5);
        engine.cluster().shutdown();
        engine.shutdown();
    }

    #[test]
    fn ycsb_driver_produces_throughput() {
        let (engine, db) = ycsb_setup(
            3,
            EngineConfig::multi_version(),
            YcsbConfig {
                keys: 500,
                value_size: 32,
                ..Default::default()
            },
        );
        let result = run_ycsb(
            &engine,
            &db,
            2,
            Duration::from_millis(200),
            TxOptions::serializable(),
        );
        assert!(result.throughput > 0.0);
        engine.cluster().shutdown();
        engine.shutdown();
    }

    #[test]
    fn bench_duration_env_override() {
        std::env::remove_var("FARM_BENCH_SECS");
        assert_eq!(bench_duration(1.5), Duration::from_secs_f64(1.5));
    }
}
