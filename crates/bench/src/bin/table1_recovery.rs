//! Table 1: recovery statistics — clock disable time, throughput recovery
//! time, and re-replication time — for three failure cases: a non-CM, the
//! CM, and the CM plus a non-CM simultaneously.

use farm_bench::{bench_duration, small_tpcc};
use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_kernel::EventKind;
use farm_workloads::{TpccDatabase, TpccOutcome, TpccTxKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run_case(name: &str, kill: &[u32]) {
    let mut cluster_cfg = farm_bench::bench_cluster(5);
    cluster_cfg.lease_expiry = Duration::from_millis(10);
    cluster_cfg.rereplication_pace = Duration::from_millis(5);
    let engine = Engine::start_cluster(cluster_cfg, EngineConfig::default());
    let db = Arc::new(TpccDatabase::load(&engine, small_tpcc()).expect("load"));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    // Background load from the three surviving nodes (2, 3, 4).
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let node = NodeId(2 + t % 3);
            let mut rng = StdRng::seed_from_u64(t as u64);
            while !stop.load(Ordering::Relaxed) {
                if let Ok(TpccOutcome::Committed(_)) = db.execute(
                    node,
                    TpccTxKind::sample(&mut rng),
                    TxOptions::serializable(),
                    &mut rng,
                ) {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    std::thread::sleep(bench_duration(0.5));
    // Pre-failure throughput over 200 ms.
    let before_count = committed.load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(200));
    let pre_rate = (committed.load(Ordering::Relaxed) - before_count) as f64 / 0.2;
    engine.cluster().events().clear();
    let fail_at = Instant::now();
    for &k in kill {
        engine.cluster().kill(NodeId(k));
    }
    // Wait for recovery: throughput back to >= pre_rate over a 100 ms window.
    let recovery_time;
    loop {
        let c0 = committed.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(100));
        let rate = (committed.load(Ordering::Relaxed) - c0) as f64 / 0.1;
        if rate >= pre_rate * 0.95 {
            recovery_time = fail_at.elapsed();
            break;
        }
        if fail_at.elapsed() > Duration::from_secs(10) {
            recovery_time = fail_at.elapsed();
            break;
        }
    }
    // Wait for re-replication to complete.
    let rerep_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let events = engine.cluster().events().snapshot();
        if events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RereplicationComplete))
            || Instant::now() > rerep_deadline
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let events = engine.cluster().events();
    let clock_disable = events
        .span(
            |k| matches!(k, EventKind::ClockDisabled),
            |k| matches!(k, EventKind::ClockEnabled { .. }),
        )
        .map(|d| d.as_secs_f64() * 1_000.0)
        .unwrap_or(0.0);
    let rerep = events
        .span(
            |k| matches!(k, EventKind::Suspected(_)),
            |k| matches!(k, EventKind::RereplicationComplete),
        )
        .map(|d| d.as_secs_f64() * 1_000.0)
        .unwrap_or(0.0);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    println!(
        "{name},{:.1},{:.0},{:.0}",
        clock_disable,
        recovery_time.as_secs_f64() * 1_000.0,
        rerep
    );
    engine.shutdown();
    engine.cluster().shutdown();
}

fn main() {
    println!("failure,clock_disable_ms,recovery_ms,rereplication_ms");
    run_case("1 non-CM", &[2]);
    run_case("CM", &[0]);
    run_case("CM and 1 non-CM", &[0, 2]);
}
