//! Figure 15: throughput of a mixed scan/update workload as a function of
//! scan length, for BASELINE, single-version FaRMv2 (SV) and the three
//! multi-version policies (MV-BLOCK, MV-ABORT, MV-TRUNCATE) with bounded
//! old-version memory.

use farm_bench::{bench_cluster, bench_duration, run_ycsb};
use farm_core::{Engine, EngineConfig, EngineMode, MvPolicy, TxOptions};
use farm_workloads::{YcsbConfig, YcsbDatabase};
use std::sync::Arc;

fn main() {
    let duration = bench_duration(1.0);
    let systems: Vec<(&str, EngineConfig)> = vec![
        ("BASELINE", EngineConfig::baseline()),
        ("SV", EngineConfig::default()),
        (
            "MV-BLOCK",
            EngineConfig {
                mode: EngineMode::farmv2_multi_version(MvPolicy::Block),
                ..EngineConfig::default()
            },
        ),
        (
            "MV-ABORT",
            EngineConfig {
                mode: EngineMode::farmv2_multi_version(MvPolicy::Abort),
                ..EngineConfig::default()
            },
        ),
        (
            "MV-TRUNCATE",
            EngineConfig {
                mode: EngineMode::farmv2_multi_version(MvPolicy::Truncate),
                ..EngineConfig::default()
            },
        ),
    ];
    println!("system,scan_length,keys_per_s,abort_rate,msgs_per_read");
    for scan_length in [1usize, 10, 100, 1000] {
        for (name, engine_cfg) in &systems {
            let mut cluster_cfg = bench_cluster(3);
            // Bounded old-version memory, as in the paper's 2 GB/server cap.
            cluster_cfg.old_version_max_bytes = 4 * 1024 * 1024;
            let engine = Engine::start_cluster(cluster_cfg, *engine_cfg);
            let db = Arc::new(
                YcsbDatabase::load(
                    &engine,
                    YcsbConfig {
                        keys: 4_000,
                        value_size: 64,
                        read_fraction: 0.5,
                        zipf_theta: 0.0,
                        scan_length,
                        multiget_size: 0,
                    },
                )
                .expect("load"),
            );
            let r = run_ycsb(&engine, &db, 6, duration, TxOptions::serializable());
            println!(
                "{name},{scan_length},{:.0},{:.4},{:.3}",
                r.throughput, r.abort_rate, r.msgs_per_read
            );
            engine.shutdown();
            engine.cluster().shutdown();
        }
    }
}
