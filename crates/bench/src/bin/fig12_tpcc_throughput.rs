//! Figure 12: TPC-C throughput of BASELINE vs FaRMv2 under
//! serializable/SI × strict/non-strict (single-version mode, as in the
//! paper's default TPC-C configuration).

use farm_bench::{bench_duration, run_tpcc, small_tpcc, tpcc_setup};
use farm_core::{EngineConfig, TxOptions};

fn main() {
    let nodes = 3;
    let threads = 6;
    let duration = bench_duration(2.0);
    println!("system,isolation,strict,neworders_per_s,abort_rate,p99_us");
    let configs: Vec<(&str, EngineConfig, TxOptions, &str, &str)> = vec![
        (
            "BASELINE",
            EngineConfig::baseline(),
            TxOptions::serializable(),
            "serializable",
            "strict",
        ),
        (
            "FaRMv2",
            EngineConfig::default(),
            TxOptions::serializable(),
            "serializable",
            "strict",
        ),
        (
            "FaRMv2",
            EngineConfig::default(),
            TxOptions::serializable_non_strict(),
            "serializable",
            "non-strict",
        ),
        (
            "FaRMv2",
            EngineConfig::default(),
            TxOptions::snapshot_isolation(),
            "si",
            "strict",
        ),
        (
            "FaRMv2",
            EngineConfig::default(),
            TxOptions::snapshot_isolation_non_strict(),
            "si",
            "non-strict",
        ),
    ];
    for (name, engine_cfg, opts, iso, strict) in configs {
        let (engine, db) = tpcc_setup(nodes, engine_cfg, small_tpcc());
        let r = run_tpcc(&engine, &db, threads, duration, opts);
        println!(
            "{name},{iso},{strict},{:.0},{:.5},{:.0}",
            r.throughput, r.abort_rate, r.latency_p99_us
        );
        engine.shutdown();
        engine.cluster().shutdown();
    }
}
