//! Figure 17: mean uncertainty wait as a function of the synchronization
//! down-sampling ratio (emulating clusters 1×..10× larger at a fixed
//! aggregate clock-sync rate).

use farm_bench::{bench_duration, run_tpcc, small_tpcc};
use farm_core::{Engine, EngineConfig, TxOptions};
use farm_workloads::TpccDatabase;
use std::sync::Arc;

fn main() {
    let duration = bench_duration(1.0);
    println!("sampling_ratio,mean_uncertainty_wait_us,neworders_per_s");
    for ratio in [1u32, 2, 4, 6, 8, 10] {
        let mut cluster_cfg = farm_bench::bench_cluster(3);
        cluster_cfg.sync_sampling_ratio = ratio;
        let engine = Engine::start_cluster(cluster_cfg, EngineConfig::default());
        let db = Arc::new(TpccDatabase::load(&engine, small_tpcc()).expect("load"));
        let r = run_tpcc(&engine, &db, 6, duration, TxOptions::serializable());
        let mean_wait_us: f64 = engine
            .cluster()
            .nodes()
            .iter()
            .map(|n| n.clock().stats().mean_wait_ns() / 1_000.0)
            .sum::<f64>()
            / 3.0;
        println!("{ratio},{:.2},{:.0}", mean_wait_us, r.throughput);
        engine.shutdown();
        engine.cluster().shutdown();
    }
}
