//! Figure 18: throughput over time (1 ms buckets) across a failure of the
//! CM plus one non-CM, annotated with the suspicion / clock-disable /
//! clock-enable instants.

use farm_bench::small_tpcc;
use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_kernel::EventKind;
use farm_workloads::{TpccDatabase, TpccOutcome, TpccTxKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut cluster_cfg = farm_bench::bench_cluster(5);
    cluster_cfg.lease_expiry = Duration::from_millis(10);
    let engine = Engine::start_cluster(cluster_cfg, EngineConfig::default());
    let db = Arc::new(TpccDatabase::load(&engine, small_tpcc()).expect("load"));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let (db, stop, committed) = (Arc::clone(&db), Arc::clone(&stop), Arc::clone(&committed));
        handles.push(std::thread::spawn(move || {
            let node = NodeId(2 + t % 3);
            let mut rng = StdRng::seed_from_u64(t as u64);
            while !stop.load(Ordering::Relaxed) {
                if let Ok(TpccOutcome::Committed(_)) = db.execute(
                    node,
                    TpccTxKind::sample(&mut rng),
                    TxOptions::serializable(),
                    &mut rng,
                ) {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(300));
    let start = Instant::now();
    let mut samples = Vec::new();
    let mut killed = false;
    while start.elapsed() < Duration::from_millis(300) {
        let c0 = committed.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(1));
        let c1 = committed.load(Ordering::Relaxed);
        samples.push((
            start.elapsed().as_secs_f64() * 1_000.0,
            (c1 - c0) as f64 / 0.001,
        ));
        if !killed && start.elapsed() > Duration::from_millis(50) {
            engine.cluster().events().clear();
            engine.cluster().kill(NodeId(0));
            engine.cluster().kill(NodeId(1));
            killed = true;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    println!("time_ms,txns_per_s");
    for (t, rate) in samples {
        println!("{t:.1},{rate:.0}");
    }
    println!("# events:");
    for e in engine.cluster().events().snapshot() {
        if matches!(
            e.kind,
            EventKind::Suspected(_)
                | EventKind::ClockDisabled
                | EventKind::ClockEnabled { .. }
                | EventKind::ConfigCommitted { .. }
        ) {
            println!("# {:?}", e.kind);
        }
    }
    engine.shutdown();
    engine.cluster().shutdown();
}
