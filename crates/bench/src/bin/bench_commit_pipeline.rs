//! Commit-pipeline latency: serial vs fan-out dispatch under
//! `LatencyModel::datacenter()`.
//!
//! Measures the commit latency of write transactions touching 1 / 2 / 4
//! destination primaries (each region 3-way replicated, so 2 backups per
//! region) with the pre-fan-out serial driver (`DispatchMode::Serial`,
//! every phase pays `Σ latency` over its destinations) against the
//! completion-queue driver (`DispatchMode::Concurrent`, every phase pays
//! `max latency`, and the serializable write-timestamp uncertainty wait
//! overlaps COMMIT-BACKUP replication as in Figure 4 of the paper).
//!
//! With early-ack commit completion (the fan-out default) the measured
//! latency is the **critical path only**: `commit` returns when every
//! COMMIT-BACKUP is acked, installs drain in the background, and TRUNCATE is
//! piggybacked as a watermark on later verbs — the per-row
//! `standalone_truncate_msgs` column must stay 0 under this traffic.
//!
//! A second sweep (`--pipeline-depth N`, default 8) measures single-thread
//! committed-transaction throughput at pipeline depths 1..=N: one worker
//! keeps up to `depth` disjoint write transactions in their critical paths
//! through [`farm_core::CommitPipeline`], so throughput scales toward
//! `depth / max-phase-latency` instead of `1 / commit-latency`.
//!
//! Emits `BENCH_commit_pipeline.json` with p50/p99 commit latencies, the
//! per-phase wall-clock histograms (the overlap evidence: under fan-out the
//! `acquire_write_ts` phase collapses to ~0 and its wait reappears inside
//! `replicate_backups`, bounded by `max` rather than added), the overlapped
//! fraction of the uncertainty wait, the in-flight verb high-water mark,
//! and the pipeline-depth throughput rows.

use std::sync::Arc;
use std::time::Instant;

use farm_bench::bench_duration;
use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, RegionId};
use farm_net::{DispatchMode, LatencyModel, PhaseHistogramSnapshot, PhaseLabel};

/// One measured configuration.
struct Row {
    isolation: &'static str,
    dispatch: &'static str,
    primaries: usize,
    backups: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    write_wait_mean_us: f64,
    overlapped_frac: f64,
    max_inflight: u64,
    /// Standalone TRUNCATE messages sent during the measured window (must
    /// be 0 under fan-out: truncation piggybacks on protocol verbs).
    truncate_standalone: u64,
    /// Piggybacked truncation watermark deliveries during the window.
    truncate_piggybacked: u64,
    phases: Vec<(PhaseLabel, f64, f64, f64)>, // (label, mean, p50, p99) µs
}

/// One pipeline-depth throughput measurement (single worker thread).
struct PipelineRow {
    depth: usize,
    txns_per_sec: f64,
    p50_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_depth: usize = args
        .iter()
        .position(|a| a == "--pipeline-depth")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    // Scale iteration count off the shared duration knob so CI can shorten
    // the run (default ~1.5 s per configuration at datacenter latencies).
    let iters = ((bench_duration(1.5).as_secs_f64() * 200.0) as usize).clamp(30, 2_000);
    let mut rows: Vec<Row> = Vec::new();
    println!("isolation,dispatch,primaries,backups,p50_us,p99_us,mean_us,write_wait_mean_us,overlapped_frac,max_inflight,truncate_standalone,truncate_piggybacked");
    for (iso_name, opts) in [
        ("serializable", TxOptions::serializable()),
        ("snapshot_isolation", TxOptions::snapshot_isolation()),
    ] {
        for (dispatch_name, dispatch) in [
            ("serial", DispatchMode::Serial),
            ("fanout", DispatchMode::Concurrent),
        ] {
            for primaries in [1usize, 2, 4] {
                let row = run_config(iso_name, opts, dispatch_name, dispatch, primaries, iters);
                println!(
                    "{},{},{},{},{:.1},{:.1},{:.1},{:.2},{:.3},{},{},{}",
                    row.isolation,
                    row.dispatch,
                    row.primaries,
                    row.backups,
                    row.p50_us,
                    row.p99_us,
                    row.mean_us,
                    row.write_wait_mean_us,
                    row.overlapped_frac,
                    row.max_inflight,
                    row.truncate_standalone,
                    row.truncate_piggybacked
                );
                rows.push(row);
            }
        }
    }
    let depths: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&d| d <= max_depth)
        .collect();
    println!("pipeline_depth,txns_per_sec,p50_us");
    let pipeline_rows: Vec<PipelineRow> = depths
        .into_iter()
        .map(|depth| {
            let row = run_pipeline_depth(depth);
            println!("{},{:.0},{:.1}", row.depth, row.txns_per_sec, row.p50_us);
            row
        })
        .collect();
    let json = to_json(&rows, &pipeline_rows, iters);
    std::fs::write("BENCH_commit_pipeline.json", &json).expect("write BENCH_commit_pipeline.json");
    eprintln!("wrote BENCH_commit_pipeline.json");
}

/// Single-thread committed-txns/sec at one pipeline depth: one worker keeps
/// `depth` disjoint single-primary write transactions in flight under
/// datacenter latency. Addresses cycle through a pool much larger than the
/// depth, so a reused object's previous commit has long completed (and its
/// install, if still pending, is resolved by helping).
///
/// Depth 1 is the **synchronous baseline** — one `commit()` at a time, the
/// `1 / commit-latency` bound the pipeline exists to break. Transactions
/// are non-strict serializable (read snapshot at the interval lower bound,
/// no begin wait; the commit-time uncertainty wait is unchanged and still
/// overlaps replication), the configuration FaRM uses when per-thread
/// throughput is the goal.
fn run_pipeline_depth(depth: usize) -> PipelineRow {
    let cluster_cfg = ClusterConfig {
        nodes: 6,
        replication: 3,
        regions_per_node: 1,
        auto_control: true,
        control_interval: std::time::Duration::from_micros(500),
        ..ClusterConfig::default()
    };
    let engine_cfg = EngineConfig {
        dispatch: DispatchMode::Concurrent,
        latency: LatencyModel::datacenter(),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(cluster_cfg, engine_cfg);
    let coordinator = NodeId(0);
    let node = engine.node(coordinator);
    let region = pick_regions(&engine, coordinator, 1)[0];

    const POOL: usize = 128;
    let mut setup = node.begin();
    let pool: Vec<Addr> = (0..POOL)
        .map(|_| setup.alloc_in(region, vec![0u8; 64]).unwrap())
        .collect();
    setup.commit().unwrap();
    node.drain_pending_installs();
    let opts = TxOptions::serializable_non_strict();
    // Pre-built payloads: the measured loop clones `Bytes` (refcount) rather
    // than allocating a fresh vector per transaction.
    let payloads: Vec<bytes::Bytes> = (0..16u8).map(|v| bytes::Bytes::from(vec![v; 64])).collect();

    // Warmup.
    let mut pipeline = node.pipeline(depth);
    for &addr in pool.iter().take(2 * depth.max(4)) {
        let mut tx = node.begin_with(opts);
        tx.overwrite(addr, payloads[0].clone()).unwrap();
        pipeline.submit(tx);
    }
    pipeline.drain();

    let duration = bench_duration(1.0);
    let start = Instant::now();
    let mut submitted = 0usize;
    let mut committed = 0u64;
    let mut lat_us: Vec<f64> = Vec::new();
    let mut submit_times: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    while start.elapsed() < duration {
        let addr = pool[submitted % POOL];
        let mut tx = node.begin_with(opts);
        tx.overwrite(addr, payloads[submitted % 16].clone())
            .unwrap();
        submitted += 1;
        if depth == 1 {
            // Synchronous baseline: the thread pays the whole critical path.
            let t = Instant::now();
            if tx.commit().is_ok() {
                committed += 1;
                lat_us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
            }
            continue;
        }
        submit_times.push_back(Instant::now());
        pipeline.submit(tx);
        for result in pipeline.take() {
            let t = submit_times.pop_front().expect("one submit per result");
            if result.is_ok() {
                committed += 1;
                lat_us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
            }
        }
    }
    for result in pipeline.drain() {
        let t = submit_times.pop_front().expect("one submit per result");
        if result.is_ok() {
            committed += 1;
            lat_us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = if lat_us.is_empty() {
        0.0
    } else {
        lat_us[(lat_us.len() - 1) / 2]
    };
    engine.shutdown();
    engine.cluster().shutdown();
    PipelineRow {
        depth,
        txns_per_sec: committed as f64 / elapsed,
        p50_us: p50,
    }
}

/// Picks `primaries` regions with distinct primaries, none of them the
/// coordinator (so every LOCK message is remote).
fn pick_regions(engine: &Arc<Engine>, coordinator: NodeId, primaries: usize) -> Vec<RegionId> {
    let mut chosen: Vec<RegionId> = Vec::new();
    let mut used: Vec<NodeId> = Vec::new();
    for region in engine.cluster().regions() {
        let Some(p) = engine.cluster().primary_of(region) else {
            continue;
        };
        if p == coordinator || used.contains(&p) {
            continue;
        }
        used.push(p);
        chosen.push(region);
        if chosen.len() == primaries {
            break;
        }
    }
    assert_eq!(chosen.len(), primaries, "cluster too small for the sweep");
    chosen
}

fn run_config(
    iso_name: &'static str,
    opts: TxOptions,
    dispatch_name: &'static str,
    dispatch: DispatchMode,
    primaries: usize,
    iters: usize,
) -> Row {
    let cluster_cfg = ClusterConfig {
        nodes: 6,
        replication: 3,
        regions_per_node: 1,
        auto_control: true,
        control_interval: std::time::Duration::from_micros(500),
        ..ClusterConfig::default()
    };
    let engine_cfg = EngineConfig {
        dispatch,
        latency: LatencyModel::datacenter(),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(cluster_cfg, engine_cfg);
    let coordinator = NodeId(0);
    let regions = pick_regions(&engine, coordinator, primaries);
    let backups: std::collections::BTreeSet<NodeId> = regions
        .iter()
        .flat_map(|&r| engine.cluster().replicas_of(r).into_iter().skip(1))
        .collect();

    // Setup: one object per chosen region.
    let node = engine.node(coordinator);
    let mut tx = node.begin_with(opts);
    let addrs: Vec<Addr> = regions
        .iter()
        .map(|&r| tx.alloc_in(r, vec![0u8; 64]).unwrap())
        .collect();
    tx.commit().unwrap();

    // Warmup, then reset the phase/inflight accounting for the measured run.
    for round in 0..10u8 {
        let mut tx = node.begin_with(opts);
        for &a in &addrs {
            tx.write(a, vec![round; 64]).unwrap();
        }
        tx.commit().unwrap();
    }
    for n in engine.nodes() {
        n.handle().stats().reset();
    }
    let stats_before = engine.aggregate_stats();

    let mut lat_us: Vec<f64> = Vec::with_capacity(iters);
    for round in 0..iters {
        let mut tx = node.begin_with(opts);
        for &a in &addrs {
            tx.write(a, vec![round as u8; 64]).unwrap();
        }
        let start = Instant::now();
        tx.commit().unwrap();
        lat_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let mean = lat_us.iter().sum::<f64>() / lat_us.len() as f64;

    let delta = engine.aggregate_stats().delta(&stats_before);
    let phases = cluster_phase_snapshot(&engine);
    let max_inflight = engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().max_inflight())
        .max()
        .unwrap_or(0);
    let phase_rows: Vec<(PhaseLabel, f64, f64, f64)> = farm_net::PHASE_LABELS
        .iter()
        .filter(|&&l| phases.count(l) > 0)
        .map(|&l| {
            (
                l,
                phases.mean_ns(l) / 1_000.0,
                phases.quantile_ns(l, 0.5) as f64 / 1_000.0,
                phases.quantile_ns(l, 0.99) as f64 / 1_000.0,
            )
        })
        .collect();
    let overlapped_frac = if delta.write_wait_ns == 0 {
        0.0
    } else {
        delta.write_wait_overlapped_ns as f64 / delta.write_wait_ns as f64
    };
    let row = Row {
        isolation: iso_name,
        dispatch: dispatch_name,
        primaries,
        backups: backups.len(),
        p50_us: pct(0.5),
        p99_us: pct(0.99),
        mean_us: mean,
        write_wait_mean_us: delta.mean_write_wait_ns() / 1_000.0,
        overlapped_frac,
        max_inflight,
        truncate_standalone: delta.truncate_batches,
        truncate_piggybacked: delta.truncations_piggybacked,
        phases: phase_rows,
    };
    engine.shutdown();
    engine.cluster().shutdown();
    row
}

fn cluster_phase_snapshot(engine: &Arc<Engine>) -> PhaseHistogramSnapshot {
    engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().phases().snapshot())
        .fold(PhaseHistogramSnapshot::default(), |acc, s| acc.merged(&s))
}

/// Hand-rolled JSON (the workspace builds offline; no serde).
fn to_json(rows: &[Row], pipeline_rows: &[PipelineRow], iters: usize) -> String {
    let find = |iso: &str, dispatch: &str, primaries: usize| {
        rows.iter()
            .find(|r| r.isolation == iso && r.dispatch == dispatch && r.primaries == primaries)
    };
    let speedup = |iso: &str, primaries: usize| -> f64 {
        match (
            find(iso, "serial", primaries),
            find(iso, "fanout", primaries),
        ) {
            (Some(s), Some(f)) if f.p50_us > 0.0 => s.p50_us / f.p50_us,
            _ => 0.0,
        }
    };
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let phases: Vec<String> = r
                .phases
                .iter()
                .map(|(l, mean, p50, p99)| {
                    format!(
                        "        {{\"phase\": \"{}\", \"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                        l.name(),
                        mean,
                        p50,
                        p99
                    )
                })
                .collect();
            format!(
                "    {{\"isolation\": \"{}\", \"dispatch\": \"{}\", \"primaries\": {}, \
                 \"backups\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \
                 \"write_wait_mean_us\": {:.2}, \"write_wait_overlapped_frac\": {:.3}, \
                 \"max_inflight_verbs\": {}, \"standalone_truncate_msgs\": {}, \
                 \"piggybacked_truncations\": {},\n      \"phases\": [\n{}\n      ]}}",
                r.isolation,
                r.dispatch,
                r.primaries,
                r.backups,
                r.p50_us,
                r.p99_us,
                r.mean_us,
                r.write_wait_mean_us,
                r.overlapped_frac,
                r.max_inflight,
                r.truncate_standalone,
                r.truncate_piggybacked,
                phases.join(",\n")
            )
        })
        .collect();
    let pipeline_json: Vec<String> = pipeline_rows
        .iter()
        .map(|r| {
            let base = pipeline_rows
                .first()
                .map(|b| b.txns_per_sec)
                .unwrap_or(0.0)
                .max(f64::MIN_POSITIVE);
            format!(
                "    {{\"depth\": {}, \"txns_per_sec\": {:.0}, \"p50_us\": {:.1}, \
                 \"speedup_vs_depth_1\": {:.2}}}",
                r.depth,
                r.txns_per_sec,
                r.p50_us,
                r.txns_per_sec / base
            )
        })
        .collect();
    let fanout_standalone_truncates: u64 = rows
        .iter()
        .filter(|r| r.dispatch == "fanout")
        .map(|r| r.truncate_standalone)
        .sum();
    format!(
        "{{\n  \"benchmark\": \"bench_commit_pipeline\",\n  \
         \"latency_model\": \"datacenter (rdma_read 2.5us, rdma_write 3us, rpc 7us)\",\n  \
         \"nodes\": 6,\n  \"replication\": 3,\n  \"iters_per_config\": {},\n  \
         \"host_cpus\": {},\n  \
         \"note\": \"serial = pre-fan-out per-destination dispatch (sum of latencies per \
         phase, synchronous install+truncate); fanout = completion-queue dispatch with \
         early-ack commit completion: the measured latency is the critical path (LOCK / \
         write-ts / VALIDATE / COMMIT-BACKUP, uncertainty wait overlapped — see \
         acquire_write_ts collapse and write_wait_overlapped_frac), COMMIT-PRIMARY installs \
         drain in the background and TRUNCATE rides later verbs as a piggybacked watermark \
         (standalone_truncate_msgs stays 0). pipeline_throughput = one worker thread \
         keeping `depth` disjoint single-primary write txns in their critical paths via \
         Engine::pipeline(depth)\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"speedup_p50_serializable\": {{\"1_primary\": {:.2}, \"2_primary\": {:.2}, \
         \"4_primary\": {:.2}}},\n  \
         \"speedup_p50_snapshot_isolation\": {{\"1_primary\": {:.2}, \"2_primary\": {:.2}, \
         \"4_primary\": {:.2}}},\n  \
         \"fanout_standalone_truncate_msgs\": {},\n  \
         \"pipeline_throughput\": [\n{}\n  ]\n}}\n",
        iters,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        row_json.join(",\n"),
        speedup("serializable", 1),
        speedup("serializable", 2),
        speedup("serializable", 4),
        speedup("snapshot_isolation", 1),
        speedup("snapshot_isolation", 2),
        speedup("snapshot_isolation", 4),
        fanout_standalone_truncates,
        pipeline_json.join(",\n"),
    )
}
