//! Commit-pipeline latency: serial vs fan-out dispatch under
//! `LatencyModel::datacenter()`.
//!
//! Measures the commit latency of write transactions touching 1 / 2 / 4
//! destination primaries (each region 3-way replicated, so 2 backups per
//! region) with the pre-fan-out serial driver (`DispatchMode::Serial`,
//! every phase pays `Σ latency` over its destinations) against the
//! completion-queue driver (`DispatchMode::Concurrent`, every phase pays
//! `max latency`, and the serializable write-timestamp uncertainty wait
//! overlaps COMMIT-BACKUP replication as in Figure 4 of the paper).
//!
//! Emits `BENCH_commit_pipeline.json` with p50/p99 commit latencies, the
//! per-phase wall-clock histograms (the overlap evidence: under fan-out the
//! `acquire_write_ts` phase collapses to ~0 and its wait reappears inside
//! `replicate_backups`, bounded by `max` rather than added), the overlapped
//! fraction of the uncertainty wait, and the in-flight verb high-water mark.

use std::sync::Arc;
use std::time::Instant;

use farm_bench::bench_duration;
use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, RegionId};
use farm_net::{DispatchMode, LatencyModel, PhaseHistogramSnapshot, PhaseLabel};

/// One measured configuration.
struct Row {
    isolation: &'static str,
    dispatch: &'static str,
    primaries: usize,
    backups: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    write_wait_mean_us: f64,
    overlapped_frac: f64,
    max_inflight: u64,
    phases: Vec<(PhaseLabel, f64, f64, f64)>, // (label, mean, p50, p99) µs
}

fn main() {
    // Scale iteration count off the shared duration knob so CI can shorten
    // the run (default ~1.5 s per configuration at datacenter latencies).
    let iters = ((bench_duration(1.5).as_secs_f64() * 200.0) as usize).clamp(30, 2_000);
    let mut rows: Vec<Row> = Vec::new();
    println!("isolation,dispatch,primaries,backups,p50_us,p99_us,mean_us,write_wait_mean_us,overlapped_frac,max_inflight");
    for (iso_name, opts) in [
        ("serializable", TxOptions::serializable()),
        ("snapshot_isolation", TxOptions::snapshot_isolation()),
    ] {
        for (dispatch_name, dispatch) in [
            ("serial", DispatchMode::Serial),
            ("fanout", DispatchMode::Concurrent),
        ] {
            for primaries in [1usize, 2, 4] {
                let row = run_config(iso_name, opts, dispatch_name, dispatch, primaries, iters);
                println!(
                    "{},{},{},{},{:.1},{:.1},{:.1},{:.2},{:.3},{}",
                    row.isolation,
                    row.dispatch,
                    row.primaries,
                    row.backups,
                    row.p50_us,
                    row.p99_us,
                    row.mean_us,
                    row.write_wait_mean_us,
                    row.overlapped_frac,
                    row.max_inflight
                );
                rows.push(row);
            }
        }
    }
    let json = to_json(&rows, iters);
    std::fs::write("BENCH_commit_pipeline.json", &json).expect("write BENCH_commit_pipeline.json");
    eprintln!("wrote BENCH_commit_pipeline.json");
}

/// Picks `primaries` regions with distinct primaries, none of them the
/// coordinator (so every LOCK message is remote).
fn pick_regions(engine: &Arc<Engine>, coordinator: NodeId, primaries: usize) -> Vec<RegionId> {
    let mut chosen: Vec<RegionId> = Vec::new();
    let mut used: Vec<NodeId> = Vec::new();
    for region in engine.cluster().regions() {
        let Some(p) = engine.cluster().primary_of(region) else {
            continue;
        };
        if p == coordinator || used.contains(&p) {
            continue;
        }
        used.push(p);
        chosen.push(region);
        if chosen.len() == primaries {
            break;
        }
    }
    assert_eq!(chosen.len(), primaries, "cluster too small for the sweep");
    chosen
}

fn run_config(
    iso_name: &'static str,
    opts: TxOptions,
    dispatch_name: &'static str,
    dispatch: DispatchMode,
    primaries: usize,
    iters: usize,
) -> Row {
    let cluster_cfg = ClusterConfig {
        nodes: 6,
        replication: 3,
        regions_per_node: 1,
        auto_control: true,
        control_interval: std::time::Duration::from_micros(500),
        ..ClusterConfig::default()
    };
    let engine_cfg = EngineConfig {
        dispatch,
        latency: LatencyModel::datacenter(),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(cluster_cfg, engine_cfg);
    let coordinator = NodeId(0);
    let regions = pick_regions(&engine, coordinator, primaries);
    let backups: std::collections::BTreeSet<NodeId> = regions
        .iter()
        .flat_map(|&r| engine.cluster().replicas_of(r).into_iter().skip(1))
        .collect();

    // Setup: one object per chosen region.
    let node = engine.node(coordinator);
    let mut tx = node.begin_with(opts);
    let addrs: Vec<Addr> = regions
        .iter()
        .map(|&r| tx.alloc_in(r, vec![0u8; 64]).unwrap())
        .collect();
    tx.commit().unwrap();

    // Warmup, then reset the phase/inflight accounting for the measured run.
    for round in 0..10u8 {
        let mut tx = node.begin_with(opts);
        for &a in &addrs {
            tx.write(a, vec![round; 64]).unwrap();
        }
        tx.commit().unwrap();
    }
    for n in engine.nodes() {
        n.handle().stats().reset();
    }
    let stats_before = engine.aggregate_stats();

    let mut lat_us: Vec<f64> = Vec::with_capacity(iters);
    for round in 0..iters {
        let mut tx = node.begin_with(opts);
        for &a in &addrs {
            tx.write(a, vec![round as u8; 64]).unwrap();
        }
        let start = Instant::now();
        tx.commit().unwrap();
        lat_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let mean = lat_us.iter().sum::<f64>() / lat_us.len() as f64;

    let delta = engine.aggregate_stats().delta(&stats_before);
    let phases = cluster_phase_snapshot(&engine);
    let max_inflight = engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().max_inflight())
        .max()
        .unwrap_or(0);
    let phase_rows: Vec<(PhaseLabel, f64, f64, f64)> = farm_net::PHASE_LABELS
        .iter()
        .filter(|&&l| phases.count(l) > 0)
        .map(|&l| {
            (
                l,
                phases.mean_ns(l) / 1_000.0,
                phases.quantile_ns(l, 0.5) as f64 / 1_000.0,
                phases.quantile_ns(l, 0.99) as f64 / 1_000.0,
            )
        })
        .collect();
    let overlapped_frac = if delta.write_wait_ns == 0 {
        0.0
    } else {
        delta.write_wait_overlapped_ns as f64 / delta.write_wait_ns as f64
    };
    let row = Row {
        isolation: iso_name,
        dispatch: dispatch_name,
        primaries,
        backups: backups.len(),
        p50_us: pct(0.5),
        p99_us: pct(0.99),
        mean_us: mean,
        write_wait_mean_us: delta.mean_write_wait_ns() / 1_000.0,
        overlapped_frac,
        max_inflight,
        phases: phase_rows,
    };
    engine.shutdown();
    engine.cluster().shutdown();
    row
}

fn cluster_phase_snapshot(engine: &Arc<Engine>) -> PhaseHistogramSnapshot {
    engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().phases().snapshot())
        .fold(PhaseHistogramSnapshot::default(), |acc, s| acc.merged(&s))
}

/// Hand-rolled JSON (the workspace builds offline; no serde).
fn to_json(rows: &[Row], iters: usize) -> String {
    let find = |iso: &str, dispatch: &str, primaries: usize| {
        rows.iter()
            .find(|r| r.isolation == iso && r.dispatch == dispatch && r.primaries == primaries)
    };
    let speedup = |iso: &str, primaries: usize| -> f64 {
        match (
            find(iso, "serial", primaries),
            find(iso, "fanout", primaries),
        ) {
            (Some(s), Some(f)) if f.p50_us > 0.0 => s.p50_us / f.p50_us,
            _ => 0.0,
        }
    };
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let phases: Vec<String> = r
                .phases
                .iter()
                .map(|(l, mean, p50, p99)| {
                    format!(
                        "        {{\"phase\": \"{}\", \"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                        l.name(),
                        mean,
                        p50,
                        p99
                    )
                })
                .collect();
            format!(
                "    {{\"isolation\": \"{}\", \"dispatch\": \"{}\", \"primaries\": {}, \
                 \"backups\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \
                 \"write_wait_mean_us\": {:.2}, \"write_wait_overlapped_frac\": {:.3}, \
                 \"max_inflight_verbs\": {},\n      \"phases\": [\n{}\n      ]}}",
                r.isolation,
                r.dispatch,
                r.primaries,
                r.backups,
                r.p50_us,
                r.p99_us,
                r.mean_us,
                r.write_wait_mean_us,
                r.overlapped_frac,
                r.max_inflight,
                phases.join(",\n")
            )
        })
        .collect();
    format!(
        "{{\n  \"benchmark\": \"bench_commit_pipeline\",\n  \
         \"latency_model\": \"datacenter (rdma_read 2.5us, rdma_write 3us, rpc 7us)\",\n  \
         \"nodes\": 6,\n  \"replication\": 3,\n  \"iters_per_config\": {},\n  \
         \"host_cpus\": {},\n  \
         \"note\": \"serial = pre-fan-out per-destination dispatch (sum of latencies per \
         phase); fanout = completion-queue dispatch (max latency per phase, serializable \
         uncertainty wait overlapped with COMMIT-BACKUP — see the acquire_write_ts phase \
         collapse and write_wait_overlapped_frac)\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"speedup_p50_serializable\": {{\"1_primary\": {:.2}, \"2_primary\": {:.2}, \
         \"4_primary\": {:.2}}},\n  \
         \"speedup_p50_snapshot_isolation\": {{\"1_primary\": {:.2}, \"2_primary\": {:.2}, \
         \"4_primary\": {:.2}}}\n}}\n",
        iters,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        row_json.join(",\n"),
        speedup("serializable", 1),
        speedup("serializable", 2),
        speedup("serializable", 4),
        speedup("snapshot_isolation", 1),
        speedup("snapshot_isolation", 2),
        speedup("snapshot_isolation", 4),
    )
}
