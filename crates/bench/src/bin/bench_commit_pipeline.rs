//! Commit-pipeline latency: serial vs fan-out dispatch under
//! `LatencyModel::datacenter()`, plus the pipeline-scaling sweeps.
//!
//! Measures the commit latency of write transactions touching 1 / 2 / 4
//! destination primaries (each region 3-way replicated, so 2 backups per
//! region) with the pre-fan-out serial driver (`DispatchMode::Serial`,
//! every phase pays `Σ latency` over its destinations) against the
//! completion-queue driver (`DispatchMode::Concurrent`, every phase pays
//! `max latency`, and the serializable write-timestamp uncertainty wait
//! overlaps COMMIT-BACKUP replication as in Figure 4 of the paper).
//!
//! With early-ack commit completion (the fan-out default) the measured
//! latency is the **critical path only**: `commit` returns when every
//! COMMIT-BACKUP is acked, installs drain in the background, and TRUNCATE is
//! piggybacked as a watermark on later verbs — the per-row
//! `standalone_truncate_msgs` column must stay 0 under this traffic.
//!
//! Three scaling sweeps follow:
//!
//! * **`pipeline_throughput`** (legacy axis): single-worker reactor
//!   throughput at depths 1..=N under the *datacenter* model. On this host
//!   it plateaus at depth >= 4 — the per-flight cycle accounting shows why:
//!   the serial fraction (issue CPU / wall) approaches 1, i.e. the single
//!   thread is CPU-saturated, not latency-bound.
//! * **`reactor_sweep`** (`depth × workers`, up to 32 in flight): the same
//!   measurement under a 10× flight model (rdma_read 25 µs, write 30 µs,
//!   rpc 70 µs — waits sleep instead of spinning), the regime the reactor
//!   is built for. Here added depth keeps paying well past 8, and a
//!   [`farm_core::PipelinePool`] with work-stealing matches or beats the
//!   depth-matched single reactor even on one core (an awake worker steals
//!   flights whose owner is still in a sleep-overshoot).
//! * **`amdahl`**: the measured serial fraction `s` from the cycle
//!   accounting, the protocol CPU per transaction it implies, and the
//!   predicted multi-core speedup `S(N) = 1/(s + (1-s)/N)` — the
//!   bench's answer, from a 1-CPU host, to "what would more cores buy?".
//!
//! Emits `BENCH_commit_pipeline.json`; `scripts/check_bench_regression.py`
//! gates on it in CI.

use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_bench::bench_duration;
use farm_core::{Engine, EngineConfig, NodeId, PipelineTimings, PoolConfig, TxOptions};
use farm_kernel::ClusterConfig;
use farm_memory::{Addr, RegionId};
use farm_net::{DispatchMode, LatencyModel, PhaseHistogramSnapshot, PhaseLabel};

/// One measured configuration.
struct Row {
    isolation: &'static str,
    dispatch: &'static str,
    primaries: usize,
    backups: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    write_wait_mean_us: f64,
    overlapped_frac: f64,
    max_inflight: u64,
    /// Standalone TRUNCATE messages sent during the measured window (must
    /// be 0 under fan-out: truncation piggybacks on protocol verbs).
    truncate_standalone: u64,
    /// Piggybacked truncation watermark deliveries during the window.
    truncate_piggybacked: u64,
    phases: Vec<(PhaseLabel, f64, f64, f64)>, // (label, mean, p50, p99) µs
}

/// One reactor / pool throughput measurement.
struct ReactorRow {
    workers: usize,
    depth_per_worker: usize,
    total_inflight: usize,
    txns_per_sec: f64,
    /// Submit-to-result p50 (single-worker rows only; a pool completes in
    /// cross-worker completion order, so per-submit latency is not tracked).
    p50_us: Option<f64>,
    serial_fraction: f64,
    cpu_us_per_txn: f64,
    steals: u64,
    steal_drains: u64,
    wakeups: u64,
    coalesced: u64,
    aborted: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_depth: usize = args
        .iter()
        .position(|a| a == "--pipeline-depth")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    // Scale iteration count off the shared duration knob so CI can shorten
    // the run (default ~1.5 s per configuration at datacenter latencies).
    let iters = ((bench_duration(1.5).as_secs_f64() * 200.0) as usize).clamp(30, 2_000);
    let mut rows: Vec<Row> = Vec::new();
    println!("isolation,dispatch,primaries,backups,p50_us,p99_us,mean_us,write_wait_mean_us,overlapped_frac,max_inflight,truncate_standalone,truncate_piggybacked");
    for (iso_name, opts) in [
        ("serializable", TxOptions::serializable()),
        ("snapshot_isolation", TxOptions::snapshot_isolation()),
    ] {
        for (dispatch_name, dispatch) in [
            ("serial", DispatchMode::Serial),
            ("fanout", DispatchMode::Concurrent),
        ] {
            for primaries in [1usize, 2, 4] {
                let row = run_config(iso_name, opts, dispatch_name, dispatch, primaries, iters);
                println!(
                    "{},{},{},{},{:.1},{:.1},{:.1},{:.2},{:.3},{},{},{}",
                    row.isolation,
                    row.dispatch,
                    row.primaries,
                    row.backups,
                    row.p50_us,
                    row.p99_us,
                    row.mean_us,
                    row.write_wait_mean_us,
                    row.overlapped_frac,
                    row.max_inflight,
                    row.truncate_standalone,
                    row.truncate_piggybacked
                );
                rows.push(row);
            }
        }
    }

    // Legacy axis: single-worker reactor under the datacenter model. The
    // serial-fraction column is the plateau diagnosis: it approaches 1 as
    // depth grows — the thread runs out of CPU, not out of depth.
    println!("pipeline_depth,txns_per_sec,p50_us,serial_fraction");
    let legacy_rows: Vec<ReactorRow> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&d| d <= max_depth)
        .map(|depth| {
            let row = run_reactor(1, depth, 1);
            println!(
                "{},{:.0},{:.1},{:.3}",
                row.depth_per_worker,
                row.txns_per_sec,
                row.p50_us.unwrap_or(0.0),
                row.serial_fraction
            );
            row
        })
        .collect();

    // The reactor regime: a 10x flight model where waits sleep. Single
    // worker to 32 in flight, then worker pools at matched total depth.
    const SCALE: u64 = 10;
    println!(
        "workers,depth_per_worker,total_inflight,txns_per_sec,serial_fraction,steals,steal_drains"
    );
    let mut reactor_rows: Vec<ReactorRow> = Vec::new();
    for (workers, depth) in [
        (1usize, 1usize),
        (1, 2),
        (1, 4),
        (1, 8),
        (1, 16),
        (1, 32),
        (2, 8),
        (4, 4),
        (2, 16),
        (4, 8),
    ] {
        let row = run_reactor(workers, depth, SCALE);
        println!(
            "{},{},{},{:.0},{:.3},{},{}",
            row.workers,
            row.depth_per_worker,
            row.total_inflight,
            row.txns_per_sec,
            row.serial_fraction,
            row.steals,
            row.steal_drains
        );
        reactor_rows.push(row);
    }

    let json = to_json(&rows, &legacy_rows, &reactor_rows, SCALE, iters);
    std::fs::write("BENCH_commit_pipeline.json", &json).expect("write BENCH_commit_pipeline.json");
    eprintln!("wrote BENCH_commit_pipeline.json");
}

/// Committed-txns/sec for `workers` pipeline workers at `depth_per_worker`,
/// under the datacenter latency model scaled by `scale` (1 = datacenter:
/// waits under the spin threshold spin; 10 = long flights: waits sleep).
///
/// `workers == 1` drives a [`CommitPipeline`](farm_core::CommitPipeline) on
/// the caller thread (depth 1 is then the synchronous baseline — the
/// `1 / commit-latency` bound the pipeline exists to break, paid through
/// the same reactor code path). `workers > 1` drives a
/// [`PipelinePool`](farm_core::PipelinePool). Transactions are non-strict
/// serializable disjoint single-primary writes; addresses cycle through a
/// pool far larger than the in-flight bound, so a reused object's previous
/// commit has long completed.
fn run_reactor(workers: usize, depth_per_worker: usize, scale: u64) -> ReactorRow {
    let cluster_cfg = ClusterConfig {
        nodes: 6,
        replication: 3,
        regions_per_node: 1,
        auto_control: true,
        control_interval: std::time::Duration::from_micros(500),
        ..ClusterConfig::default()
    };
    let base = LatencyModel::datacenter();
    let engine_cfg = EngineConfig {
        dispatch: DispatchMode::Concurrent,
        latency: LatencyModel {
            rdma_read_ns: base.rdma_read_ns * scale,
            rdma_write_ns: base.rdma_write_ns * scale,
            rpc_ns: base.rpc_ns * scale,
            ..base
        },
        // The coalescing window scales with the flight model: batch every
        // deadline within ~2 µs per unit of scale.
        pipeline_wake_quantum: Duration::from_micros(2 * scale),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(cluster_cfg, engine_cfg);
    let coordinator = NodeId(0);
    let node = engine.node(coordinator);
    let region = pick_regions(&engine, coordinator, 1)[0];

    const POOL: usize = 256;
    let mut setup = node.begin();
    let pool: Vec<Addr> = (0..POOL)
        .map(|_| setup.alloc_in(region, vec![0u8; 64]).unwrap())
        .collect();
    setup.commit().unwrap();
    node.drain_pending_installs();
    let opts = TxOptions::serializable_non_strict();
    // Pre-built payloads: the measured loop clones `Bytes` (refcount) rather
    // than allocating a fresh vector per transaction.
    let payloads: Vec<bytes::Bytes> = (0..16u8).map(|v| bytes::Bytes::from(vec![v; 64])).collect();

    let total_inflight = workers * depth_per_worker;
    let duration = bench_duration(1.0);
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let (timings, p50_us, elapsed, steals, steal_drains): (
        PipelineTimings,
        Option<f64>,
        f64,
        u64,
        u64,
    );

    if workers == 1 {
        let mut pipeline = node.pipeline(depth_per_worker);
        for &addr in pool.iter().take(2 * depth_per_worker.max(4)) {
            let mut tx = node.begin_with(opts);
            tx.overwrite(addr, payloads[0].clone()).unwrap();
            pipeline.submit(tx);
        }
        pipeline.drain();
        let warmed = pipeline.timings();

        let start = Instant::now();
        let mut submitted = 0usize;
        let mut lat_us: Vec<f64> = Vec::new();
        let mut submit_times: std::collections::VecDeque<Instant> =
            std::collections::VecDeque::new();
        while start.elapsed() < duration {
            let addr = pool[submitted % POOL];
            let mut tx = node.begin_with(opts);
            tx.overwrite(addr, payloads[submitted % 16].clone())
                .unwrap();
            submitted += 1;
            submit_times.push_back(Instant::now());
            pipeline.submit(tx);
            for result in pipeline.take() {
                let t = submit_times.pop_front().expect("one submit per result");
                if result.is_ok() {
                    committed += 1;
                    lat_us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
                } else {
                    aborted += 1;
                }
            }
        }
        for result in pipeline.drain() {
            let t = submit_times.pop_front().expect("one submit per result");
            if result.is_ok() {
                committed += 1;
                lat_us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
            } else {
                aborted += 1;
            }
        }
        elapsed = start.elapsed().as_secs_f64();
        lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        p50_us = if lat_us.is_empty() {
            None
        } else {
            Some(lat_us[(lat_us.len() - 1) / 2])
        };
        let mut t = pipeline.timings();
        // Subtract the warmup so the accounting covers the measured window.
        t.issue_ns -= warmed.issue_ns;
        t.wait_ns -= warmed.wait_ns;
        t.drain_ns -= warmed.drain_ns;
        t.completed -= warmed.completed;
        timings = t;
        steals = 0;
        steal_drains = 0;
    } else {
        let pipeline_pool = node.pipeline_pool(PoolConfig::new(workers, depth_per_worker));
        for &addr in pool.iter().take(2 * total_inflight.max(4)) {
            let mut tx = node.begin_with(opts);
            tx.overwrite(addr, payloads[0].clone()).unwrap();
            pipeline_pool.submit(tx);
        }
        pipeline_pool.drain();
        let warmed = pipeline_pool.stats();

        let start = Instant::now();
        let mut submitted = 0usize;
        while start.elapsed() < duration {
            let addr = pool[submitted % POOL];
            let mut tx = node.begin_with(opts);
            tx.overwrite(addr, payloads[submitted % 16].clone())
                .unwrap();
            submitted += 1;
            pipeline_pool.submit(tx);
        }
        for result in pipeline_pool.drain() {
            if result.is_ok() {
                committed += 1;
            } else {
                aborted += 1;
            }
        }
        elapsed = start.elapsed().as_secs_f64();
        let stats = pipeline_pool.stats();
        let mut t = stats.timings;
        t.issue_ns -= warmed.timings.issue_ns;
        t.wait_ns -= warmed.timings.wait_ns;
        t.drain_ns -= warmed.timings.drain_ns;
        t.steal_ns -= warmed.timings.steal_ns;
        t.completed -= warmed.timings.completed;
        timings = t;
        steals = stats.steals - warmed.steals;
        steal_drains = stats.steal_drains - warmed.steal_drains;
        p50_us = None;
    }

    engine.shutdown();
    engine.cluster().shutdown();
    let cpu_us_per_txn = if timings.completed == 0 {
        0.0
    } else {
        timings.busy_ns() as f64 / timings.completed as f64 / 1_000.0
    };
    ReactorRow {
        workers,
        depth_per_worker,
        total_inflight,
        txns_per_sec: committed as f64 / elapsed,
        p50_us,
        serial_fraction: timings.serial_fraction(),
        cpu_us_per_txn,
        steals,
        steal_drains,
        wakeups: timings.wakeups,
        coalesced: timings.coalesced,
        aborted,
    }
}

/// Picks `primaries` regions with distinct primaries, none of them the
/// coordinator (so every LOCK message is remote).
fn pick_regions(engine: &Arc<Engine>, coordinator: NodeId, primaries: usize) -> Vec<RegionId> {
    let mut chosen: Vec<RegionId> = Vec::new();
    let mut used: Vec<NodeId> = Vec::new();
    for region in engine.cluster().regions() {
        let Some(p) = engine.cluster().primary_of(region) else {
            continue;
        };
        if p == coordinator || used.contains(&p) {
            continue;
        }
        used.push(p);
        chosen.push(region);
        if chosen.len() == primaries {
            break;
        }
    }
    assert_eq!(chosen.len(), primaries, "cluster too small for the sweep");
    chosen
}

fn run_config(
    iso_name: &'static str,
    opts: TxOptions,
    dispatch_name: &'static str,
    dispatch: DispatchMode,
    primaries: usize,
    iters: usize,
) -> Row {
    let cluster_cfg = ClusterConfig {
        nodes: 6,
        replication: 3,
        regions_per_node: 1,
        auto_control: true,
        control_interval: std::time::Duration::from_micros(500),
        ..ClusterConfig::default()
    };
    let engine_cfg = EngineConfig {
        dispatch,
        latency: LatencyModel::datacenter(),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(cluster_cfg, engine_cfg);
    let coordinator = NodeId(0);
    let regions = pick_regions(&engine, coordinator, primaries);
    let backups: std::collections::BTreeSet<NodeId> = regions
        .iter()
        .flat_map(|&r| engine.cluster().replicas_of(r).into_iter().skip(1))
        .collect();

    // Setup: one object per chosen region.
    let node = engine.node(coordinator);
    let mut tx = node.begin_with(opts);
    let addrs: Vec<Addr> = regions
        .iter()
        .map(|&r| tx.alloc_in(r, vec![0u8; 64]).unwrap())
        .collect();
    tx.commit().unwrap();

    // Warmup, then reset the phase/inflight accounting for the measured run.
    for round in 0..10u8 {
        let mut tx = node.begin_with(opts);
        for &a in &addrs {
            tx.write(a, vec![round; 64]).unwrap();
        }
        tx.commit().unwrap();
    }
    for n in engine.nodes() {
        n.handle().stats().reset();
    }
    let stats_before = engine.aggregate_stats();

    let mut lat_us: Vec<f64> = Vec::with_capacity(iters);
    for round in 0..iters {
        let mut tx = node.begin_with(opts);
        for &a in &addrs {
            tx.write(a, vec![round as u8; 64]).unwrap();
        }
        let start = Instant::now();
        tx.commit().unwrap();
        lat_us.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let mean = lat_us.iter().sum::<f64>() / lat_us.len() as f64;

    let delta = engine.aggregate_stats().delta(&stats_before);
    let phases = cluster_phase_snapshot(&engine);
    let max_inflight = engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().max_inflight())
        .max()
        .unwrap_or(0);
    let phase_rows: Vec<(PhaseLabel, f64, f64, f64)> = farm_net::PHASE_LABELS
        .iter()
        .filter(|&&l| phases.count(l) > 0)
        .map(|&l| {
            (
                l,
                phases.mean_ns(l) / 1_000.0,
                phases.quantile_ns(l, 0.5) as f64 / 1_000.0,
                phases.quantile_ns(l, 0.99) as f64 / 1_000.0,
            )
        })
        .collect();
    let overlapped_frac = if delta.write_wait_ns == 0 {
        0.0
    } else {
        delta.write_wait_overlapped_ns as f64 / delta.write_wait_ns as f64
    };
    let row = Row {
        isolation: iso_name,
        dispatch: dispatch_name,
        primaries,
        backups: backups.len(),
        p50_us: pct(0.5),
        p99_us: pct(0.99),
        mean_us: mean,
        write_wait_mean_us: delta.mean_write_wait_ns() / 1_000.0,
        overlapped_frac,
        max_inflight,
        truncate_standalone: delta.truncate_batches,
        truncate_piggybacked: delta.truncations_piggybacked,
        phases: phase_rows,
    };
    engine.shutdown();
    engine.cluster().shutdown();
    row
}

fn cluster_phase_snapshot(engine: &Arc<Engine>) -> PhaseHistogramSnapshot {
    engine
        .nodes()
        .iter()
        .map(|n| n.handle().stats().phases().snapshot())
        .fold(PhaseHistogramSnapshot::default(), |acc, s| acc.merged(&s))
}

fn reactor_row_json(r: &ReactorRow, base_tps: f64) -> String {
    let p50 = r
        .p50_us
        .map(|v| format!("{v:.1}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        "    {{\"workers\": {}, \"depth_per_worker\": {}, \"total_inflight\": {}, \
         \"txns_per_sec\": {:.0}, \"p50_us\": {}, \"speedup_vs_1\": {:.2}, \
         \"serial_fraction\": {:.3}, \"cpu_us_per_txn\": {:.2}, \"steals\": {}, \
         \"steal_drains\": {}, \"wakeups\": {}, \"coalesced_flights\": {}, \"aborted\": {}}}",
        r.workers,
        r.depth_per_worker,
        r.total_inflight,
        r.txns_per_sec,
        p50,
        r.txns_per_sec / base_tps.max(f64::MIN_POSITIVE),
        r.serial_fraction,
        r.cpu_us_per_txn,
        r.steals,
        r.steal_drains,
        r.wakeups,
        r.coalesced,
        r.aborted
    )
}

/// Hand-rolled JSON (the workspace builds offline; no serde).
fn to_json(
    rows: &[Row],
    legacy_rows: &[ReactorRow],
    reactor_rows: &[ReactorRow],
    scale: u64,
    iters: usize,
) -> String {
    let find = |iso: &str, dispatch: &str, primaries: usize| {
        rows.iter()
            .find(|r| r.isolation == iso && r.dispatch == dispatch && r.primaries == primaries)
    };
    let speedup = |iso: &str, primaries: usize| -> f64 {
        match (
            find(iso, "serial", primaries),
            find(iso, "fanout", primaries),
        ) {
            (Some(s), Some(f)) if f.p50_us > 0.0 => s.p50_us / f.p50_us,
            _ => 0.0,
        }
    };
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let phases: Vec<String> = r
                .phases
                .iter()
                .map(|(l, mean, p50, p99)| {
                    format!(
                        "        {{\"phase\": \"{}\", \"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                        l.name(),
                        mean,
                        p50,
                        p99
                    )
                })
                .collect();
            format!(
                "    {{\"isolation\": \"{}\", \"dispatch\": \"{}\", \"primaries\": {}, \
                 \"backups\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \
                 \"write_wait_mean_us\": {:.2}, \"write_wait_overlapped_frac\": {:.3}, \
                 \"max_inflight_verbs\": {}, \"standalone_truncate_msgs\": {}, \
                 \"piggybacked_truncations\": {},\n      \"phases\": [\n{}\n      ]}}",
                r.isolation,
                r.dispatch,
                r.primaries,
                r.backups,
                r.p50_us,
                r.p99_us,
                r.mean_us,
                r.write_wait_mean_us,
                r.overlapped_frac,
                r.max_inflight,
                r.truncate_standalone,
                r.truncate_piggybacked,
                phases.join(",\n")
            )
        })
        .collect();
    let legacy_base = legacy_rows
        .first()
        .map(|b| b.txns_per_sec)
        .unwrap_or(0.0)
        .max(f64::MIN_POSITIVE);
    let pipeline_json: Vec<String> = legacy_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"depth\": {}, \"txns_per_sec\": {:.0}, \"p50_us\": {:.1}, \
                 \"speedup_vs_depth_1\": {:.2}, \"serial_fraction\": {:.3}}}",
                r.depth_per_worker,
                r.txns_per_sec,
                r.p50_us.unwrap_or(0.0),
                r.txns_per_sec / legacy_base,
                r.serial_fraction
            )
        })
        .collect();
    let reactor_base = reactor_rows
        .iter()
        .find(|r| r.workers == 1 && r.depth_per_worker == 1)
        .map(|r| r.txns_per_sec)
        .unwrap_or(0.0)
        .max(f64::MIN_POSITIVE);
    let reactor_json: Vec<String> = reactor_rows
        .iter()
        .map(|r| reactor_row_json(r, reactor_base))
        .collect();

    // Pool-vs-single comparison at matched total in-flight depth.
    let single_at = |total: usize| {
        reactor_rows
            .iter()
            .find(|r| r.workers == 1 && r.total_inflight == total)
    };
    let pool_vs_single: Vec<String> = reactor_rows
        .iter()
        .filter(|r| r.workers > 1)
        .filter_map(|p| {
            let s = single_at(p.total_inflight)?;
            Some(format!(
                "    {{\"workers\": {}, \"total_inflight\": {}, \"pool_txns_per_sec\": {:.0}, \
                 \"single_txns_per_sec\": {:.0}, \"ratio\": {:.3}}}",
                p.workers,
                p.total_inflight,
                p.txns_per_sec,
                s.txns_per_sec,
                p.txns_per_sec / s.txns_per_sec.max(f64::MIN_POSITIVE)
            ))
        })
        .collect();

    // Amdahl: serial fractions from the cycle accounting, on two axes.
    //
    // Depth axis: pipelining overlaps the flight (wait) fraction across
    // transactions while the coordinator CPU stays serialized on one
    // thread, so predicted depth-d speedup is S(d) = 1/(s1 + (1-s1)/d)
    // with s1 the serial fraction measured at depth 1, asymptote 1/s1 —
    // this is the quantitative plateau explanation.
    //
    // Core axis: at a fixed total in-flight window, N worker cores divide
    // the busy fraction and leave the (already overlapped) wait fraction,
    // so predicted speedup is S(N) = 1/((1-s) + s/N) with s the serial
    // fraction at the deepest single-worker row. Datacenter s -> 1 makes
    // that linear in N: the plateau is pure CPU, only cores lift it.
    let legacy_deepest = legacy_rows.iter().max_by_key(|r| r.depth_per_worker);
    let s1_dc = legacy_rows
        .iter()
        .find(|r| r.depth_per_worker == 1)
        .map(|r| r.serial_fraction)
        .unwrap_or(1.0);
    let s_datacenter = legacy_deepest.map(|r| r.serial_fraction).unwrap_or(1.0);
    let dc_depth = legacy_deepest.map(|r| r.depth_per_worker).unwrap_or(1);
    let dc_measured = legacy_deepest
        .map(|r| r.txns_per_sec / legacy_base)
        .unwrap_or(1.0);
    let cpu_us_dc = legacy_deepest.map(|r| r.cpu_us_per_txn).unwrap_or(0.0);
    let deep = reactor_rows
        .iter()
        .filter(|r| r.workers == 1)
        .max_by_key(|r| r.depth_per_worker);
    let s1_lf = reactor_rows
        .iter()
        .find(|r| r.workers == 1 && r.depth_per_worker == 1)
        .map(|r| r.serial_fraction)
        .unwrap_or(1.0);
    let s_longflight = deep.map(|r| r.serial_fraction).unwrap_or(1.0);
    let lf_depth = deep.map(|r| r.depth_per_worker).unwrap_or(1);
    let lf_measured = deep.map(|r| r.txns_per_sec / reactor_base).unwrap_or(1.0);
    let depth_predict = |s1: f64, d: f64| 1.0 / (s1 + (1.0 - s1) / d);
    let core_predict = |s: f64, n: f64| 1.0 / ((1.0 - s) + s / n);

    format!(
        "{{\n  \"benchmark\": \"bench_commit_pipeline\",\n  \
         \"latency_model\": \"datacenter (rdma_read 2.5us, rdma_write 3us, rpc 7us)\",\n  \
         \"nodes\": 6,\n  \"replication\": 3,\n  \"iters_per_config\": {},\n  \
         \"host_cpus\": {},\n  \
         \"note\": \"serial = pre-fan-out per-destination dispatch (sum of latencies per \
         phase, synchronous install+truncate); fanout = completion-queue dispatch with \
         early-ack commit completion: the measured latency is the critical path (LOCK / \
         write-ts / VALIDATE / COMMIT-BACKUP, uncertainty wait overlapped — see \
         acquire_write_ts collapse and write_wait_overlapped_frac), COMMIT-PRIMARY installs \
         drain in the background and TRUNCATE rides later verbs as a piggybacked watermark \
         (standalone_truncate_msgs stays 0). pipeline_throughput = one worker thread \
         keeping `depth` disjoint single-primary write txns in their critical paths via \
         Engine::pipeline(depth)\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"speedup_p50_serializable\": {{\"1_primary\": {:.2}, \"2_primary\": {:.2}, \
         \"4_primary\": {:.2}}},\n  \
         \"speedup_p50_snapshot_isolation\": {{\"1_primary\": {:.2}, \"2_primary\": {:.2}, \
         \"4_primary\": {:.2}}},\n  \
         \"fanout_standalone_truncate_msgs\": {},\n  \
         \"pipeline_throughput\": [\n{}\n  ],\n  \
         \"reactor_sweep\": {{\n    \
         \"latency_model\": \"datacenter x{} (rdma_read {}us, rdma_write {}us, rpc {}us); \
         waits exceed the spin threshold and sleep\",\n    \
         \"note\": \"the deadline-heap reactor regime: single-worker depth up to 32, then \
         PipelinePool rows (workers > 1) at matched total in-flight depth. serial_fraction \
         = busy/(busy+wait) from per-flight cycle accounting; steals = expired flights \
         advanced by a non-owner worker; steal_drains = install-backlog chunks drained by \
         idle workers\",\n    \
         \"rows\": [\n{}\n    ]\n  }},\n  \
         \"pool_vs_single\": [\n{}\n  ],\n  \
         \"amdahl\": {{\n    \
         \"note\": \"serial fractions measured from reactor cycle accounting \
         (busy/(busy+wait)). Depth axis: pipelining overlaps the flight fraction while the \
         coordinator CPU stays serialized, S(d) = 1/(s1 + (1-s1)/d), asymptote 1/s1 — the \
         datacenter sweep plateaus at depth >= 4 because its asymptote is ~3x and s -> 1 \
         there (one host CPU saturated by protocol work, not waiting on flights). Core \
         axis: at fixed total depth, N cores divide the busy fraction, \
         S(N) = 1/((1-s) + s/N); datacenter s = 1 makes that linear in N, which is what \
         more cores would buy. The x{} flight model keeps s low, which is why depth keeps \
         paying to 32 and the work-stealing pool matches or beats the depth-matched single \
         reactor even on this 1-CPU host.\",\n    \
         \"depth_scaling\": {{\n      \
         \"datacenter\": {{\"serial_fraction_depth1\": {:.3}, \"asymptote\": {:.2}, \
         \"predicted_speedup_deepest\": {:.2}, \"measured_speedup_deepest\": {:.2}, \
         \"deepest\": {}}},\n      \
         \"longflight\": {{\"serial_fraction_depth1\": {:.3}, \"asymptote\": {:.2}, \
         \"predicted_speedup_deepest\": {:.2}, \"measured_speedup_deepest\": {:.2}, \
         \"deepest\": {}}}\n    }},\n    \
         \"core_scaling\": {{\n      \
         \"serial_fraction_datacenter_deepest\": {:.3},\n      \
         \"serial_fraction_longflight_deepest\": {:.3},\n      \
         \"protocol_cpu_us_per_txn\": {:.2},\n      \
         \"predicted_multicore_speedup_datacenter\": {{\"2\": {:.2}, \"4\": {:.2}, \
         \"8\": {:.2}}},\n      \
         \"predicted_multicore_speedup_longflight\": {{\"2\": {:.2}, \"4\": {:.2}, \
         \"8\": {:.2}}}\n    }}\n  }}\n}}\n",
        iters,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        row_json.join(",\n"),
        speedup("serializable", 1),
        speedup("serializable", 2),
        speedup("serializable", 4),
        speedup("snapshot_isolation", 1),
        speedup("snapshot_isolation", 2),
        speedup("snapshot_isolation", 4),
        rows.iter()
            .filter(|r| r.dispatch == "fanout")
            .map(|r| r.truncate_standalone)
            .sum::<u64>(),
        pipeline_json.join(",\n"),
        scale,
        LatencyModel::datacenter().rdma_read_ns * scale / 1_000,
        LatencyModel::datacenter().rdma_write_ns * scale / 1_000,
        LatencyModel::datacenter().rpc_ns * scale / 1_000,
        reactor_json.join(",\n"),
        pool_vs_single.join(",\n"),
        scale,
        s1_dc,
        1.0 / s1_dc.max(f64::MIN_POSITIVE),
        depth_predict(s1_dc, dc_depth as f64),
        dc_measured,
        dc_depth,
        s1_lf,
        1.0 / s1_lf.max(f64::MIN_POSITIVE),
        depth_predict(s1_lf, lf_depth as f64),
        lf_measured,
        lf_depth,
        s_datacenter,
        s_longflight,
        cpu_us_dc,
        core_predict(s_datacenter, 2.0),
        core_predict(s_datacenter, 4.0),
        core_predict(s_datacenter, 8.0),
        core_predict(s_longflight, 2.0),
        core_predict(s_longflight, 4.0),
        core_predict(s_longflight, 8.0),
    )
}
