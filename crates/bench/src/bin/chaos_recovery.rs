//! Recovery-under-load benchmark: seeded kill/partition schedules against a
//! money-transfer workload, measuring the throughput timeline (1 ms buckets)
//! and the recovery phase spans (suspicion → config commit → drain-barrier
//! lift → full re-replication), with the chaos-harness invariants checked
//! after every schedule.
//!
//! Emits `BENCH_recovery.json`; `scripts/check_bench_regression.py` gates CI
//! on it: zero invariant violations, zero leaked locks, and the full
//! recovery span within budget on every schedule.
//!
//! Schedules are deterministic from their seed. `FARM_CHAOS_SCHEDULES`
//! overrides the schedule count (default 5), `FARM_CHAOS_COOLDOWN_MS` the
//! post-heal load window.

use farm_core::{AbortReason, Engine, EngineConfig, NodeId, TxError, TxOptions};
use farm_kernel::{ClusterConfig, EventKind};
use farm_memory::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ACCOUNTS: usize = 24;
const INITIAL: u64 = 1_000;
const WORKERS: usize = 3;

struct ScheduleResult {
    seed: u64,
    victim: NodeId,
    mode: &'static str,
    committed: u64,
    /// (bucket start ms since schedule start, committed txns/s in bucket).
    timeline: Vec<(f64, f64)>,
    /// Suspicion → new configuration committed.
    span_config_ms: f64,
    /// Suspicion → drain barrier lifted (availability restored).
    span_unblocked_ms: f64,
    /// Suspicion → redundancy fully restored.
    span_rereplicated_ms: f64,
    orphans_rolled_forward: u64,
    orphans_rolled_back: u64,
    retries_absorbed: u64,
    backups_caught_up: u64,
    invariant_violations: u64,
    leaked_locks: u64,
}

fn chaos_engine() -> Arc<Engine> {
    let cluster = ClusterConfig {
        regions_per_node: 2,
        auto_control: true,
        control_interval: Duration::from_millis(1),
        // Generous lease so a starved control thread on a shared or
        // single-core runner never suspects a live node.
        lease_expiry: Duration::from_millis(50),
        ..ClusterConfig::test(5)
    };
    Engine::start_cluster(
        cluster,
        EngineConfig {
            gc_interval: Duration::from_millis(2),
            ..EngineConfig::multi_version()
        },
    )
}

fn balance(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte account"))
}

fn setup_accounts(engine: &Arc<Engine>) -> Vec<Addr> {
    let node = engine.node(NodeId(0));
    let regions = engine.cluster().regions();
    let mut tx = node.begin();
    let accounts: Vec<Addr> = (0..ACCOUNTS)
        .map(|i| {
            tx.alloc_in(regions[i % regions.len()], INITIAL.to_le_bytes().to_vec())
                .expect("setup allocation")
        })
        .collect();
    tx.commit().expect("setup commit");
    engine.quiesce();
    accounts
}

fn transfer_worker(
    engine: &Arc<Engine>,
    home: NodeId,
    accounts: &[Addr],
    stop: &AtomicBool,
    committed: &AtomicU64,
    seed: u64,
) {
    let node = engine.node(home);
    let mut rng = StdRng::seed_from_u64(seed);
    while !stop.load(Ordering::Acquire) {
        if !node.is_alive() {
            break;
        }
        let from = rng.gen_range(0..accounts.len());
        let to = rng.gen_range(0..accounts.len());
        if from == to {
            continue;
        }
        let (from_addr, to_addr) = (accounts[from], accounts[to]);
        let result = node.run_transaction(TxOptions::serializable(), |tx| {
            let from_val = balance(&tx.read(from_addr)?);
            if from_val == 0 {
                return Err(TxError::Aborted(AbortReason::UserRequested));
            }
            let to_val = balance(&tx.read(to_addr)?);
            tx.write(from_addr, (from_val - 1).to_le_bytes().to_vec())?;
            tx.write(to_addr, (to_val + 1).to_le_bytes().to_vec())?;
            Ok(())
        });
        if result.is_ok() {
            committed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_schedule(seed: u64, cooldown: Duration) -> ScheduleResult {
    let engine = chaos_engine();
    let accounts = setup_accounts(&engine);
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster_size = engine.cluster().nodes().len() as u32;
    let victim = NodeId(rng.gen_range(0..cluster_size));
    let evict_by_partition = rng.gen_range(0..3u32) == 0;
    let mode = if evict_by_partition {
        "partition"
    } else {
        "kill"
    };

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        // One worker homed on the victim (its in-flight transactions
        // exercise coordinator death), the rest on survivors.
        let home = if w == 0 {
            victim
        } else {
            NodeId((victim.0 + w as u32) % cluster_size)
        };
        let engine = Arc::clone(&engine);
        let accounts = accounts.clone();
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        workers.push(std::thread::spawn(move || {
            transfer_worker(
                &engine,
                home,
                &accounts,
                &stop,
                &committed,
                seed * 31 + w as u64,
            )
        }));
    }

    let start = Instant::now();
    let mut timeline = Vec::new();
    let mut killed = false;
    let mut healed = false;
    let warmup = Duration::from_millis(30);
    let deadline = Duration::from_secs(10);
    loop {
        let c0 = committed.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(1));
        let c1 = committed.load(Ordering::Relaxed);
        let t = start.elapsed();
        timeline.push((t.as_secs_f64() * 1_000.0, (c1 - c0) as f64 / 0.001));
        if !killed && t > warmup {
            engine.cluster().events().clear();
            if evict_by_partition {
                engine.cluster().faults().partition(vec![(victim, 1)]);
            } else {
                engine.cluster().kill(victim);
            }
            killed = true;
        }
        let rereplicated = engine
            .cluster()
            .events()
            .snapshot()
            .iter()
            .any(|e| matches!(e.kind, EventKind::RereplicationComplete));
        if killed && !healed && rereplicated {
            if evict_by_partition {
                engine.cluster().faults().heal();
            }
            healed = true;
            // Keep load on the recovered cluster for the cooldown window.
            let until = start.elapsed() + cooldown;
            while start.elapsed() < until {
                let c0 = committed.load(Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
                let c1 = committed.load(Ordering::Relaxed);
                timeline.push((
                    start.elapsed().as_secs_f64() * 1_000.0,
                    (c1 - c0) as f64 / 0.001,
                ));
            }
            break;
        }
        if t > deadline {
            break;
        }
    }
    stop.store(true, Ordering::Release);
    for w in workers {
        let _ = w.join();
    }
    engine.quiesce();

    let events = engine.cluster().events();
    let span_ms = |span: Option<Duration>| span.map_or(-1.0, |d| d.as_secs_f64() * 1_000.0);
    let suspected = |k: &EventKind| matches!(k, EventKind::Suspected(_));
    let span_config_ms = span_ms(events.span(suspected, |k| {
        matches!(k, EventKind::ConfigCommitted { .. })
    }));
    let span_unblocked_ms = span_ms(events.span(suspected, |k| {
        matches!(k, EventKind::RegionsUnblocked { .. })
    }));
    let span_rereplicated_ms =
        span_ms(events.span(suspected, |k| matches!(k, EventKind::RereplicationComplete)));

    // ---- Invariants (mirror crates/core/tests/chaos.rs) -----------------
    let mut invariant_violations = 0u64;
    let mut leaked_locks = 0u64;
    if !healed {
        eprintln!("seed {seed}: recovery did not complete within {deadline:?}");
        invariant_violations += 1;
    }
    let survivor = engine.nodes().iter().find(|n| n.is_alive());
    match survivor {
        None => invariant_violations += 1,
        Some(survivor) => {
            let mut tx = survivor.begin();
            let mut sum = 0u64;
            let mut readable = true;
            for &addr in &accounts {
                match tx.read(addr) {
                    Ok(bytes) => sum += balance(&bytes),
                    Err(e) => {
                        eprintln!("seed {seed}: final read of {addr:?} failed: {e:?}");
                        readable = false;
                    }
                }
            }
            if !readable || sum != ACCOUNTS as u64 * INITIAL {
                eprintln!(
                    "seed {seed}: conservation violated: {sum} != {}",
                    ACCOUNTS as u64 * INITIAL
                );
                invariant_violations += 1;
            }
        }
    }
    for node in engine.nodes() {
        if node.pending_installs() != 0 || node.backup_log_len() != 0 {
            eprintln!(
                "seed {seed}: {:?} holds {} pending installs / {} log entries after quiesce",
                node.id(),
                node.pending_installs(),
                node.backup_log_len()
            );
            invariant_violations += 1;
        }
    }
    for &addr in &accounts {
        let Some(primary) = engine.cluster().primary_of(addr.region) else {
            invariant_violations += 1;
            continue;
        };
        if !engine.cluster().node(primary).is_alive() {
            eprintln!(
                "seed {seed}: region {:?} promoted to a dead primary",
                addr.region
            );
            invariant_violations += 1;
            continue;
        }
        let locked = engine
            .cluster()
            .node(primary)
            .regions()
            .ensure(addr.region)
            .slot(addr)
            .map(|s| s.header_snapshot().locked)
            .unwrap_or(true);
        if locked {
            eprintln!("seed {seed}: leaked lock on {addr:?}");
            leaked_locks += 1;
        }
    }

    let stats = engine.aggregate_stats();
    let result = ScheduleResult {
        seed,
        victim,
        mode,
        committed: committed.load(Ordering::Relaxed),
        timeline,
        span_config_ms,
        span_unblocked_ms,
        span_rereplicated_ms,
        orphans_rolled_forward: stats.orphans_rolled_forward,
        orphans_rolled_back: stats.orphans_rolled_back,
        retries_absorbed: stats.retries_absorbed,
        backups_caught_up: stats.backups_caught_up,
        invariant_violations,
        leaked_locks,
    };
    engine.shutdown();
    engine.cluster().shutdown();
    result
}

fn main() {
    let schedules: u64 = std::env::var("FARM_CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let cooldown = Duration::from_millis(
        std::env::var("FARM_CHAOS_COOLDOWN_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(30),
    );

    let mut results = Vec::new();
    for seed in 0..schedules {
        eprintln!("schedule seed {seed}...");
        results.push(run_schedule(seed, cooldown));
    }

    println!("seed,victim,mode,committed,span_config_ms,span_unblocked_ms,span_rereplicated_ms,violations,leaked_locks");
    for r in &results {
        println!(
            "{},{},{},{},{:.2},{:.2},{:.2},{},{}",
            r.seed,
            r.victim.0,
            r.mode,
            r.committed,
            r.span_config_ms,
            r.span_unblocked_ms,
            r.span_rereplicated_ms,
            r.invariant_violations,
            r.leaked_locks
        );
    }

    let schedule_rows: Vec<String> = results
        .iter()
        .map(|r| {
            let timeline: Vec<String> = r
                .timeline
                .iter()
                .map(|(t, rate)| format!("[{t:.1},{rate:.0}]"))
                .collect();
            format!(
                concat!(
                    "    {{\"seed\": {}, \"victim\": {}, \"mode\": \"{}\", ",
                    "\"committed\": {}, ",
                    "\"spans_ms\": {{\"suspect_to_config\": {:.3}, ",
                    "\"suspect_to_unblocked\": {:.3}, ",
                    "\"suspect_to_rereplicated\": {:.3}}}, ",
                    "\"orphans_rolled_forward\": {}, \"orphans_rolled_back\": {}, ",
                    "\"retries_absorbed\": {}, \"backups_caught_up\": {}, ",
                    "\"invariant_violations\": {}, \"leaked_locks\": {}, ",
                    "\"timeline_ms_txps\": [{}]}}"
                ),
                r.seed,
                r.victim.0,
                r.mode,
                r.committed,
                r.span_config_ms,
                r.span_unblocked_ms,
                r.span_rereplicated_ms,
                r.orphans_rolled_forward,
                r.orphans_rolled_back,
                r.retries_absorbed,
                r.backups_caught_up,
                r.invariant_violations,
                r.leaked_locks,
                timeline.join(",")
            )
        })
        .collect();

    let total_violations: u64 = results.iter().map(|r| r.invariant_violations).sum();
    let total_leaked: u64 = results.iter().map(|r| r.leaked_locks).sum();
    let max_recovery_ms = results
        .iter()
        .map(|r| r.span_rereplicated_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_committed = results.iter().map(|r| r.committed).min().unwrap_or(0);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"chaos_recovery\",\n",
            "  \"cluster\": {{\"nodes\": 5, \"replication\": 3, ",
            "\"regions_per_node\": 2, \"lease_expiry_ms\": 50}},\n",
            "  \"schedules\": [\n{}\n  ],\n",
            "  \"totals\": {{\"schedules\": {}, \"invariant_violations\": {}, ",
            "\"leaked_locks\": {}, \"max_recovery_ms\": {:.3}, ",
            "\"min_committed\": {}}}\n",
            "}}\n"
        ),
        schedule_rows.join(",\n"),
        results.len(),
        total_violations,
        total_leaked,
        max_recovery_ms,
        min_committed
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    eprintln!("wrote BENCH_recovery.json");
}
