//! Section 5.6: operation logging. Compares the default configuration
//! (3-way data replication, strict serializability) with the NAM-DB-like
//! configuration: operation logging, multi-versioning, non-strict snapshot
//! isolation.

use farm_bench::{bench_duration, run_tpcc, small_tpcc, tpcc_setup};
use farm_core::{EngineConfig, TxOptions};

fn main() {
    let duration = bench_duration(2.0);
    println!("configuration,neworders_per_s");
    let (engine, db) = tpcc_setup(3, EngineConfig::default(), small_tpcc());
    let r = run_tpcc(&engine, &db, 6, duration, TxOptions::serializable());
    println!("replicated-data strict-serializable,{:.0}", r.throughput);
    engine.shutdown();
    engine.cluster().shutdown();

    let oplog_cfg = EngineConfig {
        operation_logging: true,
        ..EngineConfig::multi_version()
    };
    let (engine, db) = tpcc_setup(3, oplog_cfg, small_tpcc());
    let r = run_tpcc(
        &engine,
        &db,
        6,
        duration,
        TxOptions::snapshot_isolation_non_strict(),
    );
    println!("operation-logging non-strict SI,{:.0}", r.throughput);
    engine.shutdown();
    engine.cluster().shutdown();
}
