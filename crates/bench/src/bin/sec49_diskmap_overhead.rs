//! Section 4.9: memory overhead of the on-disk-backup redirection map with
//! and without the global-time version map optimization (FaRMv1 stored an
//! 8-byte version per object; FaRMv2 prunes the version map below the GC
//! safe point, leaving ~1-2 bytes per object).

use farm_disklog::{DiskBackup, DiskBackupConfig};

fn main() {
    println!("objects,farmv1_bytes_per_object,farmv2_bytes_per_object,reduction");
    for objects in [10_000u64, 100_000, 500_000] {
        let mut backup = DiskBackup::new(DiskBackupConfig::default());
        for i in 0..objects {
            backup.apply_update(i, /*write_ts=*/ i + 1, &[0u8; 64]);
        }
        // Advance the GC safe point past every write: the version map drains.
        backup.prune_versions(objects + 2);
        let v2 = backup.map_overhead_bytes() as f64 / objects as f64;
        let v1 = backup.farmv1_equivalent_overhead_bytes() as f64 / objects as f64;
        println!("{objects},{v1:.2},{v2:.2},{:.1}x", v1 / v2);
    }
}
