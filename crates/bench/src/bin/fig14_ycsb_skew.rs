//! Figure 14: YCSB throughput (50/50 read/update) as a function of the Zipf
//! skew parameter θ, for BASELINE and FaRMv2 — plus a FaRMv2 multiget
//! variant whose reads fetch 8 keys per transaction through the batched
//! `read_many` path.
//!
//! Besides throughput, each row reports **messages per logical read**
//! (`msgs_per_read`): 1.0 when every read is its own metered message,
//! dropping below 1.0 as doorbell batching and the local-bypass fast path
//! fold reads together.

use farm_bench::{bench_duration, run_ycsb, ycsb_setup};
use farm_core::{EngineConfig, TxOptions};
use farm_workloads::YcsbConfig;

fn main() {
    let duration = bench_duration(1.5);
    println!("system,theta,ops_per_s,abort_rate,msgs_per_read");
    for (name, cfg, multiget) in [
        ("BASELINE", EngineConfig::baseline(), 0),
        ("FaRMv2", EngineConfig::default(), 0),
        ("FaRMv2-mget8", EngineConfig::default(), 8),
    ] {
        for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99] {
            let (engine, db) = ycsb_setup(
                3,
                cfg,
                YcsbConfig {
                    keys: 5_000,
                    value_size: 64,
                    read_fraction: 0.5,
                    zipf_theta: theta,
                    scan_length: 0,
                    multiget_size: multiget,
                },
            );
            let r = run_ycsb(&engine, &db, 6, duration, TxOptions::serializable());
            println!(
                "{name},{theta},{:.0},{:.4},{:.3}",
                r.throughput, r.abort_rate, r.msgs_per_read
            );
            engine.shutdown();
            engine.cluster().shutdown();
        }
    }
}
