//! Figure 14: YCSB throughput (50/50 read/update) as a function of the Zipf
//! skew parameter θ, for BASELINE and FaRMv2.

use farm_bench::{bench_duration, run_ycsb, ycsb_setup};
use farm_core::{EngineConfig, TxOptions};
use farm_workloads::YcsbConfig;

fn main() {
    let duration = bench_duration(1.5);
    println!("system,theta,ops_per_s,abort_rate");
    for (name, cfg) in [
        ("BASELINE", EngineConfig::baseline()),
        ("FaRMv2", EngineConfig::default()),
    ] {
        for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99] {
            let (engine, db) = ycsb_setup(
                3,
                cfg,
                YcsbConfig {
                    keys: 5_000,
                    value_size: 64,
                    read_fraction: 0.5,
                    zipf_theta: theta,
                    scan_length: 0,
                },
            );
            let r = run_ycsb(&engine, &db, 6, duration, TxOptions::serializable());
            println!("{name},{theta},{:.0},{:.4}", r.throughput, r.abort_rate);
            engine.shutdown();
            engine.cluster().shutdown();
        }
    }
}
