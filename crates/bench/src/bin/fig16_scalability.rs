//! Figure 16: TPC-C throughput and mean uncertainty wait as the cluster
//! grows (the clock-master sync rate is fixed in aggregate, so per-node
//! synchronization becomes less frequent with more machines).

use farm_bench::{bench_duration, run_tpcc, small_tpcc};
use farm_core::{Engine, EngineConfig, TxOptions};
use farm_workloads::TpccDatabase;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let duration = bench_duration(1.5);
    println!("nodes,neworders_per_s,mean_uncertainty_wait_us");
    for nodes in [3usize, 4, 6, 8] {
        let mut cluster_cfg = farm_bench::bench_cluster(nodes);
        // Fixed aggregate synchronization rate: per-node interval grows with
        // the cluster size (200k/s aggregate in the paper).
        cluster_cfg.control_interval = Duration::from_micros(250 * nodes as u64);
        let engine = Engine::start_cluster(cluster_cfg, EngineConfig::default());
        let db = Arc::new(TpccDatabase::load(&engine, small_tpcc()).expect("load"));
        let r = run_tpcc(&engine, &db, 2 * nodes, duration, TxOptions::serializable());
        // Mean uncertainty wait across all nodes' clocks.
        let mean_wait_us: f64 = engine
            .cluster()
            .nodes()
            .iter()
            .map(|n| n.clock().stats().mean_wait_ns() / 1_000.0)
            .sum::<f64>()
            / nodes as f64;
        println!("{nodes},{:.0},{:.2}", r.throughput, mean_wait_us);
        engine.shutdown();
        engine.cluster().shutdown();
    }
}
