//! Figure 16: scalability.
//!
//! Two modes:
//!
//! * **Cluster sweep** (default): TPC-C throughput and mean uncertainty wait
//!   as the cluster grows (the clock-master sync rate is fixed in aggregate,
//!   so per-node synchronization becomes less frequent with more machines).
//!
//! * **Coordinator-thread sweep** (`--threads N`): txns/sec of a YCSB-C-style
//!   read-mostly mix at 1/2/4/…/N coordinator threads on a fixed cluster —
//!   the per-machine fast-path scaling the lock-free engine hot path targets
//!   (sharded active-tx slots, per-thread old-version allocation, wait-free
//!   slab index). Emits `BENCH_scalability.json` alongside the CSV so runs
//!   before and after hot-path changes are comparable.

use farm_bench::{bench_duration, run_tpcc, run_ycsb, small_tpcc, ycsb_setup};
use farm_core::active::ActiveTxTable;
use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_workloads::{TpccDatabase, YcsbConfig, YcsbDatabase};
use parking_lot::Mutex;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let max_threads: usize = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(8)
            .max(1);
        threads_sweep(max_threads);
    } else {
        cluster_sweep();
    }
}

/// The original Figure 16 shape: throughput vs cluster size.
fn cluster_sweep() {
    let duration = bench_duration(1.5);
    println!("nodes,neworders_per_s,mean_uncertainty_wait_us");
    for nodes in [3usize, 4, 6, 8] {
        let mut cluster_cfg = farm_bench::bench_cluster(nodes);
        // Fixed aggregate synchronization rate: per-node interval grows with
        // the cluster size (200k/s aggregate in the paper).
        cluster_cfg.control_interval = Duration::from_micros(250 * nodes as u64);
        let engine = Engine::start_cluster(cluster_cfg, EngineConfig::default());
        let db = Arc::new(TpccDatabase::load(&engine, small_tpcc()).expect("load"));
        let r = run_tpcc(&engine, &db, 2 * nodes, duration, TxOptions::serializable());
        // Mean uncertainty wait across all nodes' clocks.
        let mean_wait_us: f64 = engine
            .cluster()
            .nodes()
            .iter()
            .map(|n| n.clock().stats().mean_wait_ns() / 1_000.0)
            .sum::<f64>()
            / nodes as f64;
        println!("{nodes},{:.0},{:.2}", r.throughput, mean_wait_us);
        engine.shutdown();
        engine.cluster().shutdown();
    }
}

/// Per-row result of the coordinator-thread sweep.
struct SweepRow {
    threads: usize,
    txns_per_sec: f64,
    keys_per_sec: f64,
    abort_rate: f64,
    /// Same sweep point with the seed's node-global `Mutex<BTreeMap>`
    /// active-tx critical sections layered back on top (emulated in the
    /// driver), isolating exactly what the lock-free slot table removed.
    baseline_txns_per_sec: f64,
}

/// Runs the read-mostly YCSB mix with every transaction additionally paying
/// the seed's `ActiveMap` cost: one `Mutex<BTreeMap>` insert at begin and
/// one locked removal at finish, shared by all workers on the node — the
/// single-global-mutex baseline this PR replaces, reconstructed so before
/// and after stay comparable on one binary.
fn run_ycsb_with_global_mutex(
    engine: &Arc<Engine>,
    db: &Arc<YcsbDatabase>,
    threads: usize,
    duration: Duration,
    opts: TxOptions,
) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let serial = Arc::new(AtomicU64::new(0));
    let nodes = engine.nodes().len() as u32;
    // One ActiveMap per node, exactly as the seed kept one per NodeEngine.
    let active_maps: Arc<Vec<Mutex<BTreeMap<u64, u64>>>> =
        Arc::new((0..nodes).map(|_| Mutex::new(BTreeMap::new())).collect());
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        let serial = Arc::clone(&serial);
        let active_maps = Arc::clone(&active_maps);
        handles.push(std::thread::spawn(move || {
            let node = NodeId(t as u32 % nodes);
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xBA5E + t as u64);
            while !stop.load(Ordering::Relaxed) {
                let op = db.next_op(&mut rng);
                let s = serial.fetch_add(1, Ordering::Relaxed);
                active_maps[node.index()].lock().insert(s, s);
                let ok = db.execute(node, &op, opts).is_ok();
                active_maps[node.index()].lock().remove(&s);
                if ok {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    committed.load(Ordering::Relaxed) as f64 / duration.as_secs_f64()
}

/// Per-operation cost of the active-tx structures themselves, single
/// thread: nanoseconds per begin/finish pair on the lock-free slot table vs
/// the seed's `Mutex<BTreeMap>`. This isolates the per-op win even on
/// machines (or CI runners) with too few cores to show parallel scaling.
fn structure_ns_per_begin_finish() -> (f64, f64) {
    const ROUNDS: u64 = 2_000_000;
    let table = ActiveTxTable::new();
    let start = Instant::now();
    for i in 0..ROUNDS {
        let tok = table.register(i, 100 + i);
        table.unregister(tok);
    }
    let table_ns = start.elapsed().as_nanos() as f64 / ROUNDS as f64;

    let map: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
    let start = Instant::now();
    for i in 0..ROUNDS {
        map.lock().insert(i, 100 + i);
        map.lock().remove(&i);
    }
    let map_ns = start.elapsed().as_nanos() as f64 / ROUNDS as f64;
    (table_ns, map_ns)
}

/// Coordinator-thread sweep on a fixed 3-node cluster: read-mostly YCSB
/// (95% reads, mild skew) — begin/read/finish dominate, so throughput tracks
/// the node-local metadata path rather than commit-protocol traffic.
fn threads_sweep(max_threads: usize) {
    let duration = bench_duration(1.5);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    let ycsb = YcsbConfig {
        keys: 20_000,
        value_size: 64,
        read_fraction: 0.95,
        zipf_theta: 0.5,
        scan_length: 0,
        multiget_size: 0,
    };
    println!("threads,txns_per_s,baseline_txns_per_s,keys_per_s,abort_rate");
    let mut rows: Vec<SweepRow> = Vec::new();
    for &threads in &thread_counts {
        let (engine, db) = ycsb_setup(3, EngineConfig::default(), ycsb.clone());
        let r = run_ycsb(&engine, &db, threads, duration, TxOptions::serializable());
        let txns_per_sec = r.committed as f64 / duration.as_secs_f64();
        let baseline_txns_per_sec =
            run_ycsb_with_global_mutex(&engine, &db, threads, duration, TxOptions::serializable());
        println!(
            "{threads},{:.0},{:.0},{:.0},{:.4}",
            txns_per_sec, baseline_txns_per_sec, r.throughput, r.abort_rate
        );
        rows.push(SweepRow {
            threads,
            txns_per_sec,
            keys_per_sec: r.throughput,
            abort_rate: r.abort_rate,
            baseline_txns_per_sec,
        });
        engine.shutdown();
        engine.cluster().shutdown();
    }
    let (table_ns, mutex_map_ns) = structure_ns_per_begin_finish();
    println!("structure_ns_per_begin_finish,slot_table,{table_ns:.1}");
    println!("structure_ns_per_begin_finish,mutex_btreemap,{mutex_map_ns:.1}");
    let json = sweep_json(&rows, duration, table_ns, mutex_map_ns);
    std::fs::write("BENCH_scalability.json", &json).expect("write BENCH_scalability.json");
    eprintln!("wrote BENCH_scalability.json");
}

/// Hand-rolled JSON (the workspace builds offline; no serde).
fn sweep_json(rows: &[SweepRow], duration: Duration, table_ns: f64, mutex_map_ns: f64) -> String {
    let base = rows
        .first()
        .map(|r| r.txns_per_sec)
        .unwrap_or(0.0)
        .max(f64::MIN_POSITIVE);
    let results: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"txns_per_sec\": {:.1}, \
                 \"baseline_global_mutex_txns_per_sec\": {:.1}, \"keys_per_sec\": {:.1}, \
                 \"abort_rate\": {:.5}, \"speedup_vs_1_thread\": {:.3}, \
                 \"speedup_vs_global_mutex\": {:.3}}}",
                r.threads,
                r.txns_per_sec,
                r.baseline_txns_per_sec,
                r.keys_per_sec,
                r.abort_rate,
                r.txns_per_sec / base,
                r.txns_per_sec / r.baseline_txns_per_sec.max(f64::MIN_POSITIVE)
            )
        })
        .collect();
    let peak = rows.iter().map(|r| r.txns_per_sec).fold(0.0, f64::max);
    format!(
        "{{\n  \"benchmark\": \"fig16_scalability --threads\",\n  \
         \"workload\": \"ycsb-c-style read-mostly (95% reads, zipf theta 0.5, 20k keys)\",\n  \
         \"nodes\": 3,\n  \"duration_secs\": {:.2},\n  \"host_cpus\": {},\n  \
         \"engine\": \"farmv2 single-version, strict serializable\",\n  \
         \"note\": \"baseline rows re-add the seed's node-global Mutex<BTreeMap> \
         active-tx critical sections; parallel speedup requires >= as many host \
         CPUs as coordinator threads, so expect speedup_vs_global_mutex ~1.0 \
         +/- 0.05 on small hosts and real separation only with dedicated \
         cores. The former 2-thread dip (speedup_vs_1_thread 0.798 while ~0.99 \
         at 4) was the slave-clock strict-wait spin: thread 1 runs on node 1, \
         whose uncertainty waits are ~2x the master's (~2us), and those waits \
         spun without ever reaching the old 1-in-128 yield — burning the \
         shared core for half of every begin while thread 0 starved; with 4+ \
         threads the spins hid behind each other. NodeClock::wait_until_past \
         now yields every iteration while >= 1us of wall-clock wait remains \
         (donating the quantum costs the waiter nothing), which restored the \
         2-thread point to ~1.0 on this 1-CPU host. The slot-table structure \
         cost includes the per-shard occupancy counters (two extra uncontended \
         atomics per begin/finish) that buy the O(threads) scan\",\n  \
         \"results\": [\n{}\n  ],\n  \"peak_speedup_vs_1_thread\": {:.3},\n  \
         \"structure_ns_per_begin_finish\": {{\"slot_table\": {:.1}, \
         \"mutex_btreemap\": {:.1}, \"speedup\": {:.2}}}\n}}\n",
        duration.as_secs_f64(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        results.join(",\n"),
        peak / base,
        table_ns,
        mutex_map_ns,
        mutex_map_ns / table_ns.max(f64::MIN_POSITIVE)
    )
}
