//! Criterion micro-benchmarks for the memory subsystem: slab allocation and
//! old-version allocation/GC.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use farm_memory::{OldVersion, OldVersionStore, Slab, ThreadOldAllocator};

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("slab_alloc_free", |b| {
        let slab = Slab::new(64, 1024);
        b.iter(|| {
            let s = slab.allocate().unwrap();
            slab.free(s).unwrap();
        })
    });
    group.bench_function("old_version_alloc", |b| {
        let store = Arc::new(OldVersionStore::new(1 << 20, 64 << 20));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let payload = Bytes::from(vec![0u8; 128]);
        b.iter(|| {
            alloc
                .allocate(OldVersion {
                    ts: 1,
                    ovp: None,
                    data: payload.clone(),
                })
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
