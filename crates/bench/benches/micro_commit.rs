//! Criterion micro-benchmarks of the commit protocol: read-only, single-
//! object-update and multi-object-update transactions, FaRMv2 vs baseline.
//!
//! Besides latency, each configuration reports **messages per commit**
//! (from the batch-aware `NetStats` counters): the batched commit driver
//! sends one LOCK / COMMIT-PRIMARY message per destination machine, so the
//! multi-update workload's message count stays flat as the write set grows
//! while the logical-operation count scales with it.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_core::{Engine, EngineConfig, NodeId};
use farm_kernel::ClusterConfig;

/// Runs `commits` transactions via `body` and prints the per-commit message
/// and operation counts measured on the coordinator.
fn report_messages_per_commit(
    label: &str,
    engine: &std::sync::Arc<Engine>,
    coordinator: NodeId,
    commits: u64,
    mut body: impl FnMut(),
) {
    let node = engine.node(coordinator);
    let before = node.handle().stats().snapshot();
    let stats_before = node.stats();
    for _ in 0..commits {
        body();
    }
    let delta = node.handle().stats().snapshot().delta(&before);
    let stats = node.stats().delta(&stats_before);
    println!(
        "commit-traffic {label:<28} {:>6.1} msgs/commit  {:>6.1} ops/commit  lock-batch {:>4.1}",
        delta.total_messages() as f64 / commits as f64,
        delta.total_ops() as f64 / commits as f64,
        stats.mean_lock_batch_size(),
    );
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for (name, cfg) in [
        ("farmv2", EngineConfig::default()),
        ("baseline", EngineConfig::baseline()),
    ] {
        let engine = Engine::start_cluster(ClusterConfig::test(3), cfg);
        let node = engine.node(NodeId(0));
        let mut setup = node.begin();
        let addrs: Vec<_> = (0..8)
            .map(|_| setup.alloc(vec![0u8; 64]).unwrap())
            .collect();
        setup.commit().unwrap();

        group.bench_function(format!("{name}_read_only"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                tx.read(addrs[0]).unwrap();
                tx.commit().unwrap()
            })
        });
        group.bench_function(format!("{name}_single_update"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                tx.write(addrs[0], vec![1u8; 64]).unwrap();
                tx.commit().unwrap()
            })
        });
        group.bench_function(format!("{name}_multi_update"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                for a in &addrs {
                    tx.write(*a, vec![2u8; 64]).unwrap();
                }
                tx.commit().unwrap()
            })
        });

        // Message-per-commit accounting for the same three shapes.
        report_messages_per_commit(
            &format!("{name}_single_update"),
            &engine,
            NodeId(0),
            100,
            || {
                let mut tx = node.begin();
                tx.write(addrs[0], vec![1u8; 64]).unwrap();
                tx.commit().unwrap();
            },
        );
        report_messages_per_commit(
            &format!("{name}_multi_update_8"),
            &engine,
            NodeId(0),
            100,
            || {
                let mut tx = node.begin();
                for a in &addrs {
                    tx.write(*a, vec![2u8; 64]).unwrap();
                }
                tx.commit().unwrap();
            },
        );

        engine.shutdown();
        engine.cluster().shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
