//! Criterion micro-benchmarks of the commit protocol: read-only, single-
//! object-update and multi-object-update transactions, FaRMv2 vs baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_core::{Engine, EngineConfig, NodeId};
use farm_kernel::ClusterConfig;

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);
    for (name, cfg) in [("farmv2", EngineConfig::default()), ("baseline", EngineConfig::baseline())] {
        let engine = Engine::start_cluster(ClusterConfig::test(3), cfg);
        let node = engine.node(NodeId(0));
        let mut setup = node.begin();
        let addrs: Vec<_> = (0..8).map(|_| setup.alloc(vec![0u8; 64]).unwrap()).collect();
        setup.commit().unwrap();

        group.bench_function(format!("{name}_read_only"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                tx.read(addrs[0]).unwrap();
                tx.commit().unwrap()
            })
        });
        group.bench_function(format!("{name}_single_update"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                tx.write(addrs[0], vec![1u8; 64]).unwrap();
                tx.commit().unwrap()
            })
        });
        group.bench_function(format!("{name}_multi_update"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                for a in &addrs {
                    tx.write(*a, vec![2u8; 64]).unwrap();
                }
                tx.commit().unwrap()
            })
        });
        engine.shutdown();
        engine.cluster().shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
