//! Criterion micro-benchmarks for the global-time subsystem: interval
//! computation and strict/non-strict timestamp acquisition.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_clock::{ClockConfig, MonotonicClock, NodeClock, SharedClock, SyncSample, TsMode};

fn bench_clock(c: &mut Criterion) {
    let base: SharedClock = Arc::new(MonotonicClock::new());
    let master = NodeClock::new_master(base.clone(), ClockConfig::default());
    let slave = NodeClock::new_slave(base.clone(), ClockConfig::default());
    let now = base.now_ns();
    slave.record_sync(SyncSample {
        t_send: now,
        t_cm: now,
        t_recv: now + 20_000,
    });

    let mut group = c.benchmark_group("clock");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("time_interval_slave", |b| b.iter(|| slave.time().unwrap()));
    group.bench_function("get_ts_master_strict", |b| {
        b.iter(|| master.get_ts(TsMode::StrictWait))
    });
    group.bench_function("get_ts_slave_non_strict", |b| {
        b.iter(|| slave.get_ts(TsMode::NonStrictRead))
    });
    group.finish();
}

criterion_group!(benches, bench_clock);
criterion_main!(benches);
