//! Criterion micro-benchmarks of the engine's node-local hot path — the
//! structures the lock-free refactor replaced:
//!
//! * `begin_finish`: one transaction begin + read-only commit, i.e. one
//!   registration CAS and one withdrawal store in the active-tx slot table
//!   (plus the clock read). Previously two `Mutex<BTreeMap>` critical
//!   sections.
//! * `begin_finish_threads/N`: the same cycle hammered from N concurrent
//!   threads on one node, reported per-transaction — flat scaling here is
//!   what makes `fig16_scalability --threads` scale.
//! * `oat_scan`: the wait-free oldest-active-timestamp minimum scan the GC
//!   watermark traffic performs every control round.
//! * `local_read`: a 1-key read-only transaction against a local primary —
//!   begin + wait-free slab-index lookup + finish.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_core::{Addr, Engine, EngineConfig, NodeId};
use farm_kernel::ClusterConfig;

fn setup() -> (Arc<Engine>, Addr) {
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
    let node = engine.node(NodeId(0));
    let region = node.home_region().expect("node 0 holds a primary");
    let mut tx = node.begin();
    let addr = tx.alloc_in(region, vec![7u8; 64]).unwrap();
    tx.commit().unwrap();
    (engine, addr)
}

fn bench_engine_hot_path(c: &mut Criterion) {
    let (engine, addr) = setup();
    let node = engine.node(NodeId(0));

    let mut group = c.benchmark_group("engine");
    group
        .measurement_time(Duration::from_millis(400))
        .sample_size(10);

    group.bench_function("begin_finish", |b| {
        b.iter(|| {
            let tx = node.begin();
            tx.commit().unwrap()
        })
    });

    group.bench_function("local_read", |b| {
        b.iter(|| {
            let mut tx = node.begin();
            let v = tx.read(addr).unwrap();
            tx.commit().unwrap();
            v
        })
    });

    group.bench_function("oat_scan", |b| {
        let handle = node.handle();
        b.iter(|| handle.oat_local())
    });

    for threads in [2usize, 4, 8] {
        group.bench_function(format!("begin_finish_threads/{threads}"), |b| {
            b.iter(|| {
                // One iteration = `threads` workers of 64 begin/finish cycles
                // each; per-cycle cost is this time / (threads * 64).
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let node = engine.node(NodeId(0));
                        scope.spawn(move || {
                            for _ in 0..64 {
                                let tx = node.begin();
                                tx.commit().unwrap();
                            }
                        });
                    }
                })
            })
        });
    }
    group.finish();

    engine.shutdown();
    engine.cluster().shutdown();
}

criterion_group!(benches, bench_engine_hot_path);
criterion_main!(benches);
