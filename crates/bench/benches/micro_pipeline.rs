//! Criterion micro-benchmark of the commit-pipeline reactor itself: pure
//! scheduler + protocol CPU per committed transaction at depths 1 / 8 / 32.
//!
//! The engine runs a zero-latency model, so drivers' completion deadlines
//! expire the moment they are issued: the reactor never sleeps, and the
//! measured time is submit + heap churn + phase issue + install drain —
//! the serial fraction the Amdahl section of `bench_commit_pipeline`
//! extrapolates from. Throughput is reported per element (per commit), so
//! the depth-32 row directly shows what deeper pipelines cost in scheduler
//! overhead once flight time is out of the picture.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_core::{Engine, EngineConfig, NodeId, TxOptions};
use farm_kernel::ClusterConfig;
use farm_net::LatencyModel;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_advance");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let config = EngineConfig {
        latency: LatencyModel {
            rdma_read_ns: 0,
            rdma_write_ns: 0,
            rpc_ns: 0,
            spin_threshold_ns: 0,
        },
        gc_interval: Duration::from_secs(3600),
        ..EngineConfig::default()
    };
    let engine = Engine::start_cluster(ClusterConfig::test(3), config);
    let node = engine.node(NodeId(0));
    let region = engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| engine.cluster().primary_of(r) != Some(NodeId(0)))
        .expect("test cluster has a remote region");
    let mut setup = node.begin();
    let addrs: Vec<_> = (0..64)
        .map(|_| setup.alloc_in(region, vec![0u8; 64]).unwrap())
        .collect();
    setup.commit().unwrap();
    node.drain_pending_installs();
    let opts = TxOptions::serializable_non_strict();
    let payload = bytes::Bytes::from(vec![7u8; 64]);

    // Every row commits the same 32-transaction batch (depth 1 pumps them
    // one at a time, depth 32 keeps them all in flight), so the reported
    // times are directly comparable: divide by 32 for ns per commit.
    const BATCH: usize = 32;
    for depth in [1usize, 8, 32] {
        group.bench_function(format!("depth_{depth}_batch{BATCH}"), |b| {
            let mut pipeline = node.pipeline(depth);
            let mut i = 0usize;
            b.iter(|| {
                let mut done = 0usize;
                while done < BATCH {
                    for _ in 0..depth.min(BATCH - done) {
                        let mut tx = node.begin_with(opts);
                        tx.overwrite(addrs[i % addrs.len()], payload.clone())
                            .unwrap();
                        i += 1;
                        pipeline.submit(tx);
                    }
                    let results = pipeline.drain();
                    assert!(
                        results.iter().all(|r| r.is_ok()),
                        "disjoint zero-latency commits must not abort"
                    );
                    done += results.len();
                }
                // Install work is part of the per-commit CPU bill.
                node.drain_pending_installs();
                done
            })
        });
    }
    group.finish();
    engine.shutdown();
    engine.cluster().shutdown();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
