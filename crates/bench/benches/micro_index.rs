//! Criterion micro-benchmarks of the transactional indexes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_core::{Engine, EngineConfig, NodeId};
use farm_index::{BTree, HashTable};
use farm_kernel::ClusterConfig;

fn bench_index(c: &mut Criterion) {
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
    let node = engine.node(NodeId(0));
    let table = HashTable::create(&engine, NodeId(0), 64).unwrap();
    let tree = BTree::create(&engine, NodeId(0));
    {
        let mut tx = node.begin();
        for k in 0..200u64 {
            table
                .put(&mut tx, &k.to_be_bytes(), &k.to_le_bytes())
                .unwrap();
            tree.put(&mut tx, k, &k.to_le_bytes()).unwrap();
        }
        tx.commit().unwrap();
    }
    let mut group = c.benchmark_group("index");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("hashtable_get", |b| {
        b.iter(|| {
            let mut tx = node.begin();
            table.get(&mut tx, &77u64.to_be_bytes()).unwrap();
            tx.commit().unwrap()
        })
    });
    group.bench_function("btree_get", |b| {
        b.iter(|| {
            let mut tx = node.begin();
            tree.get(&mut tx, 77).unwrap();
            tx.commit().unwrap()
        })
    });
    group.bench_function("btree_scan_20", |b| {
        b.iter(|| {
            let mut tx = node.begin();
            tree.scan(&mut tx, 50, 20).unwrap();
            tx.commit().unwrap()
        })
    });
    group.finish();
    engine.shutdown();
    engine.cluster().shutdown();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
