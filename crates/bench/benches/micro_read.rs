//! Criterion micro-benchmarks of the batched read path: a single `read`
//! versus `read_many` of 1 / 8 / 64 keys, against a region whose primary is
//! the coordinator's own machine (local bypass — no metered messages) and
//! against a remote primary (one doorbell-batched message per primary).
//!
//! Besides latency, each configuration reports **messages per read** from
//! the batch-aware `NetStats` counters: remote `read_many` of K keys on one
//! primary costs 1/K messages per read, and local reads cost none at all.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use farm_core::{Addr, Engine, EngineConfig, NodeId, RegionId};
use farm_kernel::ClusterConfig;
use farm_net::Verb;

/// Finds a region primaried on `local` (when `want_local`) or on some other
/// machine (when not), and allocates `count` objects there.
fn setup_objects(
    engine: &Arc<Engine>,
    coordinator: NodeId,
    want_local: bool,
    count: usize,
) -> (RegionId, Vec<Addr>) {
    let region = engine
        .cluster()
        .regions()
        .into_iter()
        .find(|&r| {
            let primary = engine.cluster().primary_of(r).unwrap();
            (primary == coordinator) == want_local
        })
        .expect("test cluster has local and remote regions");
    let node = engine.node(coordinator);
    let mut tx = node.begin();
    let addrs: Vec<Addr> = (0..count)
        .map(|_| tx.alloc_in(region, vec![0u8; 64]).unwrap())
        .collect();
    tx.commit().unwrap();
    (region, addrs)
}

/// Runs `reads` read-only transactions via `body` and prints the per-read
/// message count measured on the coordinator.
fn report_messages_per_read(
    label: &str,
    engine: &Arc<Engine>,
    coordinator: NodeId,
    rounds: u64,
    keys_per_round: u64,
    mut body: impl FnMut(),
) {
    let node = engine.node(coordinator);
    let before = node.handle().stats().snapshot();
    for _ in 0..rounds {
        body();
    }
    let delta = node.handle().stats().snapshot().delta(&before);
    let reads = rounds * keys_per_round;
    println!(
        "read-traffic {label:<28} {:>7.3} msgs/read  {:>7.3} read-ops/read",
        delta.count(Verb::RdmaRead) as f64 / reads as f64,
        delta.ops(Verb::RdmaRead) as f64 / reads as f64,
    );
}

fn bench_read(c: &mut Criterion) {
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
    let coordinator = NodeId(0);
    let node = engine.node(coordinator);
    let mut group = c.benchmark_group("read");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    for (place, want_local) in [("local", true), ("remote", false)] {
        let (_region, addrs) = setup_objects(&engine, coordinator, want_local, 64);

        group.bench_function(format!("{place}_single_read"), |b| {
            b.iter(|| {
                let mut tx = node.begin();
                let v = tx.read(addrs[0]).unwrap();
                tx.commit().unwrap();
                v
            })
        });
        for k in [1usize, 8, 64] {
            group.bench_function(format!("{place}_read_many_{k}"), |b| {
                b.iter(|| {
                    let mut tx = node.begin();
                    let v = tx.read_many(&addrs[..k]).unwrap();
                    tx.commit().unwrap();
                    v
                })
            });
        }

        report_messages_per_read(
            &format!("{place}_single_read x8"),
            &engine,
            coordinator,
            200,
            8,
            || {
                let mut tx = node.begin();
                for a in &addrs[..8] {
                    let _ = tx.read(*a).unwrap();
                }
                tx.commit().unwrap();
            },
        );
        report_messages_per_read(
            &format!("{place}_read_many x8"),
            &engine,
            coordinator,
            200,
            8,
            || {
                let mut tx = node.begin();
                let _ = tx.read_many(&addrs[..8]).unwrap();
                tx.commit().unwrap();
            },
        );
    }
    group.finish();
    engine.shutdown();
}

criterion_group!(benches, bench_read);
criterion_main!(benches);
