//! Regions and the per-machine region store.
//!
//! A region is the unit of replication: all objects in a region share the
//! same primary and backup machines (Section 3.1). Each machine keeps a
//! [`RegionStore`] holding the replicas (primary or backup) it hosts. Which
//! machine is primary for which region is decided by the control plane
//! (`farm-kernel`); this crate only manages the memory.

use std::collections::HashMap;
use std::sync::Arc;

use arc_swap::ArcSwap;
use bytes::Bytes;
use parking_lot::Mutex;

use crate::addr::{Addr, RegionId};
use crate::object::{ConsistentRead, LockOutcome, ObjectSlot};
use crate::size_class_for;
use crate::slab::Slab;

/// Sizing parameters for regions and slabs. The paper uses 2 GB regions and
/// 1 MB slabs; the defaults here are scaled down so tests and laptop-scale
/// benchmarks do not need gigabytes of memory, but the ratios are preserved
/// and everything is configurable.
#[derive(Debug, Clone, Copy)]
pub struct RegionConfig {
    /// Bytes of object payload per slab (determines slots per slab given the
    /// size class).
    pub slab_bytes: usize,
    /// Maximum number of slabs per region.
    pub max_slabs: u16,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            slab_bytes: 64 * 1024,
            max_slabs: 1024,
        }
    }
}

impl RegionConfig {
    /// A tiny configuration for unit tests.
    pub fn small() -> Self {
        RegionConfig {
            slab_bytes: 4 * 1024,
            max_slabs: 64,
        }
    }
}

/// Errors from region-level allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The requested object size exceeds the largest size class.
    ObjectTooLarge(usize),
    /// The region is out of slabs and every slab of the class is full.
    OutOfMemory,
    /// The address does not name an existing slab/slot.
    BadAddress(Addr),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::ObjectTooLarge(s) => {
                write!(f, "object of {s} bytes exceeds max size class")
            }
            RegionError::OutOfMemory => write!(f, "region out of memory"),
            RegionError::BadAddress(a) => write!(f, "bad address {a}"),
        }
    }
}

impl std::error::Error for RegionError {}

/// Failure of a batched lock acquisition: the address that failed and why.
/// Every lock already acquired by the failing batch has been released when
/// this is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLockFailure {
    /// The first address whose lock could not be taken.
    pub addr: Addr,
    /// Why the lock attempt failed.
    pub outcome: LockOutcome,
}

/// Expected-timestamp sentinel marking a **blind write** in a lock batch:
/// the transaction wrote the object without reading it, so the LOCK phase
/// acquires at whatever version is installed ([`ObjectSlot::try_lock_blind`])
/// instead of version-checking. Real timestamps are clock nanoseconds and
/// can never reach this value.
pub const LOCK_ANY_VERSION: u64 = u64::MAX;

/// Number of tombstone shards per region. Commit-time tombstoning locks only
/// the shard of the freed slot's slab, so concurrent frees to different slabs
/// and the GC sweep (which visits shards one at a time) do not serialize.
const TOMBSTONE_SHARDS: usize = 16;

/// One replica of a region: a set of slabs.
///
/// The slab table is an **append-only snapshot index**: readers traverse the
/// current snapshot with one wait-free atomic load ([`ArcSwap::load`]) and no
/// lock, so `read_consistent_batch`, `try_lock_batch` and GC sweeps never
/// contend with each other. Slab creation (rare — bounded by
/// [`RegionConfig::max_slabs`] over the region's lifetime) copies the table,
/// appends, and publishes the new snapshot under the `grow` mutex.
pub struct Region {
    id: RegionId,
    config: RegionConfig,
    slabs: ArcSwap<Vec<Arc<Slab>>>,
    /// Serializes snapshot replacement (slab creation); never taken on the
    /// read/lock/sweep paths.
    grow: Mutex<()>,
    /// Tombstoned slots awaiting reclamation: `(addr, free timestamp)`,
    /// sharded by slab index. Populated by multi-version frees, drained by
    /// the GC sweep once the safe point passes the free timestamp.
    tombstones: Vec<Mutex<Vec<(Addr, u64)>>>,
}

impl Region {
    /// Creates an empty region.
    pub fn new(id: RegionId, config: RegionConfig) -> Self {
        Region {
            id,
            config,
            slabs: ArcSwap::from_pointee(Vec::new()),
            grow: Mutex::new(()),
            tombstones: (0..TOMBSTONE_SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The tombstone shard responsible for `addr` (keyed by slab index, the
    /// same granularity at which commits and sweeps actually conflict).
    fn tombstone_shard(&self, addr: Addr) -> &Mutex<Vec<(Addr, u64)>> {
        &self.tombstones[addr.slab as usize % TOMBSTONE_SHARDS]
    }

    /// Number of slabs currently carved out of the region.
    pub fn slab_count(&self) -> usize {
        self.slabs.load().len()
    }

    /// Returns the slab at `index`, if it exists.
    pub fn slab(&self, index: u16) -> Option<Arc<Slab>> {
        self.slabs.load().get(index as usize).cloned()
    }

    /// Allocates a slot for an object of `size` bytes, creating a new slab of
    /// the appropriate size class if necessary. Returns the address.
    ///
    /// This is the primary-side allocation path; the allocating transaction's
    /// coordinator calls it during execution and the slot becomes visible to
    /// readers only when the transaction commits and initializes the header.
    pub fn allocate(&self, size: usize) -> Result<Addr, RegionError> {
        let class = size_class_for(size).ok_or(RegionError::ObjectTooLarge(size))?;
        // Fast path: find an existing slab of this class with space — a
        // wait-free snapshot traversal, no lock.
        if let Some(addr) = self.allocate_in_snapshot(self.slabs.load(), class) {
            return Ok(addr);
        }
        // Slow path: create a new slab. The grow mutex serializes snapshot
        // replacement; re-check under it in case another thread just grew.
        let _grow = self.grow.lock();
        let current = self.slabs.load();
        if let Some(addr) = self.allocate_in_snapshot(current, class) {
            return Ok(addr);
        }
        if current.len() >= self.config.max_slabs as usize {
            return Err(RegionError::OutOfMemory);
        }
        let capacity = (self.config.slab_bytes / class).max(1);
        let slab = Arc::new(Slab::new(class, capacity));
        let slot = slab.allocate().expect("fresh slab has space");
        let index = current.len() as u16;
        let mut next = current.clone();
        next.push(slab);
        self.slabs.store(Arc::new(next));
        Ok(Addr {
            region: self.id,
            slab: index,
            slot,
        })
    }

    /// One pass over a slab-table snapshot looking for a free slot of `class`.
    fn allocate_in_snapshot(&self, slabs: &[Arc<Slab>], class: usize) -> Option<Addr> {
        for (i, slab) in slabs.iter().enumerate() {
            if slab.object_size() == class {
                if let Ok(slot) = slab.allocate() {
                    return Some(Addr {
                        region: self.id,
                        slab: i as u16,
                        slot,
                    });
                }
            }
        }
        None
    }

    /// Ensures that slab `index` exists with the given size class, creating
    /// intermediate empty slabs if needed. Backups use this to mirror the
    /// primary's slab layout when applying replicated writes.
    pub fn ensure_slab(&self, index: u16, object_size: usize) -> Arc<Slab> {
        if let Some(s) = self.slabs.load().get(index as usize) {
            return Arc::clone(s);
        }
        let _grow = self.grow.lock();
        let current = self.slabs.load();
        if let Some(s) = current.get(index as usize) {
            return Arc::clone(s);
        }
        let mut next = current.clone();
        while next.len() <= index as usize {
            let capacity = (self.config.slab_bytes / object_size).max(1);
            next.push(Arc::new(Slab::new(object_size, capacity)));
        }
        let slab = Arc::clone(&next[index as usize]);
        self.slabs.store(Arc::new(next));
        slab
    }

    /// Frees the slot named by `addr` in the allocator (bitmap); the header
    /// must already have been cleared by the committing transaction.
    pub fn free(&self, addr: Addr) -> Result<(), RegionError> {
        let slab = self.slab(addr.slab).ok_or(RegionError::BadAddress(addr))?;
        slab.free(addr.slot)
            .map_err(|_| RegionError::BadAddress(addr))
    }

    /// Resolves an address to its object slot.
    pub fn slot(&self, addr: Addr) -> Result<Arc<ObjectSlot>, RegionError> {
        let slab = self.slab(addr.slab).ok_or(RegionError::BadAddress(addr))?;
        slab.slot(addr.slot)
            .map_err(|_| RegionError::BadAddress(addr))
    }

    /// Acquires the per-object commit locks for one LOCK batch, the
    /// primary-side half of the batched LOCK phase: the coordinator sends a
    /// single message per destination machine and the primary locks the
    /// batch's objects **atomically in order** — either every lock in the
    /// batch is acquired, or none is.
    ///
    /// `entries` are `(address, expected timestamp)` pairs and must be sorted
    /// in ascending address order — the deterministic global acquisition
    /// order every coordinator uses (it prevents two committers from
    /// acquiring overlapping sets in opposite orders). An expected timestamp
    /// of [`LOCK_ANY_VERSION`] marks a blind write: the lock is taken at
    /// whatever version is installed. On the first conflict all locks
    /// acquired by this batch are released and the failing address is
    /// reported, so the caller can unwind batches already sent to other
    /// primaries.
    pub fn try_lock_batch(
        &self,
        entries: &[(Addr, u64)],
    ) -> Result<Vec<Arc<ObjectSlot>>, BatchLockFailure> {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "lock batch must be sorted by ascending address"
        );
        let mut acquired: Vec<Arc<ObjectSlot>> = Vec::with_capacity(entries.len());
        for &(addr, expected_ts) in entries {
            let outcome = match self.slot(addr) {
                Ok(slot) => {
                    let attempt = if expected_ts == LOCK_ANY_VERSION {
                        slot.try_lock_blind()
                    } else {
                        slot.try_lock_at(expected_ts)
                    };
                    match attempt {
                        LockOutcome::Acquired => {
                            acquired.push(slot);
                            continue;
                        }
                        other => other,
                    }
                }
                Err(_) => LockOutcome::NotAllocated,
            };
            // Roll back: release in reverse acquisition order.
            for slot in acquired.iter().rev() {
                slot.unlock();
            }
            return Err(BatchLockFailure { addr, outcome });
        }
        Ok(acquired)
    }

    /// Snapshots many slots in one pass — the primary-side half of a
    /// **doorbell-batched read**: the coordinator sends one read message
    /// naming every requested slot in this region and the primary (or its
    /// NIC, for true one-sided reads) walks its slab table once, returning one
    /// [`ConsistentRead`] per address in input order.
    ///
    /// Per-slot outcomes are independent: a locked or tombstoned slot does
    /// not poison the rest of the batch — the caller applies its per-slot
    /// fallback (retry, old-version chain walk, abort) to exactly the slots
    /// that need it. Addresses that do not resolve to an existing slab/slot
    /// report [`ConsistentRead::NotAllocated`].
    pub fn read_consistent_batch(&self, addrs: &[Addr]) -> Vec<ConsistentRead> {
        // One traversal: pin the slab-table snapshot with a single wait-free
        // load, then snapshot the slots without re-entering the index.
        let slabs = self.slabs.load();
        addrs
            .iter()
            .map(|addr| {
                match slabs
                    .get(addr.slab as usize)
                    .and_then(|slab| slab.slot(addr.slot).ok())
                {
                    Some(slot) => slot.read_consistent(),
                    None => ConsistentRead::NotAllocated,
                }
            })
            .collect()
    }

    /// Applies one replicated commit record to this replica **idempotently
    /// and order-insensitively**: the slot is (re)initialized with `data` at
    /// `ts` unless the replica already holds a version at or past `ts`, and
    /// a `free` record leaves a **timestamped tombstone** rather than
    /// zeroing the header — so whichever order a free and an older write
    /// arrive in (two coordinators' watermarks deliver independently), the
    /// write can never resurrect the freed object. Replaying the same
    /// record twice is a no-op. A slot later reused by an allocation is
    /// revived by that allocation's (strictly newer) write record.
    ///
    /// `slab_size` mirrors the primary's slab layout ([`Region::ensure_slab`])
    /// for slabs this replica has not materialized yet; 0 marks a record
    /// whose primary-side slab could not be resolved and is skipped.
    /// Replica bitmaps are not maintained per-write — they are rebuilt from
    /// headers at promotion ([`Region::rebuild_allocation_state`]).
    pub fn apply_replicated(
        &self,
        addr: Addr,
        slab_size: usize,
        ts: u64,
        data: &Bytes,
        free: bool,
    ) {
        if slab_size == 0 {
            return;
        }
        let slab = self.ensure_slab(addr.slab, slab_size);
        let Ok(slot) = slab.slot(addr.slot) else {
            return;
        };
        let h = slot.header_snapshot();
        if free {
            // Applied even to a not-yet-written slot: the tombstone's
            // timestamp is what blocks the object's older write record if
            // it arrives afterwards.
            if h.ts <= ts {
                slot.mark_replica_tombstone(ts);
            }
        } else if !h.allocated || h.ts < ts {
            slot.initialize(ts, data.clone());
        }
    }

    /// Records that the slot at `addr` was tombstoned by a free committing at
    /// `write_ts`; the slot will be reclaimed by [`Region::sweep_tombstones`]
    /// once the GC safe point passes `write_ts`.
    pub fn note_tombstone(&self, addr: Addr, write_ts: u64) {
        self.tombstone_shard(addr).lock().push((addr, write_ts));
    }

    /// Reclaims tombstoned slots whose free timestamp is below `safe_point`
    /// (no snapshot can need their history anymore): clears the header and
    /// returns the slot to the allocator. Returns how many were reclaimed.
    ///
    /// Shards are visited one at a time, so committing transactions
    /// tombstoning into other slabs proceed concurrently with the sweep.
    pub fn sweep_tombstones(&self, safe_point: u64) -> usize {
        let mut swept = 0;
        for shard in &self.tombstones {
            let mut pending = shard.lock();
            pending.retain(|&(addr, ts)| {
                if ts >= safe_point {
                    return true;
                }
                if let Ok(slot) = self.slot(addr) {
                    slot.clear();
                }
                let _ = self.free(addr);
                swept += 1;
                false
            });
        }
        swept
    }

    /// Number of tombstoned slots not yet reclaimed.
    pub fn pending_tombstones(&self) -> usize {
        self.tombstones.iter().map(|s| s.lock().len()).sum()
    }

    /// Scans all slabs and rebuilds their free bitmaps from object headers
    /// (backup promotion, Section 4.8).
    pub fn rebuild_allocation_state(&self) {
        for slab in self.slabs.load().iter() {
            slab.rebuild_bitmap_from_headers();
        }
    }

    /// Total and free slot counts across all slabs (for reporting).
    pub fn occupancy(&self) -> (usize, usize) {
        let slabs = self.slabs.load();
        let total = slabs.iter().map(|s| s.capacity()).sum();
        let free = slabs.iter().map(|s| s.free_slots()).sum();
        (total, free)
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (total, free) = self.occupancy();
        f.debug_struct("Region")
            .field("id", &self.id)
            .field("slabs", &self.slab_count())
            .field("slots_total", &total)
            .field("slots_free", &free)
            .finish()
    }
}

/// The set of region replicas hosted by one machine.
///
/// Every transaction resolves at least one region per operation, so the map
/// is a copy-on-write snapshot: lookups are one wait-free load plus a
/// lock-free `Weak::upgrade`, and the rare hosting changes (region creation,
/// re-replication, drop) republish it under the `owned` mutex. Snapshots
/// hold **weak** handles — strong ownership lives only in `owned` — so a
/// dropped region's memory is freed as soon as the last in-flight user
/// releases it, even though the `ArcSwap` shim retains replaced map
/// snapshots until the store itself drops.
#[derive(Default)]
pub struct RegionStore {
    config: RegionConfig,
    regions: ArcSwap<HashMap<RegionId, std::sync::Weak<Region>>>,
    /// Strong ownership of hosted replicas; also serializes snapshot
    /// republishing. Never taken on the lookup path.
    owned: Mutex<HashMap<RegionId, Arc<Region>>>,
}

impl RegionStore {
    /// Creates an empty store with the given sizing configuration.
    pub fn new(config: RegionConfig) -> Self {
        RegionStore {
            config,
            regions: ArcSwap::from_pointee(HashMap::new()),
            owned: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the replica of `id`, creating it if this machine does not host
    /// one yet (e.g. when it becomes a new backup during re-replication).
    pub fn ensure(&self, id: RegionId) -> Arc<Region> {
        if let Some(r) = self
            .regions
            .load()
            .get(&id)
            .and_then(std::sync::Weak::upgrade)
        {
            return r;
        }
        let mut owned = self.owned.lock();
        if let Some(r) = owned.get(&id) {
            return Arc::clone(r);
        }
        let region = Arc::new(Region::new(id, self.config));
        owned.insert(id, Arc::clone(&region));
        self.publish(&owned);
        region
    }

    /// Returns the replica of `id`, if hosted here.
    pub fn get(&self, id: RegionId) -> Option<Arc<Region>> {
        self.regions
            .load()
            .get(&id)
            .and_then(std::sync::Weak::upgrade)
    }

    /// Drops the replica of `id` (the machine stops hosting the region). Its
    /// memory is freed once the last in-flight reference goes away — stale
    /// weak handles in retained snapshots cannot resurrect it.
    pub fn drop_region(&self, id: RegionId) {
        let mut owned = self.owned.lock();
        owned.remove(&id);
        self.publish(&owned);
    }

    /// Republishes the lookup snapshot from the ownership map (caller holds
    /// the `owned` lock).
    fn publish(&self, owned: &HashMap<RegionId, Arc<Region>>) {
        let snapshot: HashMap<RegionId, std::sync::Weak<Region>> = owned
            .iter()
            .map(|(&id, region)| (id, Arc::downgrade(region)))
            .collect();
        self.regions.store(Arc::new(snapshot));
    }

    /// All region ids hosted here.
    pub fn hosted(&self) -> Vec<RegionId> {
        let mut v: Vec<_> = self.owned.lock().keys().copied().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for RegionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionStore")
            .field("hosted", &self.hosted())
            .finish()
    }
}

pub use RegionError as Error;

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn allocate_creates_slabs_by_size_class() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let a = r.allocate(10).unwrap(); // class 64
        let b = r.allocate(100).unwrap(); // class 128
        let c = r.allocate(20).unwrap(); // class 64 again, same slab
        assert_eq!(a.slab, c.slab);
        assert_ne!(a.slab, b.slab);
        assert_eq!(r.slab_count(), 2);
    }

    #[test]
    fn allocate_rejects_oversized_objects() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        assert_eq!(
            r.allocate(1 << 20),
            Err(RegionError::ObjectTooLarge(1 << 20))
        );
    }

    #[test]
    fn free_returns_slot_to_allocator() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let a = r.allocate(64).unwrap();
        let (_, free_before) = r.occupancy();
        r.free(a).unwrap();
        let (_, free_after) = r.occupancy();
        assert_eq!(free_after, free_before + 1);
    }

    #[test]
    fn slot_resolution_and_bad_addresses() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let a = r.allocate(64).unwrap();
        let slot = r.slot(a).unwrap();
        slot.initialize(3, Bytes::from_static(b"x"));
        let bad = Addr {
            region: RegionId(1),
            slab: 99,
            slot: 0,
        };
        assert!(r.slot(bad).is_err());
        assert!(r.free(bad).is_err());
    }

    #[test]
    fn out_of_memory_when_slabs_exhausted() {
        let cfg = RegionConfig {
            slab_bytes: 64,
            max_slabs: 1,
        };
        let r = Region::new(RegionId(1), cfg);
        let _a = r.allocate(64).unwrap(); // only slot of only slab
        assert_eq!(r.allocate(64), Err(RegionError::OutOfMemory));
    }

    #[test]
    fn ensure_slab_mirrors_layout_for_backups() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let s = r.ensure_slab(3, 128);
        assert_eq!(s.object_size(), 128);
        assert_eq!(r.slab_count(), 4);
        // Existing slab is returned as-is.
        let again = r.ensure_slab(3, 64);
        assert_eq!(again.object_size(), 128);
    }

    #[test]
    fn region_store_ensures_and_drops() {
        let store = RegionStore::new(RegionConfig::small());
        assert!(store.get(RegionId(5)).is_none());
        let r = store.ensure(RegionId(5));
        assert_eq!(r.id(), RegionId(5));
        assert!(store.get(RegionId(5)).is_some());
        assert_eq!(store.hosted(), vec![RegionId(5)]);
        store.drop_region(RegionId(5));
        assert!(store.get(RegionId(5)).is_none());
    }

    #[test]
    fn dropped_region_memory_is_actually_freed() {
        // The lookup snapshots hold weak handles, so dropping a region frees
        // its slabs as soon as the last strong reference goes — republished
        // (retained) snapshots must not keep dead replicas alive.
        let store = RegionStore::new(RegionConfig::small());
        let r = store.ensure(RegionId(7));
        r.allocate(64).unwrap();
        let weak = Arc::downgrade(&r);
        drop(r);
        // Churn the snapshot a few times so retained copies exist.
        store.ensure(RegionId(8));
        store.ensure(RegionId(9));
        assert!(weak.upgrade().is_some(), "still hosted: stays alive");
        store.drop_region(RegionId(7));
        assert!(
            weak.upgrade().is_none(),
            "dropped region leaked through a retained snapshot"
        );
        assert!(store.get(RegionId(7)).is_none());
        assert_eq!(store.hosted(), vec![RegionId(8), RegionId(9)]);
    }

    #[test]
    fn lock_batch_all_or_nothing() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let addrs: Vec<Addr> = (0..4).map(|_| r.allocate(64).unwrap()).collect();
        for a in &addrs {
            r.slot(*a).unwrap().initialize(5, Bytes::from_static(b"v"));
        }
        let mut entries: Vec<(Addr, u64)> = addrs.iter().map(|&a| (a, 5)).collect();
        entries.sort();
        // Whole batch succeeds.
        let locked = r.try_lock_batch(&entries).unwrap();
        assert_eq!(locked.len(), 4);
        for a in &addrs {
            assert!(r.slot(*a).unwrap().header_snapshot().locked);
        }
        for s in &locked {
            s.unlock();
        }
        // Poison the third entry: its version changed.
        r.slot(entries[2].0).unwrap().try_lock_at(5);
        r.slot(entries[2].0)
            .unwrap()
            .install_and_unlock(9, Bytes::from_static(b"w"), None);
        let err = r.try_lock_batch(&entries).unwrap_err();
        assert_eq!(err.addr, entries[2].0);
        assert_eq!(err.outcome, LockOutcome::VersionChanged { current: 9 });
        // The partial acquisitions (entries 0 and 1) were rolled back.
        for (a, _) in &entries {
            assert!(
                !r.slot(*a).unwrap().header_snapshot().locked,
                "leaked lock on {a}"
            );
        }
    }

    #[test]
    fn lock_batch_conflict_on_locked_object() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let a = r.allocate(64).unwrap();
        let b = r.allocate(64).unwrap();
        r.slot(a).unwrap().initialize(1, Bytes::from_static(b"a"));
        r.slot(b).unwrap().initialize(1, Bytes::from_static(b"b"));
        // Another committer holds b.
        assert_eq!(r.slot(b).unwrap().try_lock_at(1), LockOutcome::Acquired);
        let mut entries = vec![(a, 1), (b, 1)];
        entries.sort();
        let err = r.try_lock_batch(&entries).unwrap_err();
        assert_eq!(err.outcome, LockOutcome::Conflict);
        // Whichever of the two was first must have been released again.
        let other = if err.addr == a { b } else { a };
        let still_locked = r.slot(other).unwrap().header_snapshot().locked;
        assert_eq!(still_locked, other == b, "only the foreign lock survives");
    }

    #[test]
    fn tombstone_sweep_reclaims_past_safe_point() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let a = r.allocate(64).unwrap();
        let slot = r.slot(a).unwrap();
        slot.initialize(5, Bytes::from_static(b"x"));
        assert_eq!(slot.try_lock_at(5), LockOutcome::Acquired);
        slot.install_tombstone_and_unlock(10, None);
        r.note_tombstone(a, 10);
        assert_eq!(r.pending_tombstones(), 1);
        let (_, free_before) = r.occupancy();
        // Safe point has not passed the free yet.
        assert_eq!(r.sweep_tombstones(10), 0);
        assert_eq!(r.pending_tombstones(), 1);
        // Once it passes, the slot is cleared and returned to the allocator.
        assert_eq!(r.sweep_tombstones(11), 1);
        assert_eq!(r.pending_tombstones(), 0);
        let (_, free_after) = r.occupancy();
        assert_eq!(free_after, free_before + 1);
        assert!(!r.slot(a).unwrap().header_snapshot().allocated);
    }

    #[test]
    fn apply_replicated_is_idempotent_and_never_regresses() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let addr = Addr {
            region: RegionId(1),
            slab: 0,
            slot: 0,
        };
        // First delivery materializes the slab and installs the version.
        r.apply_replicated(addr, 64, 10, &Bytes::from_static(b"v10"), false);
        let slot = r.slot(addr).unwrap();
        assert_eq!(slot.header_snapshot().ts, 10);
        // An older record arriving later (out-of-order watermark) is ignored.
        r.apply_replicated(addr, 64, 5, &Bytes::from_static(b"v5"), false);
        assert_eq!(slot.header_snapshot().ts, 10);
        assert_eq!(&slot.raw_data()[..], b"v10");
        // Replaying the same record is a no-op; a newer one wins.
        r.apply_replicated(addr, 64, 10, &Bytes::from_static(b"dup"), false);
        assert_eq!(&slot.raw_data()[..], b"v10");
        r.apply_replicated(addr, 64, 12, &Bytes::from_static(b"v12"), false);
        assert_eq!(slot.header_snapshot().ts, 12);
        // A free below the installed version is ignored; at/above it leaves
        // a timestamped tombstone (the free's own version).
        r.apply_replicated(addr, 64, 11, &Bytes::new(), true);
        assert!(!r.slot(addr).unwrap().header_snapshot().tombstone);
        r.apply_replicated(addr, 64, 13, &Bytes::new(), true);
        let h = r.slot(addr).unwrap().header_snapshot();
        assert!(h.tombstone && h.ts == 13);
        // The tombstone blocks an older write arriving after the free (two
        // coordinators' watermarks deliver in either order) ...
        r.apply_replicated(addr, 64, 12, &Bytes::from_static(b"stale"), false);
        assert!(
            r.slot(addr).unwrap().header_snapshot().tombstone,
            "older write resurrected a freed object"
        );
        // ... and even a free delivered BEFORE the object's first write
        // blocks that write.
        let early = Addr {
            region: RegionId(1),
            slab: 0,
            slot: 1,
        };
        r.apply_replicated(early, 64, 20, &Bytes::new(), true);
        r.apply_replicated(early, 64, 19, &Bytes::from_static(b"late"), false);
        assert!(r.slot(early).unwrap().header_snapshot().tombstone);
        // A slot reused by a later allocation is revived by its strictly
        // newer write record.
        r.apply_replicated(addr, 64, 15, &Bytes::from_static(b"reuse"), false);
        let h = r.slot(addr).unwrap().header_snapshot();
        assert!(h.allocated && !h.tombstone && h.ts == 15);
        // Size-0 records (unresolvable primary slab) are skipped entirely.
        let other = Addr {
            region: RegionId(1),
            slab: 9,
            slot: 0,
        };
        r.apply_replicated(other, 0, 1, &Bytes::from_static(b"x"), false);
        assert!(r.slab(9).is_none());
    }

    #[test]
    fn batch_read_snapshots_many_slots_in_input_order() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let addrs: Vec<Addr> = (0..4).map(|_| r.allocate(64).unwrap()).collect();
        for (i, a) in addrs.iter().enumerate() {
            r.slot(*a)
                .unwrap()
                .initialize(10 + i as u64, Bytes::from(vec![i as u8; 4]));
        }
        // Reversed input order must be preserved in the output.
        let reversed: Vec<Addr> = addrs.iter().rev().copied().collect();
        let results = r.read_consistent_batch(&reversed);
        assert_eq!(results.len(), 4);
        for (i, res) in results.iter().enumerate() {
            let expect = 3 - i;
            match res {
                ConsistentRead::Value { ts, data, .. } => {
                    assert_eq!(*ts, 10 + expect as u64);
                    assert_eq!(&data[..], vec![expect as u8; 4].as_slice());
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_read_reports_per_slot_locked_tombstone_and_missing() {
        let r = Region::new(RegionId(1), RegionConfig::small());
        let ok = r.allocate(64).unwrap();
        let locked = r.allocate(64).unwrap();
        let tombed = r.allocate(64).unwrap();
        r.slot(ok).unwrap().initialize(1, Bytes::from_static(b"ok"));
        r.slot(locked)
            .unwrap()
            .initialize(2, Bytes::from_static(b"lk"));
        assert_eq!(
            r.slot(locked).unwrap().try_lock_at(2),
            LockOutcome::Acquired
        );
        r.slot(tombed)
            .unwrap()
            .initialize(3, Bytes::from_static(b"tb"));
        assert_eq!(
            r.slot(tombed).unwrap().try_lock_at(3),
            LockOutcome::Acquired
        );
        r.slot(tombed)
            .unwrap()
            .install_tombstone_and_unlock(9, None);
        let missing = Addr {
            region: RegionId(1),
            slab: 42,
            slot: 0,
        };
        // One batch mixing every per-slot outcome: the batch itself succeeds
        // and each slot reports independently.
        let results = r.read_consistent_batch(&[ok, locked, tombed, missing]);
        assert!(matches!(results[0], ConsistentRead::Value { ts: 1, .. }));
        assert_eq!(results[1], ConsistentRead::Locked);
        assert!(matches!(
            results[2],
            ConsistentRead::Tombstone { ts: 9, .. }
        ));
        assert_eq!(results[3], ConsistentRead::NotAllocated);
    }

    #[test]
    fn concurrent_allocations_get_distinct_addresses() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let r = Arc::new(Region::new(RegionId(1), RegionConfig::default()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    (0..200)
                        .map(|_| r.allocate(64).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for addr in h.join().unwrap() {
                assert!(all.insert(addr), "duplicate address {addr}");
            }
        }
        assert_eq!(all.len(), 1600);
    }
}
