//! Hierarchical free-slot bitmap for slabs (Section 4.8).
//!
//! Each slab tracks which of its fixed-size object slots are free with a
//! two-level bitmap: a leaf word per 64 slots plus a summary word per 64 leaf
//! words whose bits say "this leaf has at least one free slot". Finding a
//! free slot therefore touches at most a handful of words regardless of slab
//! size, which is what makes the common-case allocation path in FaRM a few
//! memory accesses on thread-local state.

/// A two-level hierarchical bitmap over `capacity` slots.
///
/// Bit value `1` means *free*. The structure is not internally synchronized:
/// in FaRM each slab is owned by a single thread, so the owner mutates the
/// bitmap without synchronization; cross-thread access goes through the
/// slab's lock.
#[derive(Debug, Clone)]
pub struct FreeBitmap {
    capacity: usize,
    /// Leaf words: bit i of word w covers slot w*64 + i.
    leaves: Vec<u64>,
    /// Summary words: bit j of word s is set iff leaf s*64 + j has a free bit.
    summary: Vec<u64>,
    free_count: usize,
}

impl FreeBitmap {
    /// Creates a bitmap with all `capacity` slots free.
    pub fn new_all_free(capacity: usize) -> Self {
        let leaf_words = capacity.div_ceil(64);
        let mut leaves = vec![u64::MAX; leaf_words];
        // Clear the bits beyond capacity in the last word.
        if !capacity.is_multiple_of(64) {
            let valid = capacity % 64;
            leaves[leaf_words - 1] = (1u64 << valid) - 1;
        }
        let summary_words = leaf_words.div_ceil(64);
        let mut summary = vec![0u64; summary_words.max(1)];
        for (w, &leaf) in leaves.iter().enumerate() {
            if leaf != 0 {
                summary[w / 64] |= 1 << (w % 64);
            }
        }
        FreeBitmap {
            capacity,
            leaves,
            summary,
            free_count: capacity,
        }
    }

    /// Creates a bitmap with all slots allocated (used when rebuilding state
    /// from object headers after promotion of a backup).
    pub fn new_all_allocated(capacity: usize) -> Self {
        let leaf_words = capacity.div_ceil(64);
        let summary_words = leaf_words.div_ceil(64);
        FreeBitmap {
            capacity,
            leaves: vec![0u64; leaf_words],
            summary: vec![0u64; summary_words.max(1)],
            free_count: 0,
        }
    }

    /// Number of slots the bitmap covers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently free slots.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Whether every slot is free.
    pub fn all_free(&self) -> bool {
        self.free_count == self.capacity
    }

    /// Whether no slot is free.
    pub fn is_full(&self) -> bool {
        self.free_count == 0
    }

    /// Whether the given slot is free.
    pub fn is_free(&self, slot: usize) -> bool {
        assert!(
            slot < self.capacity,
            "slot {slot} out of range {}",
            self.capacity
        );
        self.leaves[slot / 64] & (1 << (slot % 64)) != 0
    }

    /// Allocates the lowest-numbered free slot, or `None` if full.
    pub fn allocate(&mut self) -> Option<usize> {
        // Find the first summary word with a set bit.
        let (sw_idx, sw) = self.summary.iter().enumerate().find(|(_, w)| **w != 0)?;
        let leaf_idx = sw_idx * 64 + sw.trailing_zeros() as usize;
        let leaf = self.leaves[leaf_idx];
        debug_assert!(leaf != 0, "summary bit set but leaf empty");
        let bit = leaf.trailing_zeros() as usize;
        let slot = leaf_idx * 64 + bit;
        self.leaves[leaf_idx] &= !(1 << bit);
        if self.leaves[leaf_idx] == 0 {
            self.summary[leaf_idx / 64] &= !(1 << (leaf_idx % 64));
        }
        self.free_count -= 1;
        Some(slot)
    }

    /// Marks `slot` free again. Panics if it was already free (double free).
    pub fn free(&mut self, slot: usize) {
        assert!(
            slot < self.capacity,
            "slot {slot} out of range {}",
            self.capacity
        );
        let leaf_idx = slot / 64;
        let bit = 1u64 << (slot % 64);
        assert!(
            self.leaves[leaf_idx] & bit == 0,
            "double free of slot {slot}"
        );
        self.leaves[leaf_idx] |= bit;
        self.summary[leaf_idx / 64] |= 1 << (leaf_idx % 64);
        self.free_count += 1;
    }

    /// Marks `slot` allocated (used when rebuilding from headers).
    pub fn mark_allocated(&mut self, slot: usize) {
        assert!(slot < self.capacity);
        let leaf_idx = slot / 64;
        let bit = 1u64 << (slot % 64);
        if self.leaves[leaf_idx] & bit != 0 {
            self.leaves[leaf_idx] &= !bit;
            if self.leaves[leaf_idx] == 0 {
                self.summary[leaf_idx / 64] &= !(1 << (leaf_idx % 64));
            }
            self.free_count -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_returns_lowest_free_slot() {
        let mut b = FreeBitmap::new_all_free(10);
        assert_eq!(b.allocate(), Some(0));
        assert_eq!(b.allocate(), Some(1));
        b.free(0);
        assert_eq!(b.allocate(), Some(0));
        assert_eq!(b.free_count(), 8);
    }

    #[test]
    fn exhausts_and_reports_full() {
        let mut b = FreeBitmap::new_all_free(3);
        assert_eq!(b.allocate(), Some(0));
        assert_eq!(b.allocate(), Some(1));
        assert_eq!(b.allocate(), Some(2));
        assert!(b.is_full());
        assert_eq!(b.allocate(), None);
        b.free(1);
        assert_eq!(b.allocate(), Some(1));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = FreeBitmap::new_all_free(4);
        let s = b.allocate().unwrap();
        b.free(s);
        b.free(s);
    }

    #[test]
    fn capacity_not_multiple_of_64() {
        let mut b = FreeBitmap::new_all_free(100);
        let mut got = Vec::new();
        while let Some(s) = b.allocate() {
            got.push(s);
        }
        assert_eq!(got.len(), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn large_capacity_crosses_summary_words() {
        // > 64*64 slots forces multiple summary words.
        let cap = 64 * 64 * 2 + 17;
        let mut b = FreeBitmap::new_all_free(cap);
        for i in 0..cap {
            assert_eq!(b.allocate(), Some(i));
        }
        assert!(b.is_full());
        b.free(cap - 1);
        assert_eq!(b.allocate(), Some(cap - 1));
    }

    #[test]
    fn all_allocated_then_rebuild() {
        let mut b = FreeBitmap::new_all_allocated(128);
        assert!(b.is_full());
        b.free(64);
        b.free(5);
        assert_eq!(b.free_count(), 2);
        assert_eq!(b.allocate(), Some(5));
        assert_eq!(b.allocate(), Some(64));
    }

    #[test]
    fn mark_allocated_is_idempotent() {
        let mut b = FreeBitmap::new_all_free(8);
        b.mark_allocated(3);
        b.mark_allocated(3);
        assert_eq!(b.free_count(), 7);
        assert!(!b.is_free(3));
    }

    #[test]
    fn all_free_reports_correctly() {
        let mut b = FreeBitmap::new_all_free(2);
        assert!(b.all_free());
        let s = b.allocate().unwrap();
        assert!(!b.all_free());
        b.free(s);
        assert!(b.all_free());
    }
}
