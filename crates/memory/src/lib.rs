//! # farm-memory — regions, slabs, object headers and old-version storage
//!
//! FaRM exposes a global flat address space pooled from the DRAM of every
//! machine in the cluster. This crate implements the per-machine memory
//! subsystem of FaRMv2 as described in Sections 4.4, 4.5 and 4.8 of the
//! paper:
//!
//! * **Regions** (Section 3.1): the unit of replication. A region is divided
//!   into **slabs**; each slab holds objects of a single size class and is
//!   owned by one thread of the machine holding the primary replica, so the
//!   common-case allocation touches only thread-local state. Free objects
//!   within a slab are tracked with a hierarchical bitmap
//!   ([`bitmap::FreeBitmap`]).
//! * **Object headers** (Figure 7): a 128-bit header per head version with a
//!   lock bit `L`, an allocated bit `A`, an 8-bit install counter `CL`, a
//!   53-bit write timestamp `TS`, and an old-version pointer `OVP`. The head
//!   version's location never changes so it can always be read with a single
//!   one-sided RDMA read.
//! * **Old-version storage** (Figure 8): old versions live in 1 MB blocks
//!   carved out of unreplicated regions, bump-allocated by the owning thread
//!   and garbage-collected at *block* granularity: a block is freed when its
//!   GC time (the maximum write timestamp of any old version inside it) drops
//!   below the global GC safe point.
//!
//! ### Fidelity note
//!
//! The paper makes RDMA reads atomic by replicating the `CL` counter at the
//! start of every cache line. Inside a single process we instead guard the
//! payload with a lightweight reader/writer lock and use the
//! `read header → read payload → re-read header` dance
//! ([`ObjectSlot::read_consistent`]) to obtain the same "atomic snapshot of
//! one object version" guarantee. The header itself is two atomic words, so
//! lock/validate operations are real compare-and-swaps just like the NIC-side
//! atomics they stand in for.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod addr;
pub mod bitmap;
pub mod header;
pub mod object;
pub mod oldver;
pub mod region;
pub mod slab;

pub use addr::{Addr, BlockId, OldAddr, RegionId};
pub use header::{HeaderSnapshot, ObjectHeader};
pub use object::{ConsistentRead, InstallOutcome, LockOutcome, ObjectSlot};
pub use oldver::{OldVersion, OldVersionStore, ThreadOldAllocator};
pub use region::{BatchLockFailure, Region, RegionConfig, RegionStore, LOCK_ANY_VERSION};
pub use slab::{Slab, SlabError};

/// Size classes used by the slab allocator, in bytes. Objects are rounded up
/// to the nearest class; the paper's minimum object size is 64 bytes.
pub const SIZE_CLASSES: [usize; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// A stable dense ordinal for the calling thread, assigned round-robin on
/// first use. Shared by every sharded per-thread structure in the workspace
/// (old-version allocation cursors, the engine's active-transaction slot
/// table): take `thread_ordinal() % shards` to pick a home shard, so a
/// thread lands on related shards across structures and the assignment logic
/// lives in exactly one place.
pub fn thread_ordinal() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    ORDINAL.with(|o| {
        if o.get() == usize::MAX {
            o.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        o.get()
    })
}

/// Rounds a requested object size up to its size class.
///
/// Returns `None` if the size exceeds the largest class.
pub fn size_class_for(len: usize) -> Option<usize> {
    SIZE_CLASSES.iter().copied().find(|&c| c >= len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_rounds_up() {
        assert_eq!(size_class_for(1), Some(64));
        assert_eq!(size_class_for(0), Some(64));
        assert_eq!(size_class_for(64), Some(64));
        assert_eq!(size_class_for(65), Some(128));
        assert_eq!(size_class_for(4096), Some(4096));
        assert_eq!(size_class_for(4097), None);
    }
}
